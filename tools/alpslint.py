#!/usr/bin/env python3
"""Standalone launcher for the ALPS protocol linter.

Equivalent to ``PYTHONPATH=src python -m repro.analysis`` but runnable
from a plain checkout with no environment setup::

    python tools/alpslint.py src/repro examples
    python tools/alpslint.py --check-corpus tests/fixtures/analysis
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.cli import main  # noqa: E402 (needs the path tweak above)

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
