#!/usr/bin/env python3
"""Standalone launcher for the benchmark regression tracker.

Equivalent to ``PYTHONPATH=src python -m repro.obs.regress`` but runnable
from a plain checkout with no environment setup::

    python tools/benchdiff.py --check
    python tools/benchdiff.py --record
    python tools/benchdiff.py --show
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.obs.regress import main  # noqa: E402 (needs the path tweak above)

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
