#!/usr/bin/env python
"""Validate trace artifacts produced by repro.obs.

CI runs this against the artifacts the benchmarks and examples export.
Two formats, dispatched on extension:

* ``*.json`` — Chrome ``trace_event`` payloads: well-formed JSON with a
  non-empty ``traceEvents`` list whose async span begins/ends balance
  (every ``"b"`` has exactly one ``"e"`` of the same id/category, no
  earlier than its begin), plus the live-plane instant rules below
  applied to ``ph: "i"`` events;
* ``*.jsonl`` — JSONL sink dumps: every line a JSON object; live-plane
  events (``kind`` starting with ``live.``) in non-decreasing time
  order, ``live.alert`` events carrying the alert payload and
  alternating firing/resolved per monitor, ``live.snapshot`` events
  embedding their evaluation time.

Usage::

    python tools/validate_trace.py run.json live.jsonl [more ...]

Exit status 0 when every file passes; 1 with the problems listed
otherwise.
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obs.sinks import validate_chrome_trace, validate_live_jsonl  # noqa: E402


def main(argv):
    if not argv:
        print(__doc__.strip())
        return 2
    failed = False
    for path in argv:
        if path.endswith(".jsonl"):
            try:
                with open(path, encoding="utf-8") as fh:
                    lines = fh.readlines()
            except OSError as exc:
                print(f"{path}: unreadable ({exc})")
                failed = True
                continue
            problems = validate_live_jsonl(lines)
            if problems:
                failed = True
                print(f"{path}: {len(problems)} problem(s)")
                for problem in problems:
                    print(f"  - {problem}")
            else:
                live = sum(
                    1 for line in lines if '"kind": "live.' in line
                )
                print(f"{path}: OK ({len(lines)} lines, {live} live events)")
            continue
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failed = True
            continue
        problems = validate_chrome_trace(payload)
        if problems:
            failed = True
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            events = payload["traceEvents"]
            spans = sum(1 for e in events if e.get("ph") == "b")
            print(f"{path}: OK ({len(events)} events, {spans} spans)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
