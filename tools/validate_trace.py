#!/usr/bin/env python
"""Validate a Chrome ``trace_event`` JSON file produced by repro.obs.

CI runs this against the trace artifacts the benchmarks and examples
export; it checks the payload is well-formed JSON with a non-empty
``traceEvents`` list whose async span begins/ends balance (every ``"b"``
has exactly one ``"e"`` of the same id/category, no earlier than its
begin).

Usage::

    python tools/validate_trace.py run.json [more.json ...]

Exit status 0 when every file passes; 1 with the problems listed
otherwise.
"""

import json
import sys

sys.path.insert(0, "src")

from repro.obs.sinks import validate_chrome_trace  # noqa: E402


def main(argv):
    if not argv:
        print(__doc__.strip())
        return 2
    failed = False
    for path in argv:
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failed = True
            continue
        problems = validate_chrome_trace(payload)
        if problems:
            failed = True
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
        else:
            events = payload["traceEvents"]
            spans = sum(1 for e in events if e.get("ph") == "b")
            print(f"{path}: OK ({len(events)} events, {spans} spans)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
