# The same two-object shape with the call chain running one way only:
# Front.serve calls Back.fetch, Back.fetch calls nobody.  The call
# graph is acyclic and the managers stay receptive-safe; no predicted
# cycle.  Clean.
from repro.core import AlpsObject, entry, manager_process


class Back(AlpsObject):
    @entry(returns=1)
    def fetch(self):
        return len(self.rows)

    @manager_process(intercepts=["fetch"])
    def mgr(self):
        while True:
            call = yield self.accept("fetch")
            yield from self.execute(call)


class Front(AlpsObject):
    @entry(returns=1)
    def serve(self):
        count = yield self.backend.fetch()
        return count

    @manager_process(intercepts=["serve"])
    def mgr(self):
        while True:
            call = yield self.accept("serve")
            yield from self.execute(call)


def build(kernel):
    back = Back(kernel, rows=[1, 2, 3])
    front = Front(kernel, backend=back)
    return front, back
