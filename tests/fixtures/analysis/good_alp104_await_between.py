# Await sits between start and finish; protocol order respected, clean.
from repro.core import AlpsObject, Finish, Start, entry, manager_process


class Patient(AlpsObject):
    @entry
    def work(self):
        pass

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            yield Start(call)
            done = yield self.await_("work", call=call)
            yield Finish(done)
