# Guards only name intercepted entries; `peek` flows freely without
# manager involvement; clean.
from repro.core import AlpsObject, entry, manager_process


class InBounds(AlpsObject):
    @entry
    def put(self, item):
        pass

    @entry(returns=1)
    def peek(self):
        return None

    @manager_process(intercepts=["put"])
    def mgr(self):
        while True:
            call = yield self.accept("put")
            yield from self.execute(call)
