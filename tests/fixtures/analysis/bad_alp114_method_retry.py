# expect: ALP114
# The retry site lives in a class method and the unbounded policy is
# held in a local variable rather than written inline — the scope-aware
# check tracks the binding from the assignment to the call site.
from repro.faults import ExponentialBackoff, retry


class ReplicaReader:
    def __init__(self, kernel, store):
        self.kernel = kernel
        self.store = store

    def read(self, key):
        policy = ExponentialBackoff(base=2, max_delay=400, max_attempts=None)

        def build():
            return self.store.get(key, timeout=50)

        value = yield from retry(build, policy)
        return value
