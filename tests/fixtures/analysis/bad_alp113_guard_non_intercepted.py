# expect: ALP113
# `peek` is a declared entry, but the manager does not intercept it —
# an accept guard on it would be rejected by the runtime.
from repro.core import AlpsObject, entry, manager_process


class Overreach(AlpsObject):
    @entry
    def put(self, item):
        pass

    @entry(returns=1)
    def peek(self):
        return None

    @manager_process(intercepts=["put"])
    def mgr(self):
        while True:
            call = yield self.accept("put")
            yield from self.execute(call)
            extra = yield self.accept("peek")
            yield from self.execute(extra)
