# expect: ALP114
# The retry site sits in a function nested two scopes down, and the
# unbounded policy is bound in the *enclosing* scope — nested functions
# inherit the lexical environment, so the check still sees it.
from repro.faults import FixedBackoff, retry


def make_poller(kernel, store):
    policy = FixedBackoff(delay=20, max_attempts=None)

    def poller(key):
        def build():
            return store.get(key, timeout=50)

        value = yield from retry(build, policy)
        return value

    return poller
