# Unbounded zeal is fine when a shared budget bounds the aggregate:
# once the bucket is dry the next retry is an immediate AdmissionError
# instead of another wire attempt.  Clean.
from repro.faults import ExponentialBackoff, FixedBackoff, retry, shared_budget


def fetch_with_budget(kernel, store, key):
    def build():
        return store.get(key, timeout=50)

    budget = shared_budget(kernel, "reader", store)
    value = yield from retry(
        build,
        ExponentialBackoff(base=2, max_delay=200, max_attempts=None),
        budget=budget,
    )
    return value


def fetch_bounded(kernel, store, key):
    def build():
        return store.get(key, timeout=50)

    # A finite attempt bound needs no budget to be storm-safe.
    value = yield from retry(build, FixedBackoff(delay=20, max_attempts=3))
    return value
