# expect: ALP108
# `write` declares one hidden parameter (the device handle the manager
# supplies at start), but Start passes two extras.
from repro.core import AlpsObject, Finish, Start, entry, icpt, manager_process


class DoubleDevice(AlpsObject):
    @entry(hidden_params=1)
    def write(self, block, device):
        pass

    @manager_process(intercepts={"write": icpt()})
    def mgr(self):
        device = object()
        spare = object()
        while True:
            call = yield self.accept("write")
            yield Start(call, device, spare)
            done = yield self.await_("write", call=call)
            yield Finish(done)
