# expect: ALP107
# `grant` returns one value and the manager combines (finish without
# start), so Finish must fabricate exactly 1 result — it supplies 3.
from repro.core import AlpsObject, Finish, entry, icpt, manager_process


class OverGenerous(AlpsObject):
    @entry(returns=1)
    def grant(self):
        return None

    @manager_process(intercepts={"grant": icpt()})
    def mgr(self):
        while True:
            call = yield self.accept("grant")
            yield Finish(call, 1, 2, 3)
