# expect: ALP114
# An unbounded policy with no budget: under a persistent fault this
# caller re-offers its call forever, and a fleet of them is a retry
# storm that outlives the fault (E15 measures the collapse).
from repro.faults import FixedBackoff, retry


def fetch_forever(kernel, store, key):
    def build():
        return store.get(key, timeout=50)

    value = yield from retry(build, FixedBackoff(delay=20, max_attempts=None))
    return value
