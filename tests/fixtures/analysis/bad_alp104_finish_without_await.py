# expect: ALP104
# The manager starts the body and then finishes the call without an
# await in between; at runtime Finish requires AWAITED (or ACCEPTED for
# combining) and raises ProtocolError [ALP104].
from repro.core import AlpsObject, Finish, Start, entry, manager_process


class Impatient(AlpsObject):
    @entry
    def work(self):
        pass

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            yield Start(call)
            yield Finish(call)
