# Entries in the same compatibility group touching disjoint attribute
# sets: ingest_left writes only self.left, ingest_right only
# self.right, and drain (the serial entry) is in no group at all.
# Concurrent bodies cannot race, so the compatible= claim holds.
# Clean.
from repro.core import AlpsObject, entry, manager_process


class SplitLedger(AlpsObject):
    def setup(self, **config):
        self.left = []
        self.right = []

    @entry(compatible="ingest")
    def ingest_left(self, item):
        self.left.append(item)

    @entry(compatible="ingest")
    def ingest_right(self, item):
        self.right.append(item)

    @entry(returns=1)
    def drain(self):
        items = self.left + self.right
        self.left = []
        self.right = []
        return items

    @manager_process(intercepts=["ingest_left", "ingest_right", "drain"])
    def mgr(self):
        while True:
            call = yield self.accept()
            yield from self.execute(call)
