# Both intercepted entries have accept sites (via a select); clean.
from repro.core import AcceptGuard, AlpsObject, Select, entry, manager_process


class TightBuffer(AlpsObject):
    @entry
    def deposit(self, item):
        pass

    @entry(returns=1)
    def remove(self):
        return None

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        while True:
            result = yield Select(
                AcceptGuard(self, "deposit"),
                AcceptGuard(self, "remove"),
            )
            yield from self.execute(result.value)
