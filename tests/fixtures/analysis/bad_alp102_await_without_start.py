# expect: ALP102
# The manager accepts and awaits `work` but never starts it, so the
# await guard can never become ready.
from repro.core import AlpsObject, Finish, entry, manager_process


class Stuck(AlpsObject):
    @entry
    def work(self):
        pass

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            done = yield self.await_("work")
            yield Finish(done)
