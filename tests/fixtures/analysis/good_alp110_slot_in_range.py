# Slot 1 is inside the 2-element hidden array (slots 0..1); clean.
from repro.core import AlpsObject, entry, manager_process


class OnTheArray(AlpsObject):
    @entry(returns=1, array=2)
    def read(self, key):
        return None

    @manager_process(intercepts=["read"])
    def mgr(self):
        while True:
            call = yield self.accept("read", slot=1)
            yield from self.execute(call)
