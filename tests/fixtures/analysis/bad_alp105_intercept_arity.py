# expect: ALP105
# The intercepts clause claims 2 params and 2 results of `lookup`, but
# the entry declares only one parameter and returns=1; and `helper`
# declares hidden params without being intercepted at all.
from repro.core import AlpsObject, entry, icpt, manager_process


class Mismatched(AlpsObject):
    @entry(returns=1)
    def lookup(self, key):
        return None

    @entry(hidden_params=1)
    def helper(self, device):
        pass

    @manager_process(intercepts={"lookup": icpt(params=2, results=2)})
    def mgr(self):
        while True:
            call = yield self.accept("lookup")
            yield from self.execute(call)
