# expect: ALP112
# The accept names `withdraw`, but the object declares no such
# procedure (typo for `remove`); #pending misspells it too.
from repro.core import AlpsObject, entry, manager_process


class Typo(AlpsObject):
    @entry
    def deposit(self, item):
        pass

    @entry(returns=1)
    def remove(self):
        return None

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        while True:
            if self.pending("withdrawl") > 0:
                call = yield self.accept("withdraw")
            else:
                call = yield self.accept("deposit")
            yield from self.execute(call)
            other = yield self.accept("remove")
            yield from self.execute(other)
