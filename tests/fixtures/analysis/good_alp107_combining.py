# Combining (§2.7): finish-without-start fabricates the entry's single
# declared result — exactly one value supplied; clean.
from repro.core import AlpsObject, Finish, entry, icpt, manager_process


class Combiner(AlpsObject):
    @entry(returns=1)
    def grant(self):
        return None

    @manager_process(intercepts={"grant": icpt()})
    def mgr(self):
        granted = 0
        while True:
            call = yield self.accept("grant")
            granted += 1
            yield Finish(call, granted)
