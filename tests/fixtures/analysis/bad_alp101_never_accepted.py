# expect: ALP101
# The manager intercepts `remove` but its body only ever accepts
# `deposit`: every remove() call stalls forever (compile-time starvation).
from repro.core import AlpsObject, entry, manager_process


class LeakyBuffer(AlpsObject):
    @entry
    def deposit(self, item):
        pass

    @entry(returns=1)
    def remove(self):
        return None

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        while True:
            call = yield self.accept("deposit")
            yield from self.execute(call)
