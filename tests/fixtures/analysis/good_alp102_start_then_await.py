# Accept, start, await, finish: the full §2.3 protocol; clean.
from repro.core import AlpsObject, Finish, Start, entry, manager_process


class Flowing(AlpsObject):
    @entry
    def work(self):
        pass

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            yield Start(call)
            done = yield self.await_("work")
            yield Finish(done)
