# expect: ALP111
# The manager invokes `audit` — an intercepted entry of its own object.
# The call queues behind the manager's own accept loop while the manager
# blocks waiting for it: self-deadlock.
from repro.core import AlpsObject, entry, manager_process


class Navel(AlpsObject):
    @entry(returns=1)
    def audit(self):
        return 0

    @entry
    def work(self):
        pass

    @manager_process(intercepts=["audit", "work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            count = yield self.audit()
            yield from self.execute(call)
            call2 = yield self.accept("audit")
            yield from self.execute(call2)
