# The manager tracks its own count in shared data instead of calling
# back into the object; clean.
from repro.core import AlpsObject, entry, manager_process


class Outward(AlpsObject):
    @entry(returns=1)
    def audit(self):
        return 0

    @entry
    def work(self):
        pass

    @manager_process(intercepts=["audit", "work"])
    def mgr(self):
        served = 0
        while True:
            call = yield self.accept("work")
            served += 1
            yield from self.execute(call)
            call2 = yield self.accept("audit")
            yield from self.execute(call2)
