# expect: ALP120
# Two managed objects wired to call each other through monitor-style
# managers (accept; execute).  A call to Ping.poke runs Ping's body,
# which calls Pong.bounce — but Pong.bounce calls back into Ping.poke,
# whose manager is blocked executing the first call: a classic
# inter-manager wait cycle.  Each class alone passes ALP101-ALP113; the
# defect only exists in the whole-program call graph.
from repro.core import AlpsObject, entry, manager_process


class Ping(AlpsObject):
    @entry(returns=1)
    def poke(self):
        value = yield self.peer.bounce()
        return value + 1

    @manager_process(intercepts=["poke"])
    def mgr(self):
        while True:
            call = yield self.accept("poke")
            yield from self.execute(call)


class Pong(AlpsObject):
    @entry(returns=1)
    def bounce(self):
        value = yield self.peer.poke()
        return value + 1

    @manager_process(intercepts=["bounce"])
    def mgr(self):
        while True:
            call = yield self.accept("bounce")
            yield from self.execute(call)


def build(kernel):
    ping = Ping(kernel)
    pong = Pong(kernel)
    ping.peer = pong
    pong.peer = ping
    return ping, pong
