# Intercept arities are within the entry's declaration; clean.
from repro.core import AlpsObject, entry, icpt, manager_process


class WellDeclared(AlpsObject):
    @entry(returns=1)
    def lookup(self, key):
        return None

    @manager_process(intercepts={"lookup": icpt(params=1, results=1)})
    def mgr(self):
        while True:
            call = yield self.accept("lookup")
            yield from self.execute(call)
