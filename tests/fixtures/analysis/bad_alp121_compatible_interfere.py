# expect: ALP121
# Both entries claim membership of the compatibility group "stats" —
# a promise that a multiactive manager may run their bodies truly
# concurrently — but record() writes self.total and self.count while
# mean() reads both: a read/write race on object state.  The effect
# sets overlap, so the compatibility claim is unsound.
from repro.core import AlpsObject, entry, manager_process


class RunningMean(AlpsObject):
    def setup(self, **config):
        self.total = 0
        self.count = 0

    @entry(compatible="stats")
    def record(self, value):
        self.total += value
        self.count += 1

    @entry(returns=1, compatible="stats")
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @manager_process(intercepts=["record", "mean"])
    def mgr(self):
        while True:
            call = yield self.accept()
            yield from self.execute(call)
