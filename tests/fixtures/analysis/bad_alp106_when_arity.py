# expect: ALP106
# The accept guard intercepts 1 parameter but its when-condition takes
# two; at runtime the guard would crash evaluating the condition.
from repro.core import AlpsObject, entry, icpt, manager_process


class WrongWhen(AlpsObject):
    @entry
    def acquire(self, amount):
        pass

    @manager_process(intercepts={"acquire": icpt(params=1)})
    def mgr(self):
        available = 10
        while True:
            call = yield self.accept(
                "acquire", when=lambda amount, extra: amount <= available
            )
            yield from self.execute(call)
