# The when-condition reads real manager state; it can become true, clean.
from repro.core import AcceptGuard, AlpsObject, Select, entry, manager_process


class Drains(AlpsObject):
    @entry
    def fill(self):
        pass

    @entry
    def drain(self):
        pass

    @manager_process(intercepts=["fill", "drain"])
    def mgr(self):
        level = 0
        while True:
            result = yield Select(
                AcceptGuard(self, "fill"),
                AcceptGuard(self, "drain", when=lambda: level > 0),
            )
            call = result.value
            if call.entry == "fill":
                level += 1
            else:
                level -= 1
            yield from self.execute(call)
