# Method-position retry sites that are storm-safe: the variable-held
# policy is rebound to a bounded one before the call, and the second
# site passes a budget with its unbounded policy.  Clean.
from repro.faults import ExponentialBackoff, FixedBackoff, retry, shared_budget


class ReplicaReader:
    def __init__(self, kernel, store):
        self.kernel = kernel
        self.store = store

    def read_bounded(self, key):
        policy = ExponentialBackoff(base=2, max_attempts=None)
        policy = FixedBackoff(delay=20, max_attempts=5)

        def build():
            return self.store.get(key, timeout=50)

        value = yield from retry(build, policy)
        return value

    def read_budgeted(self, key):
        policy = ExponentialBackoff(base=2, max_attempts=None)
        budget = shared_budget(self.kernel, "reader", self.store)

        def build():
            return self.store.get(key, timeout=50)

        value = yield from retry(build, policy, budget=budget)
        return value
