# `execute` packages start+await+finish (§2.3); full coverage, clean.
from repro.core import AlpsObject, entry, manager_process


class Packaged(AlpsObject):
    @entry
    def work(self):
        pass

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            yield from self.execute(call)
