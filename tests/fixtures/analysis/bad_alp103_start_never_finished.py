# expect: ALP103
# Started bodies run, but the manager never awaits or finishes them:
# callers block forever waiting for results that are never delivered.
from repro.core import AlpsObject, Start, entry, manager_process


class FireAndForget(AlpsObject):
    @entry
    def work(self):
        pass

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            yield Start(call)
