# The when-condition takes exactly the 1 intercepted parameter; clean.
from repro.core import AlpsObject, entry, icpt, manager_process


class RightWhen(AlpsObject):
    @entry
    def acquire(self, amount):
        pass

    @manager_process(intercepts={"acquire": icpt(params=1)})
    def mgr(self):
        available = 10
        while True:
            call = yield self.accept(
                "acquire", when=lambda amount: amount <= available
            )
            yield from self.execute(call)
