# expect: ALP110
# `read` is implemented as a hidden array of 2 procedures (slots 0 and
# 1); the quantified guard names slot 5, which can never hold a call.
from repro.core import AlpsObject, entry, manager_process


class OffTheEnd(AlpsObject):
    @entry(returns=1, array=2)
    def read(self, key):
        return None

    @manager_process(intercepts=["read"])
    def mgr(self):
        while True:
            call = yield self.accept("read", slot=5)
            yield from self.execute(call)
