# Every guard and #pending expression names a declared procedure; clean.
from repro.core import AlpsObject, entry, manager_process


class WellSpelled(AlpsObject):
    @entry
    def deposit(self, item):
        pass

    @entry(returns=1)
    def remove(self):
        return None

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        while True:
            if self.pending("remove") > 0:
                call = yield self.accept("remove")
            else:
                call = yield self.accept("deposit")
            yield from self.execute(call)
