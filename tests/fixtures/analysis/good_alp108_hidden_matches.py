# Start supplies exactly the declared hidden parameter; clean.
from repro.core import AlpsObject, Finish, Start, entry, icpt, manager_process


class SingleDevice(AlpsObject):
    @entry(hidden_params=1)
    def write(self, block, device):
        pass

    @manager_process(intercepts={"write": icpt()})
    def mgr(self):
        device = object()
        while True:
            call = yield self.accept("write")
            yield Start(call, device)
            done = yield self.await_("write", call=call)
            yield Finish(done)
