# Nested-function retry sites that are storm-safe: the inner scope
# shadows the enclosing unbounded policy with a bounded one, so the
# binding the call site sees is finite.  Clean.
from repro.faults import ExponentialBackoff, FixedBackoff, retry


def make_poller(kernel, store):
    policy = ExponentialBackoff(base=2, max_attempts=None)

    def poller(key):
        policy = FixedBackoff(delay=20, max_attempts=4)

        def build():
            return store.get(key, timeout=50)

        value = yield from retry(build, policy)
        return value

    return poller
