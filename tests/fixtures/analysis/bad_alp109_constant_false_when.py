# expect: ALP109
# A guard whose when-condition is the literal False can never fire;
# every `drain` call starves behind it.
from repro.core import AcceptGuard, AlpsObject, Select, entry, manager_process


class NeverDrains(AlpsObject):
    @entry
    def fill(self):
        pass

    @entry
    def drain(self):
        pass

    @manager_process(intercepts=["fill", "drain"])
    def mgr(self):
        while True:
            result = yield Select(
                AcceptGuard(self, "fill"),
                AcceptGuard(self, "drain", when=lambda: False),
            )
            yield from self.execute(result.value)
