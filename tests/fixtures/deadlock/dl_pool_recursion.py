# Deadlock fixture: unmanaged objects with single-slot hidden procedure
# arrays and per-slot server pools calling each other.  Fwd.hop occupies
# its only slot and calls Back.ricochet, which calls Fwd.hop again — the
# recursive call queues for the slot its own ancestor holds:
# pool-exhaustion deadlock with no manager anywhere in the loop.
from repro.core import AlpsObject, entry
from repro.core.pool import PoolConfig


class Fwd(AlpsObject):
    @entry(returns=1)
    def hop(self):
        value = yield self.peer.ricochet()
        return value


class Back(AlpsObject):
    @entry(returns=1)
    def ricochet(self):
        value = yield self.peer.hop()  # needs Fwd.hop's only slot
        return value


def build(kernel):
    fwd = Fwd(kernel, pool=PoolConfig("per-slot"))
    back = Back(kernel, pool=PoolConfig("per-slot"))
    fwd.peer = back
    back.peer = fwd
    kernel.spawn(lambda: (yield fwd.hop()), name="client")
    return fwd, back
