# Deadlock fixture: monitor-style managers whose bodies call each other.
# Ping.poke runs under an inline execute (the manager is non-receptive
# until the body finishes) and calls Pong.bounce, whose body calls back
# into Ping.poke — the second call queues behind the blocked manager and
# every participant waits forever.
#
# Contract: build(kernel) wires the objects (default names, so the
# runtime obj labels equal the class names) and spawns the client(s);
# kernel.run() must raise DeadlockError with at least one cycle, and the
# whole-program analyzer must predict that cycle statically (ALP120).
from repro.core import AlpsObject, entry, manager_process


class Ping(AlpsObject):
    @entry(returns=1)
    def poke(self):
        value = yield self.peer.bounce()
        return value + 1

    @manager_process(intercepts=["poke"])
    def mgr(self):
        while True:
            call = yield self.accept("poke")
            yield from self.execute(call)


class Pong(AlpsObject):
    @entry(returns=1)
    def bounce(self):
        value = yield self.peer.poke()
        return value + 1

    @manager_process(intercepts=["bounce"])
    def mgr(self):
        while True:
            call = yield self.accept("bounce")
            yield from self.execute(call)


def build(kernel):
    ping = Ping(kernel)
    pong = Pong(kernel)
    ping.peer = pong
    pong.peer = ping
    kernel.spawn(lambda: (yield ping.poke()), name="client")
    return ping, pong
