# Deadlock fixture: a manager that starts the body asynchronously but
# then parks in a bare await_ — a one-guard select with no accept, so it
# is *not* receptive while the body runs.  The body calls into Lock,
# whose body calls back into Gate.enter; that second call queues behind
# the non-receptive manager and the handshake never completes.
from repro.core import AlpsObject, Finish, Start, entry, manager_process


class Gate(AlpsObject):
    @entry(returns=1)
    def enter(self):
        token = yield self.lock.acquire()
        return token

    @manager_process(intercepts=["enter"])
    def mgr(self):
        while True:
            call = yield self.accept("enter")
            yield Start(call)
            done = yield self.await_("enter", call=call)  # non-receptive
            yield Finish(done)


class Lock(AlpsObject):
    @entry(returns=1)
    def acquire(self):
        token = yield self.gate.enter()  # re-enters the parked manager
        return token

    @manager_process(intercepts=["acquire"])
    def mgr(self):
        while True:
            call = yield self.accept("acquire")
            yield from self.execute(call)


def build(kernel):
    gate = Gate(kernel)
    lock = Lock(kernel)
    gate.lock = lock
    lock.gate = gate
    kernel.spawn(lambda: (yield gate.enter()), name="client")
    return gate, lock
