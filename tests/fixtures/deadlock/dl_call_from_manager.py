# Deadlock fixture: each manager performs a *direct* entry call into its
# peer before finishing the call it accepted.  Left's manager blocks
# awaiting Right's accept while Right's manager blocks awaiting Left's:
# a two-manager cycle with no body in the loop (the shape the
# wait-for-graph tests call Alpha/Beta, here with default names so the
# runtime labels match the class names).
from repro.core import AlpsObject, entry, manager_process


class Left(AlpsObject):
    @entry(returns=1)
    def ask(self):
        return "left"

    @entry
    def nudge(self):
        pass

    @manager_process(intercepts=["ask", "nudge"])
    def mgr(self):
        call = yield self.accept("ask")
        yield self.peer.answer()  # blocks on Right's manager
        yield from self.execute(call)


class Right(AlpsObject):
    @entry(returns=1)
    def answer(self):
        return "right"

    @manager_process(intercepts=["answer"])
    def mgr(self):
        call = yield self.accept("answer")
        yield self.peer.nudge()  # blocks back on Left's manager: cycle
        yield from self.execute(call)


def build(kernel):
    left = Left(kernel)
    right = Right(kernel)
    left.peer = right
    right.peer = left
    kernel.spawn(lambda: (yield left.ask()), name="client")
    return left, right
