"""The §2.8.2 parallel bounded buffer, compiled from ALPS source.

This is the paper's most intricate program: Deposit/Remove as hidden
procedure arrays, a hidden ``Place`` parameter supplied by the manager at
``start``, the slot index returned as a hidden result at ``await``, and
the manager's Free/Full index lists.  Transcribed nearly verbatim
(regularized syntax; Free/Full as builtin arrays with explicit pointers,
exactly like the paper's ``FreeIn``/``FreeOut``/``FullIn``/``FullOut``).
"""

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.lang import compile_program

SOURCE = """
object Buffer defines
  proc Deposit(Message);
  proc Remove() returns (Message);
end Buffer;

object Buffer implements
  var N: int := 4;
  var ProducerMax: int := 3;
  var ConsumerMax: int := 3;
  var CopyWork: int := 30;
  var Buf := array(N);

  proc Deposit[1..ProducerMax](M, Place) returns (1);
  begin
    work(CopyWork);
    Buf[Place] := M;
    return (Place);             { hidden result: the slot index }
  end Deposit;

  proc Remove[1..ConsumerMax](Place) returns (2);
  var M := nil;
  begin
    work(CopyWork);
    M := Buf[Place];
    return (M, Place);          { message + hidden slot index }
  end Remove;

  manager
    intercepts Deposit, Remove;
    var Free := array(4);
    var Full := array(4);
    var FreeIn: int := 0;
    var FreeOut: int := 0;
    var FullIn: int := 0;
    var FullOut: int := 0;
    var Max: int := 4;          { free slots available }
    var Min: int := 0;          { full slots available }
    var I: int := 0;
  begin
    while I < 4 do
      Free[I] := I;             { initially all slots are free }
      I := I + 1;
    end while;
    loop
      (i: 1..ProducerMax) accept Deposit[i] when Max > 0 =>
        start Deposit(Free[FreeOut]);
        FreeOut := (FreeOut + 1) mod N;
        Max := Max - 1;
    or
      (i: 1..ConsumerMax) accept Remove[i] when Min > 0 =>
        start Remove(Full[FullOut]);
        FullOut := (FullOut + 1) mod N;
        Min := Min - 1;
    or
      (i: 1..ProducerMax) await Deposit[i](Place) =>
        finish Deposit;
        Full[FullIn] := Place;
        FullIn := (FullIn + 1) mod N;
        Min := Min + 1;
    or
      (i: 1..ConsumerMax) await Remove[i](Place) =>
        finish Remove;
        Free[FreeIn] := Place;
        FreeIn := (FreeIn + 1) mod N;
        Max := Max + 1;
    end loop;
  end manager;
end Buffer;
"""


def build(kernel, **config):
    module = compile_program(SOURCE)
    return module.instantiate(kernel, "Buffer", **config)


class TestPaper282Source:
    def test_single_stream_roundtrip(self):
        kernel = Kernel(costs=FREE)
        buffer = build(kernel)

        def main():
            for i in range(6):
                yield buffer.call("Deposit", f"m{i}")
                got = yield buffer.call("Remove")
                assert got == f"m{i}"

        kernel.run_process(main)

    def test_parallel_producers_consumers_conserve(self):
        kernel = Kernel(costs=FREE)
        buffer = build(kernel)
        received = []

        def producer(base):
            for i in range(4):
                yield buffer.call("Deposit", (base, i))

        def consumer():
            for _ in range(4):
                received.append((yield buffer.call("Remove")))

        def main():
            yield Par(
                *[lambda b=b: producer(b) for b in range(3)],
                *[lambda: consumer() for _ in range(3)],
            )

        kernel.run_process(main)
        assert sorted(received) == [(b, i) for b in range(3) for i in range(4)]

    def test_copies_overlap(self):
        kernel = Kernel(costs=FREE)
        buffer = build(kernel, CopyWork=100)

        def producer(base):
            yield buffer.call("Deposit", base)

        def consumer():
            return (yield buffer.call("Remove"))

        def main():
            yield Par(
                *[lambda b=b: producer(b) for b in range(3)],
                *[lambda: consumer() for _ in range(3)],
            )

        kernel.run_process(main)
        # 3 deposits overlap, then 3 removes overlap: far below the
        # 6 x 100 serial bound — the §2.8.2 parallelism claim, from source.
        assert kernel.clock.now < 350

    def test_hidden_results_recycle_slots(self):
        # 10 messages through 4 slots forces slot recycling through the
        # Free/Full lists driven purely by hidden results.
        kernel = Kernel(costs=FREE)
        buffer = build(kernel)

        def main():
            for i in range(10):
                yield buffer.call("Deposit", i)
                assert (yield buffer.call("Remove")) == i

        kernel.run_process(main)
