"""Unit tests for the interpreter's expression evaluator."""

import pytest

from repro.lang import compile_program
from repro.lang.interp import BUILTINS, Env, LangRuntimeError, eval_expr
from repro.lang.parser import Parser


def expr(text):
    """Parse a standalone expression."""
    return Parser(text).parse_expr()


def ev(text, **locals_):
    env = Env(None, None, dict(locals_))
    return eval_expr(env, expr(text))


class TestArithmetic:
    def test_precedence(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9

    def test_div_mod(self):
        assert ev("7 div 2") == 3
        assert ev("7 mod 2") == 1

    def test_unary_minus(self):
        assert ev("-3 + 5") == 2

    def test_comparisons(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("1 = 2") is False
        assert ev("1 <> 2") is True

    def test_boolean_operators(self):
        assert ev("true and not false") is True
        assert ev("false or true") is True

    def test_short_circuit(self):
        # 'and' must not evaluate the right side when left is false.
        assert ev("false and Missing") is False
        with pytest.raises(LangRuntimeError):
            ev("true and Missing")


class TestNamesAndStructure:
    def test_locals(self):
        assert ev("X + Y", X=3, Y=4) == 7

    def test_indexing(self):
        assert ev("A[1]", A=[10, 20, 30]) == 20

    def test_dict_indexing(self):
        assert ev("D['k']", D={"k": 9}) == 9

    def test_nested_index(self):
        assert ev("M[0][1]", M=[[1, 2]]) == 2

    def test_undefined_name_rejected(self):
        with pytest.raises(LangRuntimeError):
            ev("Nope")

    def test_nil(self):
        assert ev("nil") is None
        assert ev("X = nil", X=None) is True


class TestBuiltins:
    def test_array_builtin(self):
        assert ev("array(3)") == [None, None, None]

    def test_len_min_max(self):
        assert ev("len(A)", A=[1, 2]) == 2
        assert ev("min(3, 1)") == 1
        assert ev("max(3, 1)") == 3

    def test_chan_builtin(self):
        from repro.channels import Channel

        assert isinstance(ev("chan()"), Channel)

    def test_entry_call_in_expression_rejected(self):
        with pytest.raises(LangRuntimeError):
            ev("SomeObject(1)")


class TestModuleResolution:
    def test_instances_visible_by_name(self):
        from repro.kernel import Kernel

        kernel = Kernel()
        module = compile_program(
            """
            object A implements
              var X: int := 5;
              proc Get() returns (1); begin return (X); end Get;
            end A;
            """
        )
        instance = module.instantiate(kernel, "A")
        env = Env(None, module, {})
        assert eval_expr(env, expr("A")) is instance
