"""Parser tests for the ALPS surface syntax."""

import pytest

from repro.lang import LangSyntaxError, parse_program
from repro.lang import ast


MINIMAL = """
object Cell defines
  proc Put(Value);
  proc Get() returns (Value);
end Cell;

object Cell implements
  var Content := nil;
  proc Put(V); begin Content := V; end Put;
  proc Get() returns (1); begin return (Content); end Get;
end Cell;
"""


class TestObjectParsing:
    def test_definition_and_implementation(self):
        program = parse_program(MINIMAL)
        assert set(program.definitions) == {"Cell"}
        assert set(program.implementations) == {"Cell"}
        definition = program.definitions["Cell"]
        assert [p.name for p in definition.procs] == ["Put", "Get"]
        assert definition.procs[0].returns == 0
        assert definition.procs[1].returns == 1

    def test_mismatched_end_name_rejected(self):
        with pytest.raises(LangSyntaxError):
            parse_program("object A defines end B;")

    def test_procedure_array_declaration(self):
        program = parse_program(
            """
            object D implements
              proc Search[1..SearchMax](Word) returns (1);
              begin return (Word); end Search;
            end D;
            """
        )
        proc = program.implementations["D"].procs[0]
        assert isinstance(proc.array, ast.Var)
        assert proc.array.name == "SearchMax"

    def test_numeric_array_bound(self):
        program = parse_program(
            """
            object D implements
              proc P[1..8](); begin skip; end P;
            end D;
            """
        )
        assert program.implementations["D"].procs[0].array == 8

    def test_array_must_start_at_one(self):
        with pytest.raises(LangSyntaxError):
            parse_program(
                "object D implements proc P[0..8](); begin skip; end P; end D;"
            )

    def test_typed_parameters(self):
        program = parse_program(
            """
            object D implements
              proc W(Key: KeyType, Data: DataType); begin skip; end W;
            end D;
            """
        )
        assert program.implementations["D"].procs[0].params == ["Key", "Data"]

    def test_intercepts_with_params_and_results(self):
        program = parse_program(
            """
            object D implements
              proc S(W) returns (1); begin return (W); end S;
              manager intercepts S(Word; Meaning);
              begin skip; end manager;
            end D;
            """
        )
        clause = program.implementations["D"].manager.intercepts[0]
        assert (clause.proc, clause.params, clause.results) == ("S", 1, 1)

    def test_two_managers_rejected(self):
        with pytest.raises(LangSyntaxError):
            parse_program(
                """
                object D implements
                  manager begin skip; end manager;
                  manager begin skip; end manager;
                end D;
                """
            )


class TestStatementParsing:
    def parse_body(self, statements):
        program = parse_program(
            f"""
            object T implements
              proc P(); begin {statements} end P;
            end T;
            """
        )
        return program.implementations["T"].procs[0].body

    def test_assignment(self):
        (stmt,) = self.parse_body("X := 1 + 2 * 3;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.Binary)
        assert stmt.value.op == "+"

    def test_multi_assignment(self):
        (stmt,) = self.parse_body("A, B := Obj.P(1);")
        assert len(stmt.targets) == 2
        assert isinstance(stmt.value, ast.CallExpr)

    def test_if_elsif_else(self):
        (stmt,) = self.parse_body(
            "if A then X := 1; elsif B then X := 2; else X := 3; end if;"
        )
        assert isinstance(stmt, ast.If)
        assert len(stmt.arms) == 2
        assert len(stmt.orelse) == 1

    def test_while(self):
        (stmt,) = self.parse_body("while N > 0 do N := N - 1; end while;")
        assert isinstance(stmt, ast.While)

    def test_send_receive(self):
        send, recv = self.parse_body("send C(1, 2); receive C(X, Y);")
        assert isinstance(send, ast.SendStmt)
        assert len(send.values) == 2
        assert isinstance(recv, ast.ReceiveStmt)
        assert len(recv.targets) == 2

    def test_work_and_return(self):
        work, ret = self.parse_body("work(50); return (A, B);")
        assert isinstance(work, ast.WorkStmt)
        assert isinstance(ret, ast.ReturnStmt)
        assert len(ret.values) == 2

    def test_pending_count_expression(self):
        (stmt,) = self.parse_body("X := #Write;")
        assert isinstance(stmt.value, ast.Pending)
        assert stmt.value.proc == "Write"

    def test_operator_precedence(self):
        (stmt,) = self.parse_body("X := 1 + 2 = 3 and true;")
        # parses as ((1+2) = 3) and true
        assert stmt.value.op == "and"
        assert stmt.value.left.op == "="


class TestGuardParsing:
    def parse_manager(self, body):
        program = parse_program(
            f"""
            object T implements
              proc P(); begin skip; end P;
              manager intercepts P;
              begin {body} end manager;
            end T;
            """
        )
        return program.implementations["T"].manager.body

    def test_loop_with_alternatives(self):
        (stmt,) = self.parse_manager(
            "loop accept P => execute P; or when false => skip; end loop;"
        )
        assert isinstance(stmt, ast.SelectStmt)
        assert stmt.repetitive
        assert [c.kind for c in stmt.clauses] == ["accept", "when"]

    def test_quantified_guard(self):
        (stmt,) = self.parse_manager(
            "loop (i: 1..ReadMax) accept P[i] when X < 3 => start P; end loop;"
        )
        clause = stmt.clauses[0]
        assert clause.kind == "accept"
        assert clause.proc == "P"
        assert clause.when is not None

    def test_guard_with_pri(self):
        (stmt,) = self.parse_manager(
            "select accept P(N) when N > 0 pri 0 - N => start P; end select;"
        )
        clause = stmt.clauses[0]
        assert clause.binders == ["N"]
        assert clause.pri is not None

    def test_await_guard_with_results(self):
        (stmt,) = self.parse_manager(
            "loop await P(R) => finish P(R); end loop;"
        )
        clause = stmt.clauses[0]
        assert clause.kind == "await"
        assert clause.binders == ["R"]

    def test_select_not_repetitive(self):
        (stmt,) = self.parse_manager("select accept P => skip; end select;")
        assert not stmt.repetitive
