"""Lexer tests for the ALPS surface syntax."""

import pytest

from repro.lang import LangSyntaxError, tokenize


class TestTokenize:
    def kinds(self, source):
        return [(t.kind, t.value) for t in tokenize(source)[:-1]]

    def test_keywords_case_insensitive(self):
        assert self.kinds("OBJECT Object oBjEcT") == [("kw", "object")] * 3

    def test_identifiers(self):
        assert self.kinds("Deposit ReadMax x_1") == [
            ("name", "Deposit"),
            ("name", "ReadMax"),
            ("name", "x_1"),
        ]

    def test_numbers_and_strings(self):
        assert self.kinds('42 "hello" \'there\'') == [
            ("int", "42"),
            ("string", "hello"),
            ("string", "there"),
        ]

    def test_compound_symbols(self):
        assert self.kinds(":= => .. <= >= <>") == [
            ("sym", ":="),
            ("sym", "=>"),
            ("sym", ".."),
            ("sym", "<="),
            ("sym", ">="),
            ("sym", "<>"),
        ]

    def test_pascal_comments_skipped(self):
        assert self.kinds("a { the buffer } b") == [
            ("name", "a"),
            ("name", "b"),
        ]

    def test_line_comments_skipped(self):
        assert self.kinds("a // ignore this\nb") == [
            ("name", "a"),
            ("name", "b"),
        ]

    def test_multiline_comment_tracks_lines(self):
        tokens = tokenize("{ first\nsecond }\nx")
        assert tokens[0].line == 3

    def test_unterminated_comment_rejected(self):
        with pytest.raises(LangSyntaxError):
            tokenize("{ never closed")

    def test_unterminated_string_rejected(self):
        with pytest.raises(LangSyntaxError):
            tokenize('"open')

    def test_unknown_character_rejected(self):
        with pytest.raises(LangSyntaxError):
            tokenize("a ? b")

    def test_positions(self):
        token = tokenize("  hello")[0]
        assert (token.line, token.column) == (1, 3)

    def test_pending_count_symbol(self):
        assert self.kinds("#Write") == [("sym", "#"), ("name", "Write")]
