"""End-to-end tests: the paper's programs in their own notation.

Each test compiles ALPS source (close to the paper's figures) and runs
it on the kernel, asserting the same behavioural claims as the
hand-written stdlib versions.
"""

import pytest

from repro.errors import DeadlockError
from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.lang import LangRuntimeError, compile_program


BUFFER_SOURCE = """
object Buffer defines
  proc Deposit(Message);
  proc Remove() returns (Message);
end Buffer;

object Buffer implements
  var N: int := 4;
  var Buf := array(N);
  var InPtr: int := 0;
  var OutPtr: int := 0;

  proc Deposit(M);
  begin
    Buf[InPtr] := M;
    InPtr := (InPtr + 1) mod N;
  end Deposit;

  proc Remove() returns (1);
  var M := nil;
  begin
    return (Buf[OutPtr]);
  end Remove;

  manager
    intercepts Deposit, Remove;
    var Count: int := 0;
  begin
    loop
      accept Deposit when Count < N =>
        execute Deposit;
        Count := Count + 1;
    or
      accept Remove when Count > 0 =>
        execute Remove;
        OutPtr := (OutPtr + 1) mod N;
        Count := Count - 1;
    end loop;
  end manager;
end Buffer;
"""


class TestCompiledBuffer:
    def run_buffer(self, size, messages):
        kernel = Kernel(costs=FREE)
        module = compile_program(BUFFER_SOURCE)
        buf = module.instantiate(kernel, "Buffer", N=size)

        def producer():
            for i in range(messages):
                yield buf.call("Deposit", i)

        def consumer():
            got = []
            for _ in range(messages):
                got.append((yield buf.call("Remove")))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        return proc.result

    def test_fifo_transfer(self):
        assert self.run_buffer(3, 10) == list(range(10))

    def test_size_one(self):
        assert self.run_buffer(1, 5) == list(range(5))

    def test_matches_stdlib_buffer(self):
        from repro.stdlib import BoundedBuffer

        kernel = Kernel(costs=FREE)
        native = BoundedBuffer(kernel, size=3)

        def producer():
            for i in range(10):
                yield native.deposit(i)

        def consumer():
            got = []
            for _ in range(10):
                got.append((yield native.remove()))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        assert self.run_buffer(3, 10) == proc.result


DICTIONARY_SOURCE = """
object Dictionary defines
  proc Search(Word) returns (Meaning);
end Dictionary;

object Dictionary implements
  var SearchMax: int := 8;
  var Meanings := nil;
  var Executed: int := 0;

  proc Search[1..SearchMax](Word) returns (1);
  begin
    Executed := Executed + 1;
    work(50);
    return (Meanings[Word]);
  end Search;

  manager
    intercepts Search(Word; Meaning);
    var InFlight := nil;
  begin
    loop
      accept Search(Word) =>
        if InFlight = nil then
          InFlight := array(0);
        end if;
        start Search(Word);
    or
      await Search(Meaning) =>
        finish Search(Meaning);
    end loop;
  end manager;
end Dictionary;
"""


class TestCompiledDictionary:
    def test_hidden_array_with_intercepted_params_and_results(self):
        kernel = Kernel(costs=FREE)
        module = compile_program(DICTIONARY_SOURCE)
        dictionary = module.instantiate(
            kernel, "Dictionary", Meanings={"cat": "feline", "dog": "canine"}
        )

        def client(word):
            return (yield dictionary.call("Search", word))

        def main():
            return (yield Par(lambda: client("cat"), lambda: client("dog")))

        assert kernel.run_process(main) == ["feline", "canine"]
        assert dictionary.Executed == 2

    def test_concurrent_searches_overlap(self):
        kernel = Kernel(costs=FREE)
        module = compile_program(DICTIONARY_SOURCE)
        dictionary = module.instantiate(
            kernel, "Dictionary", Meanings={"a": 1, "b": 2, "c": 3, "d": 4}
        )

        def client(word):
            return (yield dictionary.call("Search", word))

        def main():
            return (
                yield Par(*[lambda w=w: client(w) for w in "abcd"])
            )

        assert kernel.run_process(main) == [1, 2, 3, 4]
        # Four 50-tick searches overlapped on the hidden array.
        assert kernel.clock.now < 200


READERS_WRITERS_SOURCE = """
object Database defines
  proc Read(Key) returns (Data);
  proc Write(Key, Data);
end Database;

object Database implements
  var ReadMax: int := 4;
  var Store := nil;

  proc Read[1..ReadMax](Key) returns (1);
  begin
    work(10);
    return (Store[Key]);
  end Read;

  proc Write(Key, Data);
  begin
    work(20);
    Store[Key] := Data;
  end Write;

  manager
    intercepts Read, Write;
    var ReadCount: int := 0;
    var WriterLast := false;
    var Writing := false;
  begin
    loop
      (i: 1..ReadMax) accept Read[i]
          when ReadCount < ReadMax and not Writing
               and (#Write = 0 or WriterLast) =>
        ReadCount := ReadCount + 1;
        WriterLast := false;
        start Read;
    or
      accept Write
          when ReadCount = 0 and not Writing
               and (#Read = 0 or not WriterLast) =>
        Writing := true;
        start Write;
    or
      (i: 1..ReadMax) await Read[i] =>
        ReadCount := ReadCount - 1;
        finish Read;
    or
      await Write =>
        Writing := false;
        WriterLast := true;
        finish Write;
    end loop;
  end manager;
end Database;
"""


class TestCompiledReadersWriters:
    def test_paper_program_runs(self):
        kernel = Kernel(costs=FREE)
        module = compile_program(READERS_WRITERS_SOURCE)
        db = module.instantiate(kernel, "Database", Store={"k": "v0"})

        def reader(i):
            return (yield db.call("Read", "k"))

        def writer(i):
            yield db.call("Write", "k", f"v{i}")

        def main():
            return (
                yield Par(
                    *[lambda i=i: reader(i) for i in range(6)],
                    *[lambda i=i: writer(i) for i in range(2)],
                )
            )

        results = kernel.run_process(main)
        reads = results[:6]
        assert all(r in ("v0", "v1", "v0v", "v1") or str(r).startswith("v") for r in reads)
        assert db.Store["k"] in ("v0", "v1")

    def test_readers_overlap_writers_exclude(self):
        kernel = Kernel(costs=FREE)
        module = compile_program(READERS_WRITERS_SOURCE)
        db = module.instantiate(kernel, "Database", Store={"k": 0})

        def reader(i):
            return (yield db.call("Read", "k"))

        def main():
            return (yield Par(*[lambda i=i: reader(i) for i in range(8)]))

        kernel.run_process(main)
        # 8 reads of 10 ticks with up-to-4 concurrency: 2 waves ≈ 20-40.
        assert kernel.clock.now < 8 * 10


COMBINING_SOURCE = """
object Oracle defines
  proc Ask() returns (Answer);
end Oracle;

object Oracle implements
  proc Ask() returns (1);
  begin
    return (0);
  end Ask;

  manager intercepts Ask;
  begin
    loop
      accept Ask =>
        finish Ask(42);
    end loop;
  end manager;
end Oracle;
"""


class TestCompiledCombining:
    def test_finish_without_start(self):
        kernel = Kernel()
        module = compile_program(COMBINING_SOURCE)
        oracle = module.instantiate(kernel, "Oracle")

        def client():
            return (yield oracle.call("Ask"))

        assert kernel.run_process(client) == 42
        assert kernel.stats.starts == 0
        assert kernel.stats.calls_combined == 1


CHANNEL_SOURCE = """
object Relay defines
  proc Run(Inbox, Outbox, Count);
end Relay;

object Relay implements
  proc Run(Inbox, Outbox, Count);
  var X := nil;
  var I: int := 0;
  begin
    while I < Count do
      receive Inbox(X);
      send Outbox(X * 10);
      I := I + 1;
    end while;
  end Run;
end Relay;
"""


class TestCompiledChannels:
    def test_send_receive_in_alps_source(self):
        from repro.channels import Channel, Receive, Send

        kernel = Kernel(costs=FREE)
        module = compile_program(CHANNEL_SOURCE)
        relay = module.instantiate(kernel, "Relay")
        inbox, outbox = Channel(), Channel()

        def feeder():
            for i in range(4):
                yield Send(inbox, i)

        def caller():
            yield relay.call("Run", inbox, outbox, 4)

        def collector():
            got = []
            for _ in range(4):
                got.append((yield Receive(outbox)))
            return got

        kernel.spawn(feeder)
        kernel.spawn(caller)
        proc = kernel.spawn(collector)
        kernel.run()
        assert proc.result == [0, 10, 20, 30]


class TestErrors:
    def test_unknown_object_rejected(self):
        module = compile_program(BUFFER_SOURCE)
        from repro.errors import ObjectModelError

        with pytest.raises(ObjectModelError):
            module.instantiate(Kernel(), "Nope")

    def test_missing_return_is_loud(self):
        kernel = Kernel()
        module = compile_program(
            """
            object T implements
              proc P() returns (1);
              begin skip; end P;
            end T;
            """
        )
        obj = module.instantiate(kernel, "T")

        def main():
            return (yield obj.call("P"))

        with pytest.raises(LangRuntimeError):
            kernel.run_process(main)

    def test_undefined_name_is_loud(self):
        kernel = Kernel()
        module = compile_program(
            """
            object T implements
              proc P(); begin X := Undefined + 1; end P;
            end T;
            """
        )
        obj = module.instantiate(kernel, "T")

        def main():
            yield obj.call("P")

        with pytest.raises(LangRuntimeError):
            kernel.run_process(main)

    def test_start_without_accept_is_loud(self):
        kernel = Kernel()
        module = compile_program(
            """
            object T implements
              proc P(); begin skip; end P;
              manager intercepts P;
              begin
                start P;
              end manager;
            end T;
            """
        )
        module.instantiate(kernel, "T")
        with pytest.raises(LangRuntimeError):
            kernel.run()


class TestCrossObjectCalls:
    def test_objects_call_each_other_by_name(self):
        kernel = Kernel(costs=FREE)
        module = compile_program(
            """
            object Doubler defines
              proc Double(X) returns (Y);
            end Doubler;

            object Doubler implements
              proc Double(X) returns (1);
              begin return (X * 2); end Double;
            end Doubler;

            object Client defines
              proc Go(X) returns (Y);
            end Client;

            object Client implements
              proc Go(X) returns (1);
              var R := nil;
              begin
                R := Doubler.Double(X);
                return (R + 1);
              end Go;
            end Client;
            """
        )
        module.instantiate(kernel, "Doubler")
        client = module.instantiate(kernel, "Client")

        def main():
            return (yield client.call("Go", 20))

        assert kernel.run_process(main) == 41
