"""Tests for remote entry calls and cross-node channels."""

import pytest

from repro.channels import Receive
from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.net import NetChannel, NetSend, transputer_grid
from repro.stdlib import BoundedBuffer, Dictionary


class TestRemoteCalls:
    def test_remote_call_pays_round_trip(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4, link_latency=1)
        d = Dictionary(kernel, entries={"cat": "feline"}, search_work=0)
        net.node("t3_3").place(d)

        def client():
            value = yield d.search("cat")
            return (value, kernel.clock.now)

        proc = net.node("t0_0").spawn(client)
        kernel.run()
        value, elapsed = proc.result
        assert value == "feline"
        assert elapsed >= 12  # 6 hops out + 6 hops back

    def test_local_call_pays_nothing(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 2, 2)
        d = Dictionary(kernel, entries={"cat": "feline"}, search_work=0)
        node = net.node("t0_0")
        node.place(d)

        def client():
            value = yield d.search("cat")
            return kernel.clock.now

        proc = node.spawn(client)
        kernel.run()
        assert proc.result == 0

    def test_unplaced_caller_pays_nothing(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 2, 2)
        d = Dictionary(kernel, entries={"a": "b"}, search_work=0)
        net.node("t0_0").place(d)

        def client():
            yield d.search("a")
            return kernel.clock.now

        proc = kernel.spawn(client)  # no home node
        kernel.run()
        assert proc.result == 0

    def test_closer_replica_is_faster(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4)
        near = Dictionary(kernel, entries={"a": "b"}, search_work=0, name="near")
        far = Dictionary(kernel, entries={"a": "b"}, search_work=0, name="far")
        net.node("t0_1").place(near)
        net.node("t3_3").place(far)
        times = {}

        def client(obj, tag):
            start = kernel.clock.now
            yield obj.search("a")
            times[tag] = kernel.clock.now - start

        home = net.node("t0_0")
        home.spawn(client, near, "near")
        home.spawn(client, far, "far")
        kernel.run()
        assert times["near"] < times["far"]

    def test_distributed_producer_consumer(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4)
        buf = BoundedBuffer(kernel, size=4)
        net.node("t1_1").place(buf)

        def producer():
            for i in range(5):
                yield buf.deposit(i)

        def consumer():
            got = []
            for _ in range(5):
                got.append((yield buf.remove()))
            return got

        net.node("t0_0").spawn(producer)
        proc = net.node("t3_3").spawn(consumer)
        kernel.run()
        assert proc.result == [0, 1, 2, 3, 4]
        assert kernel.clock.now > 0  # network latency was paid


class TestNetChannels:
    def test_remote_send_delayed(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4)
        inbox = NetChannel(net.node("t3_3"), name="inbox")

        def sender():
            yield NetSend(inbox, "hello")

        def receiver():
            value = yield Receive(inbox)
            return (value, kernel.clock.now)

        net.node("t0_0").spawn(sender)
        proc = net.node("t3_3").spawn(receiver)
        kernel.run()
        value, when = proc.result
        assert value == "hello"
        assert when >= 6

    def test_local_send_immediate(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 2, 2)
        node = net.node("t0_0")
        inbox = NetChannel(node, name="inbox")

        def sender():
            yield NetSend(inbox, "hi")

        def receiver():
            yield Receive(inbox)
            return kernel.clock.now

        node.spawn(sender)
        proc = node.spawn(receiver)
        kernel.run()
        assert proc.result == 0

    def test_message_size_scales_delay(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4)
        inbox = NetChannel(net.node("t0_3"), name="inbox")
        times = []

        def sender(size):
            yield NetSend(inbox, "payload", size=size)

        def receiver():
            for _ in range(2):
                yield Receive(inbox)
                times.append(kernel.clock.now)

        net.node("t0_0").spawn(sender, 1)
        proc = net.node("t0_3").spawn(receiver)
        kernel.run(until=5)
        net.node("t0_0").spawn(sender, 10)
        kernel.run()
        assert times[0] == 3      # 3 hops x size 1
        assert times[1] >= 30     # 3 hops x size 10
