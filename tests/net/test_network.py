"""Unit tests for the simulated network graph."""

import pytest

from repro.errors import NetworkError
from repro.kernel import Kernel
from repro.net import Network


@pytest.fixture
def net(kernel):
    return Network(kernel)


class TestTopology:
    def test_add_and_fetch_nodes(self, net):
        a = net.add_node("a")
        assert net.node("a") is a
        assert len(net.nodes()) == 1

    def test_duplicate_node_rejected(self, net):
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.add_node("a")

    def test_unknown_node_rejected(self, net):
        with pytest.raises(NetworkError):
            net.node("ghost")

    def test_self_link_rejected(self, net):
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.connect("a", "a")

    def test_connect_unknown_rejected(self, net):
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.connect("a", "b")

    def test_negative_latency_rejected(self, net):
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(NetworkError):
            net.connect("a", "b", latency=-1)


class TestRouting:
    def build_line(self, net, n=4, latency=2):
        nodes = [net.add_node(f"n{i}") for i in range(n)]
        for i in range(n - 1):
            net.connect(nodes[i], nodes[i + 1], latency)
        return nodes

    def test_direct_link(self, net):
        a, b = net.add_node("a"), net.add_node("b")
        net.connect(a, b, 3)
        assert net.latency(a, b) == 3

    def test_multi_hop_shortest_path(self, net):
        nodes = self.build_line(net, 4, latency=2)
        assert net.latency(nodes[0], nodes[3]) == 6

    def test_shortcut_preferred(self, net):
        nodes = self.build_line(net, 4, latency=2)
        net.connect(nodes[0], nodes[3], 1)
        assert net.latency(nodes[0], nodes[3]) == 1

    def test_same_node_zero(self, net):
        a = net.add_node("a")
        assert net.latency(a, a) == 0

    def test_no_route_rejected(self, net):
        a = net.add_node("a")
        b = net.add_node("b")  # never connected
        with pytest.raises(NetworkError):
            net.latency(a, b)

    def test_size_scales_latency(self, net):
        a, b = net.add_node("a"), net.add_node("b")
        net.connect(a, b, 3)
        assert net.latency(a, b, size=4) == 12

    def test_topology_change_invalidates_routes(self, net):
        nodes = self.build_line(net, 3, latency=5)
        assert net.latency(nodes[0], nodes[2]) == 10
        net.connect(nodes[0], nodes[2], 1)
        assert net.latency(nodes[0], nodes[2]) == 1

    def test_diameter(self, net):
        nodes = self.build_line(net, 5, latency=1)
        assert net.diameter() == 4

    def test_traffic_accumulates(self, net):
        a, b = net.add_node("a"), net.add_node("b")
        net.connect(a, b, 2)
        net.latency(a, b)
        net.latency(a, b)
        assert net.traffic == 4


class TestPlacement:
    def test_spawn_tags_process(self, net):
        node = net.add_node("a")

        def proc():
            yield from ()

        p = node.spawn(proc)
        assert p.node is node

    def test_place_tags_object(self, net, kernel):
        from repro.stdlib import BoundedBuffer

        node = net.add_node("a")
        buf = BoundedBuffer(kernel, size=2)
        node.place(buf)
        assert buf.node is node
        assert "BoundedBuffer" in node.objects
