"""Send accounting: one logical send == one ``sends`` tick, always.

Regression tests for a double-count bug: ``NetSend`` used to bump
``stats.sends`` once per *delivery*, so a fault-injected duplicate
inflated the send count.  Logical sends now tick ``sends`` exactly once
at send time; wire transmissions (including duplicates) are counted
separately under the typed ``rpc.messages`` counter.
"""

from repro.channels import Channel, Receive, Send
from repro.faults import FaultPlan, install
from repro.kernel import Kernel
from repro.kernel.costs import FREE
from repro.net import NetChannel, NetSend, ring


def run_send(kernel, net, syscall_factory, channel):
    got = []

    def sender():
        yield syscall_factory()

    def receiver():
        got.append((yield Receive(channel)))

    net.node("n0").spawn(sender, name="sender")
    kernel.spawn(receiver, name="receiver")
    kernel.run()
    return got


def test_local_channel_send_counts_once():
    kernel = Kernel(costs=FREE, seed=0)
    net = ring(kernel, 4)
    ch = Channel(name="local")
    got = run_send(kernel, net, lambda: Send(ch, "m"), ch)
    assert got == ["m"]
    assert kernel.stats.sends == 1
    # A node-local send never touches the wire.
    assert kernel.metrics.value("rpc.messages") == 0


def test_remote_send_counts_once_per_logical_send():
    kernel = Kernel(costs=FREE, seed=0)
    net = ring(kernel, 4)
    ch = NetChannel(net.node("n2"), name="remote")
    got = run_send(kernel, net, lambda: NetSend(ch, "m"), ch)
    assert got == ["m"]
    assert kernel.stats.sends == 1
    assert kernel.metrics.value("rpc.messages") == 1


def test_duplicated_message_not_double_counted_as_send():
    kernel = Kernel(costs=FREE, seed=0)
    net = ring(kernel, 4)
    install(kernel, net, FaultPlan(seed=0).duplicate_messages(1.0))
    ch = NetChannel(net.node("n2"), name="remote")
    got = run_send(kernel, net, lambda: NetSend(ch, "m"), ch)
    assert got == ["m"]
    # One logical send...
    assert kernel.stats.sends == 1
    # ... two wire transmissions (the duplicate), visible where they
    # belong, and the duplication itself on the fault layer's counter.
    assert kernel.metrics.value("rpc.messages") == 2
    assert kernel.metrics.value("faults.duplicated_messages") == 1
    # The duplicate still arrives: the channel buffered both copies.
    assert ch.total_sent == 2


def test_remote_send_through_faults_counts_wire_messages():
    kernel = Kernel(costs=FREE, seed=0)
    net = ring(kernel, 4)
    install(kernel, net, FaultPlan(seed=0))  # clean fates path
    ch = NetChannel(net.node("n2"), name="remote")
    got = run_send(kernel, net, lambda: NetSend(ch, "m"), ch)
    assert got == ["m"]
    assert kernel.stats.sends == 1
    assert kernel.metrics.value("rpc.messages") == 1
