"""Network edge cases: unplaced objects, same-node sends, no-route queries."""

import pytest

from repro.channels import Receive
from repro.errors import NetworkError
from repro.net import NetChannel, NetSend, Network, ring
from repro.stdlib import Dictionary


class TestUnplacedObject:
    def test_call_from_node_process_works_with_zero_latency(self, free_kernel):
        kernel = free_kernel
        net = ring(kernel, 4)
        # Never placed: the object lives "outside" the network, so calls
        # reach it without any network delay.
        d = Dictionary(kernel, name="d", entries={"a": 1}, search_work=0)
        times = []

        def client():
            value = yield d.search("a")
            times.append((kernel.clock.now, value))

        net.node("n2").spawn(client, name="client")
        kernel.run()
        assert times == [(0, 1)]
        assert net.traffic == 0

    def test_call_from_plain_process_works(self, kernel):
        ring(kernel, 4)  # a network exists but neither party is on it
        d = Dictionary(kernel, name="d", entries={"a": 1}, search_work=0)

        def client():
            return (yield d.search("a"))

        assert kernel.run_process(client) == 1


class TestSameNodeSend:
    def test_netsend_to_own_node_is_immediate_and_free(self, free_kernel):
        kernel = free_kernel
        net = ring(kernel, 4)
        inbox = NetChannel(net.node("n1"), name="inbox")
        got = []

        def main():
            yield NetSend(inbox, "local", size=100)  # size must not matter
            got.append((kernel.clock.now, (yield Receive(inbox))))

        net.node("n1").spawn(main, name="main")
        kernel.run()
        assert got == [(0, "local")]
        assert net.traffic == 0  # never touched a link

    def test_netsend_from_nodeless_process_is_immediate(self, free_kernel):
        kernel = free_kernel
        net = ring(kernel, 4)
        inbox = NetChannel(net.node("n1"), name="inbox")
        got = []

        def main():
            yield NetSend(inbox, "x")
            got.append((kernel.clock.now, (yield Receive(inbox))))

        kernel.spawn(main, name="main")  # spawned off-network
        kernel.run()
        assert got == [(0, "x")]


class TestNoRoute:
    def make_islands(self, kernel):
        """Two connected pairs with no bridge between them."""
        net = Network(kernel)
        for name in ("a0", "a1", "b0", "b1"):
            net.add_node(name)
        net.connect("a0", "a1", latency=2)
        net.connect("b0", "b1", latency=3)
        return net

    def test_latency_raises_across_islands(self, kernel):
        net = self.make_islands(kernel)
        with pytest.raises(NetworkError, match="no route"):
            net.latency("a0", "b1")

    def test_latency_or_none_returns_none(self, kernel):
        net = self.make_islands(kernel)
        assert net.latency_or_none("a0", "b1") is None
        assert net.latency_or_none("a0", "a1") == 2
        assert net.latency_or_none("b0", "b0") == 0

    def test_late_link_bridges_islands(self, kernel):
        net = self.make_islands(kernel)
        assert net.latency_or_none("a1", "b0") is None
        net.connect("a1", "b0", latency=1)  # invalidates cached routes
        assert net.latency("a0", "b1") == 2 + 1 + 3

    def test_diameter_ignores_unreachable_pairs(self, kernel):
        net = self.make_islands(kernel)
        assert net.diameter() == 3  # largest *reachable* distance
