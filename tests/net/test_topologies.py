"""Tests for the topology builders (§4 transputer grid and friends)."""

import pytest

from repro.errors import NetworkError
from repro.kernel import Kernel
from repro.net import full_mesh, hypercube, ring, star, transputer_grid


class TestTransputerGrid:
    def test_sixteen_nodes_default(self, kernel):
        net = transputer_grid(kernel)
        assert len(net.nodes()) == 16  # the paper's machine

    def test_grid_diameter(self, kernel):
        net = transputer_grid(kernel, 4, 4, link_latency=1)
        assert net.diameter() == 6  # (4-1)+(4-1) hops

    def test_torus_shrinks_diameter(self, kernel):
        grid = transputer_grid(kernel, 4, 4)
        torus = transputer_grid(Kernel(), 4, 4, torus=True)
        assert torus.diameter() < grid.diameter()

    def test_max_four_links_per_chip(self, kernel):
        # A transputer has exactly four links.
        net = transputer_grid(kernel, 4, 4)
        for name, links in net._links.items():
            assert len(links) <= 4

    def test_manhattan_routing(self, kernel):
        net = transputer_grid(kernel, 4, 4, link_latency=2)
        assert net.latency("t0_0", "t2_3") == 2 * (2 + 3)

    def test_invalid_shape_rejected(self, kernel):
        with pytest.raises(NetworkError):
            transputer_grid(kernel, 0, 4)


class TestOtherTopologies:
    def test_ring_roundtrip(self, kernel):
        net = ring(kernel, 6)
        assert net.latency("n0", "n3") == 3  # halfway either way
        assert net.latency("n0", "n5") == 1  # wraps around

    def test_ring_too_small_rejected(self, kernel):
        with pytest.raises(NetworkError):
            ring(kernel, 1)

    def test_star_two_hops_max(self, kernel):
        net = star(kernel, 5)
        assert net.latency("n0", "n4") == 2
        assert net.latency("hub", "n2") == 1
        assert net.diameter() == 2

    def test_full_mesh_single_hop(self, kernel):
        net = full_mesh(kernel, 5)
        assert net.diameter() == 1

    def test_hypercube_diameter_is_dimension(self, kernel):
        net = hypercube(kernel, 4)
        assert len(net.nodes()) == 16
        assert net.diameter() == 4

    def test_hypercube_neighbors_differ_one_bit(self, kernel):
        net = hypercube(kernel, 3)
        assert net.latency("n000", "n001") == 1
        assert net.latency("n000", "n011") == 2
        assert net.latency("n000", "n111") == 3
