"""RNG audit: every workload generator owns its randomness.

The offered-load invariant (same seed => same traffic, whatever the
mechanism under test does) only holds if no generator reads the global
``random`` module state.  These tests perturb the global RNG before,
between, and *during* generator use and require byte-identical output —
any generator that reaches for module-level ``random`` functions fails.
"""

import random

from repro.kernel import Kernel
from repro.kernel.costs import FREE
from repro.workloads import Bursty, Poisson, TrafficEngine, Uniform, Zipf


def perturbed(make_stream):
    """Run ``make_stream`` twice under different global RNG states."""
    random.seed(12345)
    random.random()  # advance
    first = make_stream()
    random.seed(99999)
    for _ in range(17):
        random.random()
    second = make_stream()
    return first, second


class TestGeneratorsOwnTheirRng:
    def test_uniform(self):
        a, b = perturbed(lambda: Uniform(3).arrivals(50))
        assert a == b

    def test_poisson(self):
        a, b = perturbed(lambda: Poisson(5, seed=7).arrivals(50))
        assert a == b

    def test_bursty(self):
        a, b = perturbed(lambda: Bursty(burst=4, quiet=20, jitter=3, seed=7).arrivals(50))
        assert a == b

    def test_zipf(self):
        keys = [f"k{i}" for i in range(16)]
        a, b = perturbed(lambda: list(Zipf(keys, s=1.1, seed=7).stream(50)))
        assert a == b

    def test_interleaved_global_draws(self):
        # Even drawing from the global RNG *between* gap draws must not
        # couple into the stream: generators hold their own Random.
        def noisy_stream():
            gaps = []
            it = iter(Poisson(5, seed=3).gaps())
            for _ in range(30):
                gaps.append(next(it))
                random.random()
            return gaps

        random.seed(1)
        a = noisy_stream()
        random.seed(2)
        b = noisy_stream()
        assert a == b

    def test_engine_schedule(self):
        def schedule():
            kernel = Kernel(costs=FREE)
            engine = TrafficEngine(
                kernel,
                Poisson(2, seed=5),
                40,
                lambda req: None,
                callers=10_000,
                engines=3,
                seed=5,
            )
            return engine.schedule

        a, b = perturbed(schedule)
        assert a == b

    def test_distinct_seeds_distinct_streams(self):
        # The flip side of the audit: seeds actually matter.
        assert Poisson(5, seed=1).arrivals(50) != Poisson(5, seed=2).arrivals(50)
        keys = [f"k{i}" for i in range(16)]
        assert list(Zipf(keys, s=1.1, seed=1).stream(50)) != list(
            Zipf(keys, s=1.1, seed=2).stream(50)
        )
