"""Tests for the open-loop traffic engine."""

import random

import pytest

from repro.kernel import Kernel
from repro.kernel.costs import FREE
from repro.obs import diff as obsdiff
from repro.stdlib import BoundedBuffer, GatedKVStore
from repro.workloads import (
    Poisson,
    Request,
    TrafficEngine,
    TrafficResult,
    Uniform,
)
from repro.workloads.engine import Outcome


def kv_request(kv):
    def build(req):
        key = f"k{req.caller % 8}"
        if req.index % 3 == 0:
            return kv.put(key, req.index)
        return kv.get(key)

    return build


def make_engine(kernel, *, count=60, gap=2, clients=8, seed=3, **kw):
    kv = GatedKVStore(kernel, read_work=1, write_work=3, request_max=4, queue_cap=4)
    return TrafficEngine(
        kernel,
        Poisson(gap, seed=seed),
        count,
        kv_request(kv),
        callers=1_000_000,
        engines=4,
        clients=clients,
        seed=seed,
        **kw,
    )


class TestSchedule:
    def test_deterministic_for_seed(self):
        a = make_engine(Kernel(costs=FREE)).schedule
        b = make_engine(Kernel(costs=FREE)).schedule
        assert a == b

    def test_independent_of_kernel_seed(self):
        # The engine draws from its own string-seeded RNG: the kernel's
        # integer arbitration seed cannot perturb the offered load.
        a = make_engine(Kernel(costs=FREE, seed=0)).schedule
        b = make_engine(Kernel(costs=FREE, seed=12345)).schedule
        assert a == b

    def test_independent_of_global_random(self):
        random.seed(1)
        a = make_engine(Kernel(costs=FREE)).schedule
        random.seed(999)
        b = make_engine(Kernel(costs=FREE)).schedule
        assert a == b

    def test_seed_changes_schedule(self):
        a = make_engine(Kernel(costs=FREE), seed=3).schedule
        b = make_engine(Kernel(costs=FREE), seed=4).schedule
        assert a != b

    def test_caller_slices_partition_schedule(self):
        engine = make_engine(Kernel(costs=FREE))
        slices = [engine.slice_for(i) for i in range(engine.engines)]
        merged = sorted(
            (req for slice_ in slices for req in slice_), key=lambda r: r.index
        )
        assert merged == engine.schedule
        for i, slice_ in enumerate(slices):
            assert all(req.caller % engine.engines == i for req in slice_)

    def test_per_caller_seq_numbers(self):
        engine = make_engine(Kernel(costs=FREE), count=500)
        seen: dict[int, int] = {}
        for req in engine.schedule:
            assert req.seq == seen.get(req.caller, 0)
            seen[req.caller] = req.seq + 1

    def test_arrival_times_monotone(self):
        engine = make_engine(Kernel(costs=FREE))
        times = [req.at for req in engine.schedule]
        assert times == sorted(times)

    def test_parameter_validation(self):
        kernel = Kernel(costs=FREE)
        proc = Uniform(1)
        with pytest.raises(ValueError):
            TrafficEngine(kernel, proc, -1, lambda r: None)
        with pytest.raises(ValueError):
            TrafficEngine(kernel, proc, 1, lambda r: None, callers=0)
        with pytest.raises(ValueError):
            TrafficEngine(kernel, proc, 1, lambda r: None, engines=0)
        with pytest.raises(ValueError):
            TrafficEngine(kernel, proc, 1, lambda r: None, clients=0)


class TestRun:
    def test_conservation_exact(self):
        engine = make_engine(Kernel(costs=FREE))
        result = engine.run()
        counts = result.counts
        assert sum(counts.values()) == engine.count
        assert counts["error"] == 0

    def test_tiny_client_bound_drops(self):
        engine = make_engine(Kernel(costs=FREE), count=80, gap=1, clients=1)
        result = engine.run()
        assert result.counts["dropped"] > 0
        result.check_conservation()

    def test_latency_from_scheduled_arrival(self):
        # An outcome's latency is finish − *scheduled* arrival, so issue
        # lag inside a saturated engine can't flatter the numbers.
        req = Request(index=0, at=10, caller=1, seq=0)
        outcome = Outcome(request=req, status="ok", issued_at=14, finished_at=20)
        assert outcome.latency == 10

    def test_conservation_reports_truncation(self):
        # Stopping the kernel mid-flight leaves requests unaccounted; the
        # check names the imbalance instead of inventing outcomes.
        engine = make_engine(Kernel(costs=FREE), count=60, gap=2)
        engine.start()
        engine.kernel.run(until=5)
        with pytest.raises(AssertionError, match="conservation"):
            engine.result.check_conservation()

    def test_duplicate_outcome_detected(self):
        result = TrafficResult(issued=2)
        req = Request(index=0, at=0, caller=0, seq=0)
        result.outcomes = [
            Outcome(request=req, status="ok", issued_at=0, finished_at=1),
            Outcome(request=req, status="ok", issued_at=0, finished_at=1),
        ]
        with pytest.raises(AssertionError, match="duplicate"):
            result.check_conservation()

    def test_outcomes_independent_of_obs(self):
        # Observation must not change what the engine measures: spans on
        # vs off produce identical (status, latency) multisets.
        def outcomes(spans):
            kernel = Kernel(costs=FREE, spans=spans)
            result = make_engine(kernel).run()
            return sorted(
                (o.request.index, o.status, o.latency) for o in result.outcomes
            )

        assert outcomes(False) == outcomes(True)


class TestOfferedTrace:
    def test_byte_identical_across_mechanisms(self, tmp_path):
        # Satellite invariant: swapping the scheduling mechanism (here,
        # arbitration policy + kernel seed) leaves the offered-load trace
        # byte-for-byte identical.
        path_a = tmp_path / "offered_a.jsonl"
        path_b = tmp_path / "offered_b.jsonl"

        kernel_a = Kernel(costs=FREE, seed=0, arbitration="ordered")
        engine_a = make_engine(kernel_a)
        engine_a.run()
        engine_a.write_offered_trace(str(path_a))

        kernel_b = Kernel(costs=FREE, seed=777, arbitration="random")
        engine_b = make_engine(kernel_b)
        engine_b.run()
        engine_b.write_offered_trace(str(path_b))

        assert path_a.read_bytes() == path_b.read_bytes()

    def test_differ_reports_equivalent(self, tmp_path, capsys):
        # The PR 5 span differ sees the two offered traces as
        # sequence-identical (exit 0).
        path_a = tmp_path / "offered_a.jsonl"
        path_b = tmp_path / "offered_b.jsonl"
        make_engine(Kernel(costs=FREE, seed=0)).write_offered_trace(str(path_a))
        make_engine(Kernel(costs=FREE, seed=99)).write_offered_trace(str(path_b))
        assert obsdiff.main([str(path_a), str(path_b)]) == 0

    def test_records_match_schedule(self):
        engine = make_engine(Kernel(costs=FREE))
        records = engine.offered_records()
        assert len(records) == engine.count
        for req, rec in zip(engine.schedule, records):
            assert rec["start"] == rec["end"] == req.at
            assert rec["process"] == f"vc{req.caller}"
            assert rec["attrs"] == {"seq": req.seq, "index": req.index}


class TestOutcomeStatuses:
    def test_shed_and_ok_under_admission_control(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=4, work=6, queue_cap=4)

        def build(req):
            return buf.deposit(req.index) if req.index % 2 else buf.remove()

        engine = TrafficEngine(
            kernel, Uniform(1), 120, build, engines=2, clients=16, seed=7
        )
        result = engine.run()
        counts = result.counts
        assert counts["error"] == 0
        assert counts["ok"] > 0
        assert counts["shed"] > 0
        assert kernel.stats.calls_shed == counts["shed"]

    def test_request_exception_counts_as_error(self):
        kernel = Kernel(costs=FREE)

        def build(req):
            raise RuntimeError("boom")

        engine = TrafficEngine(kernel, Uniform(1), 5, build, engines=1, seed=0)
        result = engine.run()
        assert result.counts["error"] == 5


class TestRetryAndDeadline:
    def test_attempts_tracked_without_retry(self):
        # Even with no retry policy, every non-dropped request is one
        # wire attempt; dropped requests never reach the wire.
        engine = make_engine(Kernel(costs=FREE), count=80, gap=1, clients=1)
        result = engine.run()
        assert result.counts["dropped"] > 0
        assert result.attempts == result.issued - result.counts["dropped"]

    def test_attempts_conservation_failing_case(self):
        # Tampering with the attempt count by one must be caught: a wire
        # attempt not attributed to a terminal outcome is a harness bug.
        engine = make_engine(Kernel(costs=FREE), count=20)
        result = engine.run()
        result.attempts += 1
        with pytest.raises(AssertionError, match="wire attempts"):
            result.check_conservation()

    def test_hand_built_results_skip_attempts_check(self):
        # TrafficResult built by hand (attempts=None) still passes the
        # classic identity — the retry dimension is opt-in.
        result = TrafficResult(issued=1)
        result.outcomes = [
            Outcome(
                request=Request(index=0, at=0, caller=0, seq=0),
                status="ok",
                issued_at=0,
                finished_at=1,
            )
        ]
        result.check_conservation()

    def retry_engine(self, kernel, *, count=12, deadline=None, budget=None,
                     breaker=None, policy=None):
        from repro.faults import FixedBackoff

        # read_work=10 against timeout=5: every attempt times out, so the
        # retry machinery is exercised deterministically with no faults.
        kv = GatedKVStore(kernel, read_work=10, request_max=8)

        def build(req):
            return kv.get(f"k{req.caller % 4}", timeout=5)

        return TrafficEngine(
            kernel,
            Uniform(40),
            count,
            build,
            engines=2,
            clients=16,
            seed=3,
            deadline=deadline,
            retry_policy=policy or FixedBackoff(delay=10, max_attempts=3),
            retry_budget=budget,
            breaker=breaker,
        )

    def test_retry_attempts_sum_into_outcomes(self):
        kernel = Kernel(costs=FREE)
        engine = self.retry_engine(kernel, count=8)
        result = engine.run()
        assert result.counts["timeout"] == 8
        assert all(o.retries == 2 for o in result.outcomes)  # 3 attempts
        assert result.attempts == 24
        result.check_conservation()

    def test_retry_schedule_is_deterministic(self):
        def run():
            engine = self.retry_engine(Kernel(costs=FREE), count=8)
            result = engine.run()
            return sorted(
                (o.request.index, o.status, o.retries, o.finished_at)
                for o in result.outcomes
            )

        assert run() == run()

    def test_budget_converts_retries_into_sheds(self):
        from repro.faults import RetryBudget

        kernel = Kernel(costs=FREE)
        budget = RetryBudget(capacity=3.0, fill_ratio=0.01)
        engine = self.retry_engine(kernel, count=10, budget=budget)
        result = engine.run()
        # Three retries fit the budget; every later re-attempt surfaces
        # as shed (AdmissionError reason=retry-budget), and the attempt
        # ledger still balances.
        assert budget.withdrawals == 3
        assert result.counts["shed"] > 0
        assert result.counts["shed"] + result.counts["timeout"] == 10
        result.check_conservation()

    def test_breaker_converts_failures_into_sheds(self):
        from repro.faults import CircuitBreaker

        kernel = Kernel(costs=FREE)
        breaker = CircuitBreaker(
            kernel, window=10**6, min_calls=4, failure_threshold=0.5,
            cooldown=10**9,
        )
        engine = self.retry_engine(kernel, count=10, breaker=breaker)
        result = engine.run()
        assert breaker.state == CircuitBreaker.OPEN
        assert result.counts["shed"] > 0
        assert kernel.metrics.value("breaker.refused") > 0
        result.check_conservation()

    def test_deadline_bounds_every_attempt(self):
        # The deadline is anchored at the scheduled arrival; with
        # deadline < one backoff the retry loop is cut short by
        # DeadlineExceeded (terminal), not by attempt exhaustion.
        kernel = Kernel(costs=FREE)
        engine = self.retry_engine(kernel, count=8, deadline=12)
        result = engine.run()
        assert result.counts["timeout"] == 8
        assert all(o.retries <= 1 for o in result.outcomes)
        assert kernel.metrics.value("deadline.expired") > 0
        result.check_conservation()

    def test_deadline_outcomes_match_obs_off(self):
        # Deadline + retry machinery stays observation-neutral.
        def outcomes(spans):
            kernel = Kernel(costs=FREE, spans=spans)
            engine = self.retry_engine(kernel, count=8, deadline=12)
            result = engine.run()
            return sorted(
                (o.request.index, o.status, o.retries, o.latency)
                for o in result.outcomes
            )

        assert outcomes(False) == outcomes(True)

    def test_deadline_validation(self):
        kernel = Kernel(costs=FREE)
        with pytest.raises(ValueError, match="deadline"):
            TrafficEngine(kernel, Uniform(1), 1, lambda r: None, deadline=0)
