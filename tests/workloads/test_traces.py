"""Tests for deterministic trace generation and replay."""

import pytest

from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.workloads import TraceEntry, mixed_trace, replay


class TestMixedTrace:
    def test_deterministic_per_seed(self):
        a = mixed_trace({"r": 1, "w": 1}, 50, 5, seed=3)
        b = mixed_trace({"r": 1, "w": 1}, 50, 5, seed=3)
        assert a == b

    def test_times_nondecreasing(self):
        trace = mixed_trace({"r": 1}, 100, 5, seed=0)
        times = [e.time for e in trace]
        assert times == sorted(times)

    def test_weights_respected(self):
        trace = mixed_trace({"r": 9, "w": 1}, 1000, 1, seed=0)
        reads = sum(1 for e in trace if e.operation == "r")
        assert reads > 700

    def test_payload_fn(self):
        trace = mixed_trace(
            {"op": 1}, 3, 0, payload_fn=lambda i, op: f"{op}-{i}", seed=0
        )
        assert [e.payload for e in trace] == ["op-0", "op-1", "op-2"]

    def test_empty_operations_rejected(self):
        with pytest.raises(ValueError):
            mixed_trace({}, 5, 1)


class TestReplay:
    def test_entries_fire_at_scripted_times(self):
        kernel = Kernel(costs=FREE)
        fired = []
        trace = [
            TraceEntry(time=5, operation="op", payload="a"),
            TraceEntry(time=15, operation="op", payload="b"),
        ]

        def handler(payload):
            fired.append((payload, kernel.clock.now))
            yield Delay(0)

        kernel.spawn(replay(trace, {"op": handler}))
        kernel.run()
        assert fired == [("a", 5), ("b", 15)]

    def test_multiple_operation_kinds(self):
        kernel = Kernel(costs=FREE)
        log = []
        trace = [
            TraceEntry(0, "read", 1),
            TraceEntry(0, "write", 2),
        ]

        def read(p):
            log.append(("read", p))
            yield Delay(0)

        def write(p):
            log.append(("write", p))
            yield Delay(0)

        kernel.spawn(replay(trace, {"read": read, "write": write}))
        kernel.run()
        assert sorted(log) == [("read", 1), ("write", 2)]
