"""Tests for the SLO harness: percentiles, reports, and the knee."""

import pytest

from repro.workloads import SloReport, find_knee, percentile, summarize
from repro.workloads.engine import STATUSES, Outcome, Request, TrafficResult


def result_with(statuses_and_latencies, issued=None):
    """Build a TrafficResult from (status, latency) pairs, arrival at 0."""
    outcomes = [
        Outcome(
            request=Request(index=i, at=0, caller=i, seq=0),
            status=status,
            issued_at=0,
            finished_at=latency,
        )
        for i, (status, latency) in enumerate(statuses_and_latencies)
    ]
    return TrafficResult(
        issued=len(outcomes) if issued is None else issued, outcomes=outcomes
    )


class TestPercentile:
    def test_nearest_rank_returns_an_element(self):
        values = [10, 20, 30, 40, 50]
        for p in (1, 25, 50, 75, 99, 100):
            assert percentile(values, p) in values

    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_p100_is_max_p0_is_min(self):
        values = [7, 1, 9, 4]
        assert percentile(values, 100) == 9
        assert percentile(values, 0) == 1

    def test_single_element(self):
        assert percentile([42], 99.9) == 42

    def test_p999_picks_tail(self):
        values = list(range(1, 1001))  # 1..1000
        assert percentile(values, 99.9) == 999
        assert percentile(values, 99) == 990

    def test_float_ceiling_regression(self):
        # p=16.1 of n=1000 is exactly rank 161 (16.1 * 1000 / 100), but
        # the float product 16.1 * 1000 overshoots to 16100.000000000002,
        # so the old float ceiling -(-p * n // 100) landed on rank 162.
        # The exact rational arithmetic in nearest_rank picks index 160.
        values = list(range(1000))
        assert percentile(values, 16.1) == 160
        assert -(-16.1 * len(values) // 100) == 162  # the bug, preserved
        # And the marquee tail spec stays element-exact too.
        assert percentile(list(range(8000)), 99.9) == 7991

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], -1)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_basic_report(self):
        result = result_with(
            [("ok", 10), ("ok", 20), ("ok", 30), ("shed", 5), ("dropped", 0)]
        )
        report = summarize(result, horizon=1000)
        assert report.issued == 5
        assert report.served == 3
        assert report.goodput_fraction == 0.6
        assert report.offered_per_ktick == 5.0
        assert report.goodput_per_ktick == 3.0
        assert report.p50 == 20
        assert report.max_latency == 30
        assert report.mean_latency == 20.0

    def test_no_served_requests(self):
        result = result_with([("shed", 0), ("shed", 0)])
        report = summarize(result, horizon=10)
        assert report.p50 is None
        assert report.p99 is None
        assert report.mean_latency is None
        assert report.goodput_fraction == 0.0

    def test_default_horizon_spans_run(self):
        result = result_with([("ok", 5), ("ok", 45)])
        report = summarize(result)
        assert report.horizon == 45  # first arrival 0 .. last finish 45

    def test_conservation_checked_first(self):
        result = result_with([("ok", 1)], issued=3)
        with pytest.raises(AssertionError, match="conservation"):
            summarize(result)

    def test_bad_horizon_raises(self):
        result = result_with([("ok", 1)])
        with pytest.raises(ValueError):
            summarize(result, horizon=0)

    def test_to_row_has_all_statuses(self):
        result = result_with([("ok", 10), ("timeout", 0), ("error", 0)])
        report = summarize(result, horizon=100)
        row = report.to_row()
        for status in STATUSES:
            assert status in row
        assert row["ok"] == 1
        assert row["timeout"] == 1
        assert row["error"] == 1
        assert row["issued"] == 3

    def test_to_row_merges_extra(self):
        report = SloReport(
            issued=0,
            counts={s: 0 for s in STATUSES},
            horizon=1,
            offered_per_ktick=0.0,
            goodput_per_ktick=0.0,
            p50=None,
            p99=None,
            p999=None,
            mean_latency=None,
            max_latency=None,
            extra={"note": "x"},
        )
        assert report.to_row()["note"] == "x"


class TestFindKnee:
    def test_obvious_knee(self):
        # Goodput tracks offered load, then flatlines: the knee is the
        # point of maximum deviation from the chord — where the curve
        # visibly stops keeping up.
        points = [(10, 10), (20, 20), (40, 22), (80, 23), (160, 23)]
        assert find_knee(points) == 2

    def test_handles_unsorted_input(self):
        points = [(80, 23), (10, 10), (160, 23), (20, 20), (40, 22)]
        assert find_knee(points) == 4  # the (40, 22) entry

    def test_fewer_than_three_points(self):
        assert find_knee([(1, 1)]) == 0
        assert find_knee([(1, 1), (2, 2)]) == 1

    def test_zero_chord(self):
        points = [(5, 5), (5, 5), (5, 5)]
        assert find_knee(points) == 2

    def test_straight_line_returns_endpoint(self):
        # No bend at all: every distance is ~0, the endpoint wins.
        points = [(1, 1), (2, 2), (3, 3), (4, 4)]
        assert find_knee(points) == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            find_knee([])


class TestGoodputTimeline:
    def make(self, finished, statuses=None):
        from repro.workloads import goodput_timeline  # noqa: F401

        outcomes = [
            Outcome(
                request=Request(index=i, at=0, caller=i, seq=0),
                status="ok" if statuses is None else statuses[i],
                issued_at=0,
                finished_at=t,
            )
            for i, t in enumerate(finished)
        ]
        return TrafficResult(issued=len(outcomes), outcomes=outcomes)

    def test_buckets_by_finish_time(self):
        from repro.workloads import goodput_timeline

        result = self.make([5, 7, 105, 305])
        timeline = goodput_timeline(result, window=100)
        # Windows anchored at the first scheduled arrival (t=0 here);
        # the empty [200, 300) window reports 0.0, not a gap.
        assert timeline == [(0, 20.0), (100, 10.0), (200, 0.0), (300, 10.0)]

    def test_only_ok_counts(self):
        from repro.workloads import goodput_timeline

        result = self.make([5, 6, 7], statuses=["ok", "shed", "timeout"])
        timeline = goodput_timeline(result, window=10)
        assert timeline == [(0, 100.0)]

    def test_empty_result(self):
        from repro.workloads import goodput_timeline

        assert goodput_timeline(TrafficResult(issued=0)) == []

    def test_window_validation(self):
        from repro.workloads import goodput_timeline

        with pytest.raises(ValueError, match="window"):
            goodput_timeline(self.make([1]), window=0)
