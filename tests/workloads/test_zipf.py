"""Tests for Zipf popularity and the word corpus."""

import collections

import pytest

from repro.workloads import Zipf, word_corpus


class TestZipf:
    def test_deterministic_per_seed(self):
        z = Zipf(["a", "b", "c"], s=1.0, seed=9)
        assert list(z.stream(50)) == list(Zipf(["a", "b", "c"], s=1.0, seed=9).stream(50))

    def test_skew_favors_first_ranks(self):
        items = list(range(100))
        z = Zipf(items, s=1.5, seed=0)
        counts = collections.Counter(z.stream(5000))
        top = counts[0]
        tail = counts[99] if 99 in counts else 0
        assert top > 50 * max(tail, 1)

    def test_zero_exponent_is_roughly_uniform(self):
        items = list(range(10))
        z = Zipf(items, s=0.0, seed=0)
        counts = collections.Counter(z.stream(10000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_duplicate_fraction_monotone_in_skew(self):
        items = list(range(200))
        fractions = [
            Zipf(items, s=s, seed=1).duplicate_fraction(300)
            for s in (0.0, 1.0, 2.0)
        ]
        assert fractions[0] < fractions[2]

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            Zipf([])

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Zipf(["a"], s=-1)


class TestWordCorpus:
    def test_size_and_uniqueness(self):
        words = word_corpus(500)
        assert len(words) == 500
        assert len(set(words)) == 500

    def test_deterministic(self):
        assert word_corpus(50) == word_corpus(50)
