"""Tests for arrival processes and load drivers."""

import pytest

from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.workloads import Bursty, Diurnal, Poisson, Uniform, closed_loop, open_loop


class TestUniform:
    def test_fixed_gaps(self):
        assert Uniform(5).arrivals(4) == [5, 10, 15, 20]

    def test_zero_period(self):
        assert Uniform(0).arrivals(3) == [0, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Uniform(-1)


class TestPoisson:
    def test_deterministic_per_seed(self):
        assert Poisson(10, seed=4).arrivals(20) == Poisson(10, seed=4).arrivals(20)

    def test_different_seeds_differ(self):
        assert Poisson(10, seed=1).arrivals(20) != Poisson(10, seed=2).arrivals(20)

    def test_mean_gap_approximate(self):
        arrivals = Poisson(10, seed=0).arrivals(2000)
        mean_gap = arrivals[-1] / len(arrivals)
        assert 8 < mean_gap < 12

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            Poisson(0)


class TestDiurnal:
    def test_replay_identical_per_seed(self):
        a = Diurnal(10, period=1000, amplitude=0.8, seed=7).arrivals(300)
        b = Diurnal(10, period=1000, amplitude=0.8, seed=7).arrivals(300)
        assert a == b

    def test_different_seeds_differ(self):
        assert (
            Diurnal(10, period=1000, seed=1).arrivals(50)
            != Diurnal(10, period=1000, seed=2).arrivals(50)
        )

    def test_sinusoid_modulates_rate(self):
        # sin(2πt/period) is positive over the first half of each cycle
        # and negative over the second: with amplitude 0.8 the peak half
        # must collect several times the arrivals of the trough half.
        arrivals = Diurnal(10, period=1000, amplitude=0.8, seed=42).arrivals(500)
        peak = sum(1 for t in arrivals if (t % 1000) < 500)
        trough = len(arrivals) - peak
        assert peak > 2 * trough

    def test_zero_amplitude_is_plain_poisson_rate(self):
        arrivals = Diurnal(10, period=1000, amplitude=0.0, seed=0).arrivals(2000)
        mean_gap = arrivals[-1] / len(arrivals)
        assert 8 < mean_gap < 12

    def test_gaps_are_nonnegative_monotone(self):
        d = Diurnal(5, period=200, amplitude=1.0, seed=3)
        gaps = d.gaps()
        values = [next(gaps) for _ in range(200)]
        assert all(g >= 0 for g in values)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Diurnal(0, period=100)
        with pytest.raises(ValueError):
            Diurnal(10, period=0)
        with pytest.raises(ValueError):
            Diurnal(10, period=100, amplitude=1.5)


class TestBursty:
    def test_burst_shape(self):
        arrivals = Bursty(burst=3, quiet=100).arrivals(6)
        assert arrivals == [100, 100, 100, 200, 200, 200]

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            Bursty(burst=0, quiet=10)


class TestDrivers:
    def test_open_loop_spawns_independent_requests(self):
        kernel = Kernel(costs=FREE)
        completed = []

        def request(i):
            yield Delay(50)  # slow service
            completed.append((i, kernel.clock.now))

        kernel.spawn(open_loop(Uniform(10), 5, request))
        kernel.run()
        # Open system: arrivals every 10 ticks even though service is 50.
        finish_times = [t for _i, t in sorted(completed)]
        assert finish_times == [60, 70, 80, 90, 100]

    def test_closed_loop_serializes(self):
        kernel = Kernel(costs=FREE)
        completed = []

        def request(i):
            yield Delay(50)
            completed.append((i, kernel.clock.now))

        kernel.spawn(closed_loop(3, request, think_time=10))
        kernel.run()
        finish_times = [t for _i, t in sorted(completed)]
        assert finish_times == [50, 110, 170]

    def test_closed_loop_plain_syscall_request(self):
        from repro.kernel import Charge

        kernel = Kernel(costs=FREE)
        kernel.spawn(closed_loop(3, lambda i: Charge(5)))
        kernel.run()
        assert kernel.stats.work_ticks == 15
