"""Pytest fixtures shared across the suite."""

from __future__ import annotations

import pytest

from repro.kernel import Kernel
from repro.kernel.costs import FREE


@pytest.fixture
def kernel() -> Kernel:
    """A default kernel (unit costs, infinite CPUs, seed 0)."""
    return Kernel()


@pytest.fixture
def free_kernel() -> Kernel:
    """A kernel where nothing costs time (pure ordering semantics)."""
    return Kernel(costs=FREE)


@pytest.fixture
def traced_kernel() -> Kernel:
    """A kernel with event tracing enabled."""
    return Kernel(trace=True)
