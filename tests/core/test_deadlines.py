"""Edge cases of end-to-end deadlines and the half-open probe race.

Three corners the E15 storm bench never pins exactly:

* a deadline that lands on the very tick the manager could accept the
  call — expiry is inclusive, so the sweep arm wins;
* nested deadline inheritance — a body serving a deadlined call cannot
  grant its callees more time than its own caller has left, whichever
  of the explicit and inherited budgets is smaller;
* a circuit breaker whose half-open probe is interrupted by a crash —
  the reopen/re-probe/close sequence must be replay-identical.
"""

import pytest

from repro.core import AlpsObject, entry
from repro.errors import AdmissionError, DeadlineExceeded, RemoteCallError
from repro.faults import CircuitBreaker, FaultPlan, FixedBackoff, install, retry
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.kernel.syscalls import Charge
from repro.net import ring
from repro.stdlib import Dictionary, GatedKVStore


@pytest.fixture
def kernel():
    return Kernel(costs=FREE, seed=0)


def serial_store(kernel, **kwargs):
    """A GatedKVStore whose single slot serializes bodies exactly."""
    kwargs.setdefault("write_work", 10)
    kwargs.setdefault("request_max", 1)
    kwargs.setdefault("queue_cap", 4)
    return GatedKVStore(kernel, name="kv", **kwargs)


class TestDeadlineAtExactAcceptTick:
    """``deadline_expired`` is inclusive: t == deadline_at is dead."""

    def run_pair(self, kernel, store, deadline):
        """Client A occupies the server 0..10; B's fate depends on
        ``deadline`` relative to the t=10 tick at which the manager
        could first accept it."""
        outcome = {}

        def client_a():
            outcome["a"] = yield store.put("a", 1)

        def client_b():
            try:
                outcome["b"] = yield store.put("b", 2, deadline=deadline)
            except DeadlineExceeded as exc:
                outcome["b"] = ("deadline", exc.deadline_at, kernel.clock.now)
            except AdmissionError as exc:
                outcome["b"] = ("shed", exc.reason, kernel.clock.now)

        kernel.spawn(client_a, name="a")
        kernel.spawn(client_b, name="b")
        kernel.run()
        return outcome

    def test_deadline_on_the_accept_tick_is_swept(self, kernel):
        # B's deadline is exactly t=10, the tick A's body completes and
        # the manager selects again.  Inclusive expiry: B is dead on
        # that tick, the sweep arm takes it before the accept arm, and
        # B's write never happens.
        store = serial_store(kernel)
        outcome = self.run_pair(kernel, store, deadline=10)
        assert outcome["a"] == 1
        assert outcome["b"] == ("deadline", 10, 10)
        assert "b" not in store.data
        assert kernel.metrics.value("admission.swept") == 1
        assert kernel.metrics.value("deadline.expired_queued") == 1

    def test_unmakeable_deadline_is_shed_not_served(self, kernel):
        # deadline=11: B is still alive at the t=10 accept tick, but the
        # predicted-wait arm knows better — A's body taught the EWMA
        # that a put takes 10 ticks and B has only 1 left, so serving it
        # would burn a body and still end in DeadlineExceeded.  Shed.
        store = serial_store(kernel)
        outcome = self.run_pair(kernel, store, deadline=11)
        assert outcome["b"] == ("shed", "predicted-wait", 10)
        assert "b" not in store.data
        assert kernel.metrics.value("admission.shed.predicted-wait") == 1

    def test_mid_service_expiry_still_applies_the_write(self, kernel):
        # A lone first call: no service EWMA exists yet, so admission
        # has no evidence to shed on and starts the body.  The deadline
        # expires mid-service: the caller is resumed with
        # DeadlineExceeded at t=5, but the admitted body runs to
        # completion and the write applies — the at-least-once corner
        # the docs call serve-and-discard.
        store = serial_store(kernel)
        outcome = {}

        def client():
            try:
                outcome["b"] = yield store.put("b", 2, deadline=5)
            except DeadlineExceeded as exc:
                outcome["b"] = ("deadline", exc.deadline_at, kernel.clock.now)

        kernel.spawn(client, name="b")
        kernel.run()
        assert outcome["b"] == ("deadline", 5, 5)
        assert store.data.get("b") == 2  # applied, but nobody was told
        assert kernel.metrics.value("admission.swept") == 0

    def test_deadline_with_slack_is_served(self, kernel):
        # deadline=21: accepted at t=10, served 10..20, finished with a
        # tick to spare.
        store = serial_store(kernel)
        outcome = self.run_pair(kernel, store, deadline=21)
        assert outcome["b"] == 2
        assert store.data.get("b") == 2
        assert kernel.metrics.value("deadline.expired") == 0


class Inner(AlpsObject):
    @entry(returns=1)
    def slow(self):
        yield Charge(100)
        return "done"


class Outer(AlpsObject):
    def setup(self, inner):
        self.inner = inner
        self.seen = None

    @entry(returns=1)
    def run(self, nested_deadline):
        # The nested call asks for its own budget; the effective
        # deadline is the smaller of that and what this body inherited.
        try:
            yield self.inner.slow(deadline=nested_deadline)
        except DeadlineExceeded as exc:
            self.seen = exc.deadline_at
        return self.seen


class TestNestedDeadlineInheritance:
    def test_inherited_budget_caps_a_larger_nested_deadline(self, kernel):
        # Outer is called with deadline=40; its body asks for 1000 more
        # ticks for the nested call.  Propagation wins: the nested call
        # expires at t=40, not t=1000.
        inner = Inner(kernel, name="inner")
        outer = Outer(kernel, name="outer", inner=inner)
        caught = []

        def client():
            try:
                yield outer.run(1000, deadline=40)
            except DeadlineExceeded:
                caught.append(kernel.clock.now)

        kernel.spawn(client, name="client")
        kernel.run()
        assert outer.seen == 40  # nested deadline_at == the inherited one
        assert caught == [40]  # the outer call itself also expired

    def test_smaller_explicit_nested_deadline_wins(self, kernel):
        # Outer has 1000 ticks; the body grants the nested call only 25.
        # The nested call expires at t=25 and the outer entry still
        # returns normally, well inside its own budget.
        inner = Inner(kernel, name="inner")
        outer = Outer(kernel, name="outer", inner=inner)
        results = []

        def client():
            results.append((yield outer.run(25, deadline=1000)))

        kernel.spawn(client, name="client")
        kernel.run()
        assert results == [25]
        assert outer.seen == 25


class TestHalfOpenProbeRacesCrash:
    def run_once(self):
        kernel = Kernel(costs=FREE, seed=0, trace=True)
        net = ring(kernel, 4)
        d = net.node("n1").place(
            Dictionary(kernel, name="d", entries={"a": 42}, search_work=30)
        )
        install(
            kernel,
            net,
            FaultPlan(detection_delay=5)
            .crash_node("n1", at=0, restart_at=30)
            # The second crash lands while the half-open probe (issued
            # ~t=50, 30 ticks of search work) is in flight.
            .crash_node("n1", at=60, restart_at=90),
        )
        kernel.post(31, d.restart)
        kernel.post(91, d.restart)
        breaker = CircuitBreaker(
            kernel, window=500, min_calls=2, failure_threshold=0.5, cooldown=25
        )
        results = []

        def client():
            for at in (0, 50, 100):
                if kernel.clock.now < at:
                    yield Delay(at - kernel.clock.now)
                try:
                    yield from retry(
                        lambda: d.search("a", timeout=200),
                        FixedBackoff(delay=10, max_attempts=2),
                        breaker=breaker,
                    )
                    results.append("ok")
                except RemoteCallError:
                    results.append("remote")
                except AdmissionError as exc:
                    results.append(exc.reason)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        return results, list(breaker.transitions), breaker.state

    def test_probe_interrupted_by_crash_reopens_then_recovers(self):
        results, transitions, state = self.run_once()
        # Request 1: both attempts die against the dead node -> opens.
        # Request 2: half-open probe is killed by the second crash ->
        # reopen for a full cooldown, the retry is refused locally.
        # Request 3: fresh probe against the healed node -> closed.
        assert results == ["remote", "breaker-open", "ok"]
        assert [(f, t) for _, f, t in transitions] == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert state == CircuitBreaker.CLOSED

    def test_race_is_replay_identical(self):
        # The interleaving of probe, crash, detection and cooldown is
        # entirely virtual-time: two runs agree tick for tick.
        first, second = self.run_once(), self.run_once()
        assert first == second
