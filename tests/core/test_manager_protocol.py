"""Tests of the accept/start/await/finish protocol (§2.3, §2.6)."""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    icpt,
    manager_process,
)
from repro.core.calls import CallState
from repro.errors import ProtocolError
from repro.kernel import Delay, Kernel, Par, Select
from repro.kernel.costs import FREE


class Echo(AlpsObject):
    """Minimal managed object used across protocol tests."""

    @entry(returns=1)
    def echo(self, x):
        return x

    @manager_process(intercepts={"echo": icpt(params=1, results=1)})
    def mgr(self):
        while True:
            result = yield Select(AcceptGuard(self, "echo"))
            call = result.value
            yield Start(call)
            done = yield self.await_("echo", call=call)
            yield Finish(done)


class TestRendezvous:
    def test_call_waits_for_accept(self):
        # A call issued before the manager reaches accept is delayed, not
        # lost (§2.3: "if a user invocation arrives first, it is delayed
        # until the manager executes a corresponding accept").
        kernel = Kernel(costs=FREE)

        class SlowManager(AlpsObject):
            @entry(returns=1)
            def op(self):
                return "served"

            @manager_process(intercepts=["op"])
            def mgr(self):
                yield Delay(50)  # manager busy before first accept
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value)

        obj = SlowManager(kernel)

        def main():
            value = yield obj.op()
            return (value, kernel.clock.now)

        value, finished = kernel.run_process(main)
        assert value == "served"
        assert finished >= 50

    def test_manager_waits_for_call(self, kernel):
        obj = Echo(kernel)

        def main():
            yield Delay(30)
            return (yield obj.echo("hi"))

        assert kernel.run_process(main) == "hi"

    def test_caller_blocked_until_finish(self):
        kernel = Kernel(costs=FREE)

        class HoldFinish(AlpsObject):
            @entry(returns=1)
            def op(self):
                return "result"

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                call = result.value
                yield Start(call)
                done = yield self.await_("op", call=call)
                yield Delay(100)  # manager dawdles before finishing
                yield Finish(done)
                # Manager ends: fine for a one-shot test object.

        obj = HoldFinish(kernel)

        def main():
            value = yield obj.op()
            return (value, kernel.clock.now)

        value, finished = kernel.run_process(main)
        assert value == "result"
        assert finished >= 100


class TestInterceptedParameters:
    def test_manager_sees_initial_subsequence(self, kernel):
        seen = []

        class Inspect(AlpsObject):
            @entry(returns=1)
            def op(self, a, b, c):
                return a + b + c

            @manager_process(intercepts={"op": icpt(params=2)})
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    seen.append(result.value.intercepted_args)
                    yield from self.execute(result.value)

        obj = Inspect(kernel)

        def main():
            return (yield obj.op(1, 2, 3))

        assert kernel.run_process(main) == 6
        assert seen == [(1, 2)]  # only the intercepted prefix

    def test_acceptance_condition_on_params(self, kernel):
        # The procedure array is what lets the condition *overtake*: with
        # several calls attached simultaneously, the guard can accept the
        # even one while the odd one sits in its slot.
        class Guarded(AlpsObject):
            @entry(returns=1, array=4)
            def op(self, n):
                return n

            @manager_process(intercepts={"op": icpt(params=1)})
            def mgr(self):
                while True:
                    result = yield Select(
                        AcceptGuard(self, "op", when=lambda n: n % 2 == 0)
                    )
                    yield from self.execute(result.value)

        obj = Guarded(kernel)
        order = []

        def caller(n):
            value = yield obj.op(n)
            order.append(value)

        def main():
            yield Par(lambda: caller(3), lambda: caller(4))

        # Odd request never accepted -> its caller deadlocks the par.
        from repro.errors import DeadlockError

        with pytest.raises(DeadlockError):
            kernel.run_process(main)
        assert order == [4]

    def test_single_slot_head_of_line_blocking(self, kernel):
        # Contrast: without an array only one call can be attached, so an
        # acceptance condition cannot skip past it (§2.5 motivates arrays
        # precisely to identify multiple requests separately).
        from repro.errors import DeadlockError

        class Guarded(AlpsObject):
            @entry(returns=1)
            def op(self, n):
                return n

            @manager_process(intercepts={"op": icpt(params=1)})
            def mgr(self):
                while True:
                    result = yield Select(
                        AcceptGuard(self, "op", when=lambda n: n % 2 == 0)
                    )
                    yield from self.execute(result.value)

        obj = Guarded(kernel)
        served = []

        def caller(n):
            served.append((yield obj.op(n)))

        def main():
            yield Par(lambda: caller(3), lambda: caller(4))

        with pytest.raises(DeadlockError):
            kernel.run_process(main)
        assert served == []  # the odd head blocked the even request too


class TestInterceptedResults:
    def test_manager_can_rewrite_results(self, kernel):
        class Censor(AlpsObject):
            @entry(returns=1)
            def op(self):
                return "secret"

            @manager_process(intercepts={"op": icpt(results=1)})
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    call = result.value
                    yield Start(call)
                    done = yield self.await_("op", call=call)
                    assert done.intercepted_results == ("secret",)
                    yield Finish(done, "REDACTED")

        obj = Censor(kernel)

        def main():
            return (yield obj.op())

        assert kernel.run_process(main) == "REDACTED"

    def test_passthrough_finish_preserves_results(self, kernel):
        obj = Echo(kernel)

        def main():
            return (yield obj.echo(123))

        assert kernel.run_process(main) == 123

    def test_uninterceped_suffix_flows_directly(self, kernel):
        class Partial(AlpsObject):
            @entry(returns=2)
            def op(self):
                return ("managed", "direct")

            @manager_process(intercepts={"op": icpt(results=1)})
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    call = result.value
                    yield Start(call)
                    done = yield self.await_("op", call=call)
                    yield Finish(done, "ALTERED")

        obj = Partial(kernel)

        def main():
            return (yield obj.op())

        # First result (intercepted) altered; second flows from the body.
        assert kernel.run_process(main) == ("ALTERED", "direct")

    def test_wrong_finish_arity_rejected(self, kernel):
        class Bad(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts={"op": icpt(results=1)})
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                call = result.value
                yield Start(call)
                done = yield self.await_("op", call=call)
                yield Finish(done, "a", "b")  # too many

        obj = Bad(kernel)

        def main():
            yield obj.op()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)


class TestProtocolViolations:
    def _accepted_call(self, kernel, mgr_body):
        """Helper: build an object whose manager runs mgr_body(call)."""

        class Obj(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                yield from mgr_body(self, result.value)

        return Obj(kernel)

    def test_double_start_rejected(self, kernel):
        def body(obj, call):
            yield Start(call)
            yield Start(call)

        obj = self._accepted_call(kernel, body)

        def main():
            yield obj.op()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)

    def test_finish_while_running_rejected(self, kernel):
        class Obj(AlpsObject):
            @entry(returns=1)
            def op(self):
                yield Delay(100)
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                call = result.value
                yield Start(call)
                yield Finish(call)  # body still running

        obj = Obj(kernel)

        def main():
            yield obj.op()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)

    def test_start_without_accept_impossible(self, kernel):
        # Calls only become visible through accept; starting a fabricated
        # call record is rejected by state checking.
        from repro.core.calls import Call

        class Obj(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                fake = Call(self, result.value.spec, (), result.value.caller)
                yield Start(fake)

        obj = Obj(kernel)

        def main():
            yield obj.op()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)


class TestAsynchronousStart:
    def test_manager_accepts_while_body_runs(self):
        # §2.3: "The asynchronous nature of the start primitive allows the
        # manager to accept other remote calls while the execution of P is
        # in progress."
        kernel = Kernel(costs=FREE)
        accept_times = []

        class Async(AlpsObject):
            @entry(returns=1, array=4)
            def op(self, n):
                yield Delay(100)
                return n

            @manager_process(intercepts=["op"])
            def mgr(self):
                pending = 0
                while True:
                    result = yield Select(
                        AcceptGuard(self, "op"),
                        AwaitGuard(self, "op"),
                    )
                    if isinstance(result.guard, AcceptGuard):
                        accept_times.append(kernel.clock.now)
                        yield Start(result.value)
                        pending += 1
                    else:
                        yield Finish(result.value)
                        pending -= 1

        obj = Async(kernel, pool=None)

        def caller(n):
            return (yield obj.op(n))

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(4)]))

        assert kernel.run_process(main) == [0, 1, 2, 3]
        # All four accepted before the first (100-tick) body finished.
        assert all(t < 100 for t in accept_times)
        assert kernel.clock.now < 4 * 100  # bodies overlapped


class TestExecutePackage:
    def test_execute_equals_start_await_finish(self, kernel):
        class Exec(AlpsObject):
            @entry(returns=1)
            def op(self, x):
                return x * 3

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    done = yield from self.execute(result.value)
                    assert done.state == CallState.DONE

        obj = Exec(kernel)

        def main():
            return (yield obj.op(5))

        assert kernel.run_process(main) == 15

    def test_execute_serializes(self):
        # While execute blocks the manager, a second call cannot start —
        # monitor-style exclusion (§1).
        kernel = Kernel(costs=FREE)
        active = {"count": 0, "peak": 0}

        class Excl(AlpsObject):
            @entry
            def op(self):
                active["count"] += 1
                active["peak"] = max(active["peak"], active["count"])
                yield Delay(10)
                active["count"] -= 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value)

        obj = Excl(kernel)

        def caller():
            yield obj.op()

        def main():
            yield Par(*[lambda: caller() for _ in range(5)])

        kernel.run_process(main)
        assert active["peak"] == 1


class TestPendingCounts:
    def test_pending_counts_attached_and_waiting(self):
        # §2.5.1: "#Read includes any read request that may have been
        # attached ... and also any read request waiting to be attached."
        kernel = Kernel(costs=FREE)
        observed = []

        class Counting(AlpsObject):
            @entry(array=2)
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                yield Delay(10)  # let 5 calls pile up: 2 attached + 3 waiting
                observed.append(self.pending("op"))
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value)

        obj = Counting(kernel)

        def caller():
            yield obj.op()

        def main():
            yield Par(*[lambda: caller() for _ in range(5)])

        kernel.run_process(main)
        assert observed == [5]
