"""Quantified-guard edge cases over hidden procedure arrays (§2.4).

``(i:1..N) accept P[i]`` is modelled by ``slot=None`` (any element) or
``slot=i`` (one element).  These tests pin the corner cases the
wait-for-graph work leans on: matching over a *partially occupied*
array, and a specific-slot guard naming a currently *free* element.
"""

from repro.core import (
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.kernel import Delay, Select


class Triple(AlpsObject):
    """Three-slot hidden array; manager behavior set per test."""

    def setup(self, **config):
        super().setup(**config)
        self.accepted_slots = []
        self.await_order = []

    @entry(array=3)
    def op(self, d):
        if d:
            yield Delay(d)

    @manager_process(intercepts=["op"])
    def mgr(self):
        # Accept twice with slot=None while the 3-slot array is only
        # partially occupied, start both, then drain with slot=None
        # awaits: the quicker body must come back first.
        first = yield self.accept("op")
        self.accepted_slots.append(first.slot)
        second = yield self.accept("op")
        self.accepted_slots.append(second.slot)
        yield Start(first)
        yield Start(second)
        for _ in range(2):
            done = yield self.await_("op")
            self.await_order.append((done.slot, done.args[0]))
            yield Finish(done)


class TestSlotNonePartialArray:
    def test_accept_any_over_partially_occupied_array(self, kernel):
        obj = Triple(kernel, name="T")
        kernel.spawn(lambda: (yield obj.op(50)))
        kernel.spawn(lambda: (yield obj.op(10)))
        kernel.run()
        # Two of the three slots were ever used, each exactly once.
        assert sorted(obj.accepted_slots) == [0, 1]

    def test_await_any_returns_first_completed_body(self, kernel):
        obj = Triple(kernel, name="T")
        kernel.spawn(lambda: (yield obj.op(50)))
        kernel.spawn(lambda: (yield obj.op(10)))
        kernel.run()
        # slot=None await matches whichever started body finished first
        # — the d=10 one — not the lowest occupied slot index.
        assert [d for _, d in obj.await_order] == [10, 50]


class TestSlotNamingFreeElement:
    def test_accept_specific_free_slot_waits_for_it(self, kernel):
        # The manager insists on slot 1 while only slot 0 is occupied;
        # the guard must wait for a call to attach at slot 1 rather than
        # match the (wrong) resident of slot 0.
        class Picky(AlpsObject):
            def setup(self, **config):
                super().setup(**config)
                self.order = []

            @entry(array=2)
            def op(self, tag):
                if False:
                    yield  # body is immediate

            @manager_process(intercepts=["op"])
            def mgr(self):
                call = yield self.accept("op", slot=1)
                self.order.append(call.args[0])
                yield from self.execute(call)
                call = yield self.accept("op", slot=0)
                self.order.append(call.args[0])
                yield from self.execute(call)

        obj = Picky(kernel, name="P")

        def early():
            yield obj.op("early")  # t=0: attaches slot 0

        def late():
            yield Delay(25)
            yield obj.op("late")  # t=25: attaches slot 1

        kernel.spawn(early)
        kernel.spawn(late)
        kernel.run()
        # The slot-1 guard waited 25 ticks for `late` instead of taking
        # `early` from slot 0.
        assert obj.order == ["late", "early"]

    def test_await_specific_free_slot_never_spuriously_ready(self, kernel):
        # An await guard naming an empty slot must not fire; a sibling
        # guard on the occupied slot wins the select.
        class Watcher(AlpsObject):
            def setup(self, **config):
                super().setup(**config)
                self.fired_slot = None

            @entry(array=3)
            def op(self, d):
                yield Delay(d)

            @manager_process(intercepts=["op"])
            def mgr(self):
                call = yield self.accept("op")  # attaches slot 0
                yield Start(call)
                result = yield Select(
                    AwaitGuard(self, "op", slot=2),  # free element
                    AwaitGuard(self, "op", slot=0),
                )
                self.fired_slot = result.value.slot
                yield Finish(result.value)

        obj = Watcher(kernel, name="W")
        kernel.spawn(lambda: (yield obj.op(10)))
        kernel.run()
        assert obj.fired_slot == 0
