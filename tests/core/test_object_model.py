"""Tests for AlpsObject construction, definitions, and validation."""

import pytest

from repro.core import AlpsObject, WhenGuard, entry, icpt, local, manager_process
from repro.core.object_model import BoundEntry
from repro.core.primitives import AcceptGuard
from repro.errors import CallError, InterceptError, ObjectModelError
from repro.kernel import Kernel, Select


class Plain(AlpsObject):
    """Object with no manager: entries start implicitly (§2.3)."""

    @entry(returns=1)
    def double(self, x):
        return x * 2

    @entry(returns=1)
    def status(self):
        return "ok"


class Managed(AlpsObject):
    @entry(returns=1)
    def op(self, x):
        return x + 1

    @manager_process(intercepts=["op"])
    def mgr(self):
        while True:
            result = yield Select(AcceptGuard(self, "op"))
            yield from self.execute(result.value)


class TestDefinitionPart:
    def test_definition_lists_exported_procs(self, kernel):
        obj = Plain(kernel)
        definition = obj.definition()
        assert "double" in definition
        assert "status" in definition
        text = definition.describe()
        assert text.startswith("object Plain defines")

    def test_local_procs_hidden_from_definition(self, kernel):
        class WithLocal(AlpsObject):
            @entry(returns=1)
            def visible(self):
                return 1

            @local(returns=1)
            def hidden(self):
                return 2

        obj = WithLocal(kernel)
        definition = obj.definition()
        assert "visible" in definition
        assert "hidden" not in definition

    def test_local_proc_not_callable_from_outside(self, kernel):
        class WithLocal(AlpsObject):
            @local(returns=1)
            def helper(self):
                return 2

        obj = WithLocal(kernel)

        def main():
            return (yield obj.helper())

        with pytest.raises(CallError):
            kernel.run_process(main)

    def test_local_proc_callable_from_inside(self, kernel):
        class WithLocal(AlpsObject):
            @entry(returns=1)
            def outer(self):
                value = yield self.call("helper")
                return value * 10

            @local(returns=1)
            def helper(self):
                return 2

        obj = WithLocal(kernel)

        def main():
            return (yield obj.outer())

        assert kernel.run_process(main) == 20


class TestUnmanagedObjects:
    def test_entries_start_implicitly(self, kernel):
        obj = Plain(kernel)

        def main():
            return (yield obj.double(21))

        assert kernel.run_process(main) == 42

    def test_concurrent_unmanaged_calls(self, kernel):
        from repro.kernel import Par

        obj = Plain(kernel)

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(5)]))

        def caller(i):
            return (yield obj.double(i))

        assert kernel.run_process(main) == [0, 2, 4, 6, 8]


class TestSetupHook:
    def test_default_setup_stores_config(self, kernel):
        obj = Plain(kernel, threshold=9)
        assert obj.threshold == 9

    def test_custom_setup_runs_before_manager(self):
        kernel = Kernel()
        events = []

        class Ordered(AlpsObject):
            def setup(self):
                events.append("setup")

            @entry
            def noop(self):
                pass

            @manager_process(intercepts=["noop"])
            def mgr(self):
                events.append("manager")
                while True:
                    result = yield Select(AcceptGuard(self, "noop"))
                    yield from self.execute(result.value)

        Ordered(kernel)
        kernel.run()
        assert events == ["setup", "manager"]

    def test_setup_attributes_usable_for_array_size(self, kernel):
        class Sized(AlpsObject):
            def setup(self, n):
                self.n = n

            @entry(array="n")
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value)

        obj = Sized(kernel, n=5)
        assert obj._entry_runtime("op").array_size == 5


class TestValidation:
    def test_intercepting_unknown_proc_rejected(self):
        with pytest.raises(InterceptError):
            class Bad(AlpsObject):
                @entry
                def real(self):
                    pass

                @manager_process(intercepts=["imaginary"])
                def mgr(self):
                    yield

    def test_intercept_params_beyond_signature_rejected(self):
        with pytest.raises(InterceptError):
            class Bad(AlpsObject):
                @entry
                def op(self, a):
                    pass

                @manager_process(intercepts={"op": icpt(params=2)})
                def mgr(self):
                    yield

    def test_intercept_results_beyond_signature_rejected(self):
        with pytest.raises(InterceptError):
            class Bad(AlpsObject):
                @entry(returns=1)
                def op(self):
                    return 1

                @manager_process(intercepts={"op": icpt(results=2)})
                def mgr(self):
                    yield

    def test_hidden_params_require_interception(self):
        with pytest.raises(InterceptError):
            class Bad(AlpsObject):
                @entry(hidden_params=1)
                def op(self, a, h):
                    pass

                @manager_process(intercepts=[])
                def mgr(self):
                    yield

    def test_hidden_params_require_manager(self):
        with pytest.raises(ObjectModelError):
            class Bad(AlpsObject):
                @entry(hidden_params=1)
                def op(self, a, h):
                    pass

    def test_unknown_proc_call_rejected(self, kernel):
        obj = Plain(kernel)

        def main():
            yield obj.call("missing")

        with pytest.raises(ObjectModelError):
            kernel.run_process(main)

    def test_wrong_arity_rejected(self, kernel):
        obj = Plain(kernel)

        def main():
            yield obj.call("double", 1, 2, 3)

        with pytest.raises(CallError):
            kernel.run_process(main)


class TestBinding:
    def test_bound_entry_on_instance(self, kernel):
        obj = Plain(kernel)
        bound = obj.double
        assert isinstance(bound, BoundEntry)
        assert bound.name == "double"

    def test_class_attribute_is_descriptor(self):
        assert not isinstance(Plain.double, BoundEntry)

    def test_two_instances_independent(self, kernel):
        a = Managed(kernel, name="a")
        b = Managed(kernel, name="b")

        def main():
            ra = yield a.op(1)
            rb = yield b.op(10)
            return (ra, rb)

        assert kernel.run_process(main) == (2, 11)

    def test_intercepts_do_not_leak_between_classes(self):
        class Base(AlpsObject):
            @entry(returns=1)
            def op(self, x):
                return x

        class Child(Base):
            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value)

        assert Base.__alps_entries__["op"].intercept is None
        assert Child.__alps_entries__["op"].intercept is not None

    def test_manager_runs_at_high_priority_by_default(self, kernel):
        from repro.kernel import PRIORITY_MANAGER

        obj = Managed(kernel)
        assert obj.manager_process.priority == PRIORITY_MANAGER

    def test_manager_priority_override(self, kernel):
        obj = Managed(kernel, manager_priority=500)
        assert obj.manager_process.priority == 500
