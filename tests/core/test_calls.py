"""Unit tests for the Call record and its life-cycle bookkeeping."""

import pytest

from repro.core.calls import Call, CallState
from repro.core.entry import entry, icpt
from repro.errors import ProtocolError


def make_spec(**kwargs):
    defaults = dict(returns=1)
    defaults.update(kwargs)

    @entry(**defaults)
    def op(self, a, b):
        return a

    return op


class TestCallViews:
    def test_initial_state(self):
        call = Call(None, make_spec(), (1, 2), None)
        assert call.state == CallState.PENDING
        assert call.slot is None
        assert not call.combined

    def test_intercepted_args_prefix(self):
        spec = make_spec()
        spec.intercept = icpt(params=1)
        call = Call(None, spec, ("first", "second"), None)
        assert call.intercepted_args == ("first",)

    def test_intercepted_results_before_body_rejected(self):
        spec = make_spec()
        spec.intercept = icpt(results=1)
        call = Call(None, spec, (1, 2), None)
        with pytest.raises(ProtocolError):
            call.intercepted_results

    def test_result_views_after_body(self):
        @entry(returns=2, hidden_results=1)
        def op(self, a):
            return (1, 2, 3)

        op.intercept = icpt(results=1)
        call = Call(None, op, (0,), None)
        call.body_results = ("visible1", "visible2", "hidden")
        assert call.intercepted_results == ("visible1",)
        assert call.hidden_results == ("hidden",)

    def test_metrics_none_until_complete(self):
        call = Call(None, make_spec(), (1, 2), None)
        assert call.response_time is None
        assert call.queue_time is None
        call.issued_at = 10
        call.accepted_at = 25
        call.finished_at = 60
        assert call.queue_time == 15
        assert call.response_time == 50

    def test_expect_state(self):
        call = Call(None, make_spec(), (1, 2), None)
        call._expect_state(CallState.PENDING)  # no raise
        with pytest.raises(ProtocolError):
            call._expect_state(CallState.STARTED, CallState.DONE)

    def test_call_ids_unique(self):
        spec = make_spec()
        a = Call(None, spec, (1, 2), None)
        b = Call(None, spec, (1, 2), None)
        assert a.call_id != b.call_id
