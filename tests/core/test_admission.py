"""Tests for admission control: ShedGuard, Reject, AdmissionError."""

import pytest

from repro.core import (
    ACCEPT_PRI,
    SHED_PRI,
    AcceptGuard,
    AlpsObject,
    CpuPressureGuard,
    Reject,
    ShedGuard,
    entry,
    manager_process,
    over_cap,
)
from repro.errors import AdmissionError, ProtocolError
from repro.kernel import Delay, Kernel, Select
from repro.kernel.costs import FREE
from repro.stdlib import (
    BoundedBuffer,
    DiskScheduler,
    GatedKVStore,
    ResourceAllocator,
    Spooler,
)


class Gated(AlpsObject):
    """Minimal capped server: serves slowly, sheds past the cap."""

    def setup(self, work: int = 10, cap: int = 2, request_max: int = 32) -> None:
        self.work = work
        self.cap = cap
        self.request_max = request_max

    @entry(returns=1, array="request_max")
    def op(self, x):
        yield Delay(self.work)
        return x

    @manager_process(intercepts=["op"])
    def mgr(self):
        while True:
            result = yield Select(
                ShedGuard(self, "op", cap=self.cap, pri=SHED_PRI),
                AcceptGuard(self, "op", pri=ACCEPT_PRI),
            )
            call = result.value
            if isinstance(result.guard, ShedGuard):
                yield Reject(call)
                continue
            yield from self.execute(call)


def flood(kernel, obj, n, collect):
    """Spawn n concurrent callers; collect (index, status) per call."""

    def caller(i):
        def body():
            try:
                value = yield obj.op(i)
            except AdmissionError as exc:
                collect.append((i, "shed", exc))
            else:
                collect.append((i, "ok", value))

        return body

    for i in range(n):
        kernel.spawn(caller(i), name=f"c{i}")


class TestShedGuard:
    def test_sheds_past_cap(self):
        kernel = Kernel(costs=FREE)
        obj = Gated(kernel, work=10, cap=2)
        outcomes = []
        flood(kernel, obj, 12, outcomes)
        kernel.run()
        statuses = [s for _, s, _ in outcomes]
        assert statuses.count("ok") + statuses.count("shed") == 12
        assert statuses.count("shed") > 0
        assert kernel.stats.calls_shed == statuses.count("shed")

    def test_admission_error_carries_context(self):
        kernel = Kernel(costs=FREE)
        obj = Gated(kernel, name="gated", work=10, cap=0)
        outcomes = []
        flood(kernel, obj, 6, outcomes)
        kernel.run()
        sheds = [exc for _, s, exc in outcomes if s == "shed"]
        assert sheds
        exc = sheds[0]
        assert exc.obj == "gated"
        assert exc.entry == "op"
        assert exc.reason == "queue-cap"
        assert "shed" in str(exc)

    def test_no_cap_no_shed(self):
        kernel = Kernel(costs=FREE)
        obj = Gated(kernel, work=1, cap=10_000)
        outcomes = []
        flood(kernel, obj, 8, outcomes)
        kernel.run()
        assert all(s == "ok" for _, s, _ in outcomes)
        assert kernel.stats.calls_shed == 0

    def test_over_cap_reads_pending(self, kernel):
        obj = Gated(kernel, cap=1)
        predicate = over_cap(obj, "op", 0)
        assert predicate() is False  # nothing pending yet

    def test_negative_cap_rejected(self, kernel):
        obj = Gated(kernel)
        with pytest.raises(ValueError):
            over_cap(obj, "op", -1)
        with pytest.raises(ValueError):
            ShedGuard(obj, "op", cap=-3)

    def test_describe_mentions_cap(self, kernel):
        obj = Gated(kernel)
        guard = ShedGuard(obj, "op", cap=7)
        assert "7" in guard.describe()
        assert "shed" in guard.describe()


class CpuGated(AlpsObject):
    """Server that sheds when its node's CPU runqueues back up."""

    def setup(self, work: int = 20, depth: int = 0, request_max: int = 32) -> None:
        self.work = work
        self.depth = depth
        self.request_max = request_max

    @entry(returns=1, array="request_max")
    def op(self, x):
        from repro.kernel import Charge

        yield Charge(self.work)
        return x

    @manager_process(intercepts=["op"])
    def mgr(self):
        while True:
            result = yield Select(
                CpuPressureGuard(self, "op", depth=self.depth),
                AcceptGuard(self, "op", pri=ACCEPT_PRI),
            )
            call = result.value
            if isinstance(result.guard, CpuPressureGuard):
                yield Reject(call, reason=result.guard.reason)
                continue
            yield from self.execute(call)


class TestCpuPressureGuard:
    def test_sheds_under_node_cpu_pressure(self):
        from repro.kernel import Charge
        from repro.net import Network

        kernel = Kernel(costs=FREE)
        net = Network(kernel)
        node = net.add_node("server", cpus=1)
        obj = CpuGated(kernel, name="gated", depth=0)
        node.place(obj)

        # Saturate the node: one hog runs, the second queues, so the
        # node's runqueue depth (1) exceeds the guard's budget (0).
        def hog():
            yield Charge(1000)

        node.spawn(hog)
        node.spawn(hog)
        outcomes = []
        flood(kernel, obj, 6, outcomes)
        kernel.run()
        statuses = [s for _, s, _ in outcomes]
        assert statuses.count("shed") > 0
        assert statuses.count("ok") + statuses.count("shed") == 6
        sheds = [exc for _, s, exc in outcomes if s == "shed"]
        assert sheds[0].reason == "cpu-pressure"

    def test_never_fires_on_unbounded_machine(self):
        # No node domains, no finite machine: queue depth is always 0,
        # so every call is served.
        kernel = Kernel(costs=FREE)
        obj = CpuGated(kernel, depth=0)
        outcomes = []
        flood(kernel, obj, 6, outcomes)
        kernel.run()
        assert all(s == "ok" for _, s, _ in outcomes)

    def test_negative_depth_rejected(self, kernel):
        obj = CpuGated(kernel)
        with pytest.raises(ValueError):
            CpuPressureGuard(obj, "op", depth=-1)

    def test_describe_mentions_depth(self, kernel):
        obj = CpuGated(kernel)
        guard = CpuPressureGuard(obj, "op", depth=4)
        assert "4" in guard.describe()
        assert "shed" in guard.describe()


class TestRejectProtocol:
    def test_reject_requires_accepted_state(self):
        # Reject after Start is a protocol violation (the call left the
        # ACCEPTED state), reported like every other protocol misuse.
        from repro.core import Start

        kernel = Kernel(costs=FREE)

        class Bad(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                call = result.value
                yield Start(call)
                yield Reject(call)

        obj = Bad(kernel)

        def main():
            yield obj.op()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)

    def test_shed_slot_is_reusable(self):
        # Rejecting detaches the call and frees its array slot.  With a
        # single slot and cap=0, all five callers get an answer (shed);
        # if Reject leaked the slot, callers 2..5 would stall forever.
        kernel = Kernel(costs=FREE)
        obj = Gated(kernel, work=5, cap=0, request_max=1)
        outcomes = []
        flood(kernel, obj, 5, outcomes)
        kernel.run()
        assert len(outcomes) == 5
        assert all(s == "shed" for _, s, _ in outcomes)

    def test_custom_reason(self):
        kernel = Kernel(costs=FREE)

        class Custom(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                yield Reject(result.value, reason="maintenance")

        obj = Custom(kernel)
        caught = []

        def main():
            try:
                yield obj.op()
            except AdmissionError as exc:
                caught.append(exc)

        kernel.run_process(main)
        assert caught and caught[0].reason == "maintenance"


class TestStdlibAdoption:
    def overload(self, kernel, make_call, n=20):
        counts = {"ok": 0, "shed": 0}

        def caller(i):
            def body():
                try:
                    yield make_call(i)
                except AdmissionError:
                    counts["shed"] += 1
                else:
                    counts["ok"] += 1

            return body

        for i in range(n):
            kernel.spawn(caller(i), name=f"c{i}")
        kernel.run()
        return counts

    def test_bounded_buffer_sheds(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=2, work=5, queue_cap=2)
        counts = self.overload(
            kernel, lambda i: buf.deposit(i) if i % 2 else buf.remove()
        )
        assert counts["ok"] + counts["shed"] == 20
        assert counts["shed"] > 0

    def test_bounded_buffer_uncapped_never_sheds(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=2, work=5)
        counts = self.overload(
            kernel, lambda i: buf.deposit(i) if i % 2 else buf.remove()
        )
        assert counts == {"ok": 20, "shed": 0}

    def test_spooler_sheds(self):
        kernel = Kernel(costs=FREE)
        spool = Spooler(kernel, printers=1, speed=50, job_max=32, queue_cap=1)
        counts = self.overload(kernel, lambda i: spool.print_file(f"doc{i}"))
        assert counts["shed"] > 0
        assert counts["ok"] >= 1

    def test_disk_scheduler_sheds(self):
        kernel = Kernel(costs=FREE)
        disk = DiskScheduler(
            kernel, seek_cost=2, transfer_work=10, request_max=32, queue_cap=2
        )
        counts = self.overload(kernel, lambda i: disk.access((i * 37) % 200))
        assert counts["shed"] > 0
        assert counts["ok"] >= 1
        # SCAN still served the accepted requests (service order recorded).
        assert len(disk.service_order) == counts["ok"]

    def test_allocator_sheds_acquire_only(self):
        kernel = Kernel(costs=FREE)
        alloc = ResourceAllocator(kernel, total=2, request_max=64, queue_cap=0)
        counts = {"ok": 0, "shed": 0, "released": 0}

        def acquirer(i):
            def body():
                try:
                    yield alloc.acquire(1)
                    counts["ok"] += 1
                    yield Delay(10)
                    yield alloc.release(1)
                    counts["released"] += 1
                except AdmissionError:
                    counts["shed"] += 1

            return body

        for i in range(10):
            kernel.spawn(acquirer(i), name=f"a{i}")
        kernel.run()
        # Every successful acquire released; no release was ever shed.
        assert counts["released"] == counts["ok"]
        assert counts["shed"] > 0
        assert alloc.available == alloc.total

    def test_gated_kv_store_serves_and_sheds(self):
        kernel = Kernel(costs=FREE)
        kv = GatedKVStore(kernel, write_work=10, request_max=4, queue_cap=1)
        counts = self.overload(kernel, lambda i: kv.put(f"k{i}", i), n=16)
        assert counts["ok"] + counts["shed"] == 16
        assert counts["shed"] > 0
        assert kv.writes_applied == counts["ok"]

    def test_gated_kv_store_concurrent_bodies(self):
        # The manager gates but does not serialize: two slow puts overlap.
        kernel = Kernel(costs=FREE)
        kv = GatedKVStore(kernel, write_work=50, request_max=4, queue_cap=8)
        done = []

        def put(i):
            def body():
                yield kv.put(f"k{i}", i)
                done.append((i, kernel.clock.now))

            return body

        kernel.spawn(put(0), name="p0")
        kernel.spawn(put(1), name="p1")
        kernel.run()
        assert len(done) == 2
        times = [t for _, t in done]
        # Serialized execution would finish the second at ~2x the first.
        assert max(times) < 2 * min(times)
