"""Tests for par_range and the loop helper (§2.1.1, §2.4)."""

import pytest

from repro.channels import Channel, ReceiveGuard, Send
from repro.core import par_range
from repro.core.select import loop
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE


class TestParRange:
    def test_inclusive_bounds(self, kernel):
        def worker(i):
            yield Delay(1)
            return i * i

        def main():
            return (yield par_range(2, 5, worker))

        assert kernel.run_process(main) == [4, 9, 16, 25]

    def test_single_element_range(self, kernel):
        def main():
            return (yield par_range(3, 3, lambda i: i))

        assert kernel.run_process(main) == [3]

    def test_empty_range(self, kernel):
        def main():
            return (yield par_range(5, 4, lambda i: i))

        assert kernel.run_process(main) == []

    def test_parallel_execution(self):
        kernel = Kernel(costs=FREE)

        def worker(i):
            yield Delay(100)
            return i

        def main():
            return (yield par_range(1, 10, worker))

        assert kernel.run_process(main) == list(range(1, 11))
        assert kernel.clock.now == 100  # all ten overlapped

    def test_priority_forwarded(self, kernel):
        def worker(i):
            from repro.kernel import Self

            me = yield Self()
            return me.priority

        def main():
            return (yield par_range(0, 1, worker, priority=7))

        assert kernel.run_process(main) == [7, 7]


class TestLoopHelper:
    def test_loop_until_stop(self, kernel):
        ch = Channel()
        seen = []

        class Collect(ReceiveGuard):
            def commit(self, k, proc, ready):
                value = super().commit(k, proc, ready)
                seen.append(value)
                return value

        def main():
            for i in range(3):
                yield Send(ch, i)
            yield from loop(Collect(ch), stop=lambda: len(seen) == 3)
            return seen

        assert kernel.run_process(main) == [0, 1, 2]
