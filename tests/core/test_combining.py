"""Tests for request combining (§2.7) and the Combiner helper."""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Combiner,
    Finish,
    Start,
    entry,
    icpt,
    manager_process,
)
from repro.core.calls import Call, CallState
from repro.errors import ProtocolError
from repro.kernel import Delay, Kernel, Par, Select
from repro.kernel.costs import FREE


class TestCombinerHelper:
    def _call(self):
        from repro.core.entry import entry as entry_dec

        @entry_dec(returns=1)
        def op(self, x):
            return x

        return Call(None, op, ("k",), None)

    def test_first_join_is_leader(self):
        combiner = Combiner()
        assert combiner.join("k", self._call()) is True
        assert combiner.join("k", self._call()) is False
        assert combiner.join("k", self._call()) is False
        assert combiner.leaders == 1
        assert combiner.followers == 2

    def test_settle_returns_followers(self):
        combiner = Combiner()
        combiner.join("k", self._call())
        f1, f2 = self._call(), self._call()
        combiner.join("k", f1)
        combiner.join("k", f2)
        assert combiner.settle("k") == [f1, f2]
        assert "k" not in combiner

    def test_settle_unknown_key_empty(self):
        assert Combiner().settle("missing") == []

    def test_independent_keys(self):
        combiner = Combiner()
        assert combiner.join("a", self._call())
        assert combiner.join("b", self._call())
        assert combiner.waiting_on("a") == 0
        combiner.join("a", self._call())
        assert combiner.waiting_on("a") == 1
        assert len(combiner) == 2


class TestFinishWithoutStart:
    def test_manager_fabricates_results(self, kernel):
        class Oracle(AlpsObject):
            @entry(returns=1)
            def ask(self):
                raise AssertionError("never started")

            @manager_process(intercepts=["ask"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "ask"))
                    yield Finish(result.value, 42)

        obj = Oracle(kernel)

        def main():
            return (yield obj.ask())

        assert kernel.run_process(main) == 42
        assert kernel.stats.calls_combined == 1
        assert kernel.stats.starts == 0

    def test_combining_must_supply_all_results(self, kernel):
        class Bad(AlpsObject):
            @entry(returns=2)
            def ask(self):
                raise AssertionError

            @manager_process(intercepts=["ask"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "ask"))
                yield Finish(result.value, "only-one")  # needs two

        obj = Bad(kernel)

        def main():
            yield obj.ask()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)

    def test_combined_call_marked(self, kernel):
        class Oracle(AlpsObject):
            @entry(returns=1)
            def ask(self):
                raise AssertionError

            @manager_process(intercepts=["ask"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "ask"))
                    yield Finish(result.value, 1)

        obj = Oracle(kernel, record_calls=True)

        def main():
            return (yield obj.ask())

        kernel.run_process(main)
        call = obj.completed_calls("ask")[0]
        assert call.combined
        assert call.state == CallState.DONE
        assert call.started_at is None


class TestCombiningEndToEnd:
    def _searcher(self, kernel, combining=True):
        executions = []

        class Search(AlpsObject):
            @entry(returns=1, array=8)
            def search(self, word):
                executions.append(word)
                yield Delay(100)
                return f"meaning-of-{word}"

            @manager_process(intercepts={"search": icpt(params=1, results=1)})
            def mgr(self):
                combiner = Combiner()
                while True:
                    result = yield Select(
                        AcceptGuard(self, "search"),
                        AwaitGuard(self, "search"),
                    )
                    call = result.value
                    if isinstance(result.guard, AcceptGuard):
                        (word,) = call.intercepted_args
                        if combining and not combiner.join(word, call):
                            continue
                        yield Start(call)
                    else:
                        (meaning,) = call.intercepted_results
                        yield Finish(call, meaning)
                        if combining:
                            for follower in combiner.settle(call.args[0]):
                                yield Finish(follower, meaning)

        return Search(kernel), executions

    def test_duplicates_combined_into_one_execution(self):
        kernel = Kernel(costs=FREE)
        obj, executions = self._searcher(kernel)

        def caller():
            return (yield obj.search("cat"))

        def main():
            return (yield Par(*[lambda: caller() for _ in range(6)]))

        results = kernel.run_process(main)
        assert results == ["meaning-of-cat"] * 6
        assert executions == ["cat"]  # one body served six callers
        assert kernel.stats.calls_combined == 5

    def test_distinct_keys_not_combined(self):
        kernel = Kernel(costs=FREE)
        obj, executions = self._searcher(kernel)

        def caller(word):
            return (yield obj.search(word))

        def main():
            return (yield Par(lambda: caller("a"), lambda: caller("b")))

        assert kernel.run_process(main) == ["meaning-of-a", "meaning-of-b"]
        assert sorted(executions) == ["a", "b"]
        assert kernel.stats.calls_combined == 0

    def test_combining_off_executes_every_request(self):
        kernel = Kernel(costs=FREE)
        obj, executions = self._searcher(kernel, combining=False)

        def caller():
            return (yield obj.search("cat"))

        def main():
            return (yield Par(*[lambda: caller() for _ in range(4)]))

        assert kernel.run_process(main) == ["meaning-of-cat"] * 4
        assert len(executions) == 4

    def test_combining_saves_work(self):
        # Each avoided body execution is 100 ticks of simulated CPU saved.
        def work_done(combining):
            kernel = Kernel(costs=FREE)
            obj, executions = self._searcher(kernel, combining=combining)

            def caller():
                return (yield obj.search("hot"))

            def main():
                yield Par(*[lambda: caller() for _ in range(8)])

            kernel.run_process(main)
            return len(executions)

        assert work_done(True) == 1
        assert work_done(False) == 8
