"""Unit tests for entry declarations (@entry/@local, EntrySpec)."""

import pytest

from repro.core.entry import EntrySpec, Intercept, entry, icpt, local
from repro.errors import ObjectModelError


class TestEntryDecorator:
    def test_bare_decorator(self):
        @entry
        def deposit(self, msg):
            pass

        assert isinstance(deposit, EntrySpec)
        assert deposit.name == "deposit"
        assert deposit.params == 1
        assert deposit.returns == 0
        assert deposit.exported

    def test_decorator_with_arguments(self):
        @entry(returns=2, array=5, hidden_params=1, hidden_results=1)
        def search(self, word, place):
            pass

        assert search.params == 1  # word only; place is hidden
        assert search.returns == 2
        assert search.hidden_params == 1
        assert search.total_results == 3
        assert search.array == 5

    def test_local_not_exported(self):
        @local
        def helper(self):
            pass

        assert not helper.exported

    def test_varargs_rejected(self):
        with pytest.raises(ObjectModelError):
            @entry
            def bad(self, *args):
                pass

    def test_kwargs_rejected(self):
        with pytest.raises(ObjectModelError):
            @entry
            def bad(self, **kwargs):
                pass

    def test_hidden_params_exceeding_formals_rejected(self):
        with pytest.raises(ObjectModelError):
            @entry(hidden_params=3)
            def bad(self, a):
                pass

    def test_negative_returns_rejected(self):
        with pytest.raises(ObjectModelError):
            @entry(returns=-1)
            def bad(self):
                pass


class TestArrayResolution:
    def test_int_array(self):
        @entry(array=7)
        def p(self):
            pass

        assert p.resolve_array(object()) == 7

    def test_attribute_array(self):
        @entry(array="read_max")
        def p(self):
            pass

        class Holder:
            read_max = 12

        assert p.resolve_array(Holder()) == 12

    def test_no_array_means_one(self):
        @entry
        def p(self):
            pass

        assert p.resolve_array(object()) == 1

    def test_missing_attribute_rejected(self):
        @entry(array="nope")
        def p(self):
            pass

        with pytest.raises(ObjectModelError):
            p.resolve_array(object())

    def test_nonpositive_size_rejected(self):
        @entry(array="n")
        def p(self):
            pass

        class Holder:
            n = 0

        with pytest.raises(ObjectModelError):
            p.resolve_array(Holder())


class TestNormalizeResults:
    def test_zero_results(self):
        @entry
        def p(self):
            pass

        assert p.normalize_results(None) == ()

    def test_zero_results_with_value_rejected(self):
        @entry
        def p(self):
            pass

        with pytest.raises(ObjectModelError):
            p.normalize_results("unexpected")

    def test_single_result_wrapped(self):
        @entry(returns=1)
        def p(self):
            pass

        assert p.normalize_results("v") == ("v",)

    def test_single_result_tuple_value_preserved(self):
        # A body returning a tuple *as its one value* keeps it intact.
        @entry(returns=1)
        def p(self):
            pass

        assert p.normalize_results((1, 2)) == ((1, 2),)

    def test_multi_results_require_tuple(self):
        @entry(returns=2)
        def p(self):
            pass

        assert p.normalize_results((1, 2)) == (1, 2)
        with pytest.raises(ObjectModelError):
            p.normalize_results([1, 2])
        with pytest.raises(ObjectModelError):
            p.normalize_results((1,))


class TestSignature:
    def test_signature_hides_hidden_params(self):
        @entry(returns=1, hidden_params=1)
        def search(self, word, place):
            pass

        sig = search.signature()
        assert "word" in sig
        assert "place" not in sig  # hidden from the definition part


class TestIcpt:
    def test_icpt_constructor(self):
        spec = icpt(params=2, results=1)
        assert spec == Intercept(params=2, results=1)

    def test_defaults(self):
        assert icpt() == Intercept(0, 0)
