"""Tests of hidden procedure arrays (§2.5): attachment, slot reuse,
overflow queueing, per-slot accepts, arbitration."""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.kernel import Delay, Kernel, Par, Select
from repro.kernel.costs import FREE


class ArrayObj(AlpsObject):
    """Entry implemented as a 3-element hidden array."""

    @entry(returns=1, array=3)
    def op(self, n):
        yield Delay(50)
        return n * 2

    @manager_process(intercepts=["op"])
    def mgr(self):
        while True:
            result = yield Select(
                AcceptGuard(self, "op"),
                AwaitGuard(self, "op"),
            )
            if isinstance(result.guard, AcceptGuard):
                yield Start(result.value)
            else:
                yield Finish(result.value)


class TestAttachment:
    def test_array_invisible_to_callers(self, kernel):
        # Users call op as a single procedure (§2.5: "the user processes
        # should not be aware of the array structure").
        obj = ArrayObj(kernel)

        def main():
            return (yield obj.op(21))

        assert kernel.run_process(main) == 42

    def test_up_to_n_calls_attach_and_run_concurrently(self):
        kernel = Kernel(costs=FREE)
        obj = ArrayObj(kernel)

        def caller(n):
            return (yield obj.op(n))

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(3)]))

        assert kernel.run_process(main) == [0, 2, 4]
        assert kernel.clock.now == 50  # all three bodies overlapped

    def test_excess_calls_wait_for_free_slot(self):
        # §2.5: "If there are more requests than can be accommodated in
        # the procedure array P, the remaining requests continue to wait."
        kernel = Kernel(costs=FREE)
        obj = ArrayObj(kernel)

        def caller(n):
            return (yield obj.op(n))

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(7)]))

        assert sorted(kernel.run_process(main)) == [0, 2, 4, 6, 8, 10, 12]
        # 7 calls over 3 slots of 50 ticks each: ceil(7/3)=3 waves.
        assert kernel.clock.now == 150

    def test_slots_assigned_distinct(self):
        kernel = Kernel(costs=FREE)
        slots = []

        class SlotSpy(AlpsObject):
            @entry(array=4)
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    slots.append(result.value.slot)
                    yield from self.execute(result.value)

        obj = SlotSpy(kernel)

        def caller():
            yield obj.op()

        def main():
            yield Par(*[lambda: caller() for _ in range(4)])

        kernel.run_process(main)
        assert sorted(slots) == [0, 1, 2, 3]

    def test_random_arbitration_attaches_to_random_free_slot(self):
        kernel = Kernel(costs=FREE, seed=5, arbitration="random")
        obj = ArrayObj(kernel)

        def caller(n):
            return (yield obj.op(n))

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(3)]))

        # Semantics unchanged regardless of slot choice.
        assert kernel.run_process(main) == [0, 2, 4]


class TestPerSlotAccept:
    def test_accept_specific_slot(self):
        kernel = Kernel(costs=FREE)
        served = []

        class OneSlot(AlpsObject):
            @entry(array=2)
            def op(self, tag):
                served.append(tag)

            @manager_process(intercepts=["op"])
            def mgr(self):
                # Only ever accept slot 0.
                while True:
                    result = yield Select(AcceptGuard(self, "op", slot=0))
                    yield from self.execute(result.value)

        obj = OneSlot(kernel)

        def main():
            # Sequential calls: each attaches to the lowest free index,
            # which is 0 once the previous call finished.
            yield obj.op("a")
            yield obj.op("b")

        kernel.run_process(main)
        assert served == ["a", "b"]

    def test_attachment_is_permanent(self):
        # A call attached to P[1] stays attached to P[1]; a manager that
        # only accepts P[0] never serves it (§2.5: attachment happens on
        # arrival, before any accept).
        from repro.errors import DeadlockError

        kernel = Kernel(costs=FREE)

        class OneSlot(AlpsObject):
            @entry(array=2)
            def op(self, tag):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op", slot=0))
                    yield from self.execute(result.value)

        obj = OneSlot(kernel)

        def caller(tag):
            yield obj.op(tag)

        def main():
            yield Par(lambda: caller("a"), lambda: caller("b"))

        with pytest.raises(DeadlockError):
            kernel.run_process(main)

    def test_await_specific_slot(self):
        kernel = Kernel(costs=FREE)

        class TwoPhase(AlpsObject):
            @entry(returns=1, array=2)
            def op(self, n):
                yield Delay(10 * (n + 1))
                return n

            @manager_process(intercepts=["op"])
            def mgr(self):
                first = yield Select(AcceptGuard(self, "op"))
                yield Start(first.value)
                second = yield Select(AcceptGuard(self, "op"))
                yield Start(second.value)
                # Await specifically the *second* call's slot.
                done2 = yield self.await_("op", slot=second.value.slot)
                yield Finish(done2)
                done1 = yield self.await_("op", slot=first.value.slot)
                yield Finish(done1)
                # Manager ends: fine for a one-shot test object.

        obj = TwoPhase(kernel)
        finish_order = []

        def caller(n):
            value = yield obj.op(n)
            finish_order.append(value)

        def main():
            yield Par(lambda: caller(0), lambda: caller(5))

        kernel.run_process(main)
        assert finish_order == [5, 0]  # slot-targeted await reversed order


class TestSlotReuse:
    def test_slot_not_reusable_until_finish(self):
        # §2.5: "Another request is not attached to P[i] until the
        # currently attached request is processed by P[i], i.e., until the
        # manager executes a finish P[i]."
        kernel = Kernel(costs=FREE)
        timeline = []

        class OneSlotSpy(AlpsObject):
            @entry(array=1)
            def op(self, tag):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    call = result.value
                    timeline.append(("accept", call.args[0], kernel.clock.now))
                    yield Start(call)
                    done = yield self.await_("op", call=call)
                    yield Delay(20)  # hold the slot after body completion
                    yield Finish(done)

        obj = OneSlotSpy(kernel)

        def caller(tag):
            yield obj.op(tag)

        def main():
            yield Par(lambda: caller("x"), lambda: caller("y"))

        kernel.run_process(main)
        accepts = [t for kind, _tag, t in timeline if kind == "accept"]
        assert accepts[1] >= accepts[0] + 20  # second waited for finish

    def test_many_waves_through_small_array(self):
        kernel = Kernel(costs=FREE)
        obj = ArrayObj(kernel)

        def caller(n):
            return (yield obj.op(n))

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(20)]))

        results = kernel.run_process(main)
        assert sorted(results) == [i * 2 for i in range(20)]
