"""Tests for the metrics helpers in repro.core.monitoring."""

import pytest

from repro.core.monitoring import (
    LatencySummary,
    max_overlap,
    percentile,
    queue_times,
    response_times,
    summarize,
    throughput,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7], 0.95) == 7.0

    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 0.5) == 2.5

    def test_p95(self):
        values = list(range(1, 101))
        assert percentile(values, 0.95) == pytest.approx(95.05)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary == LatencySummary.empty()
        assert summary.count == 0

    def test_basic_stats(self):
        summary = summarize([10, 20, 30])
        assert summary.count == 3
        assert summary.mean == pytest.approx(20.0)
        assert summary.median == 20
        assert summary.maximum == 30
        assert summary.minimum == 10

    def test_none_values_skipped(self):
        assert summarize([10, None, 30]).count == 2

    def test_row_rounding(self):
        row = summarize([1, 2]).row()
        assert row["mean"] == 1.5
        assert row["n"] == 2


class TestThroughput:
    def test_ops_per_kilotick(self):
        assert throughput(50, 1000) == 50.0
        assert throughput(50, 2000) == 25.0

    def test_zero_elapsed(self):
        assert throughput(10, 0) == 0.0


class TestMaxOverlap:
    def test_disjoint(self):
        assert max_overlap([(0, 10), (20, 30)]) == 1

    def test_nested(self):
        assert max_overlap([(0, 100), (10, 20), (30, 40)]) == 2

    def test_identical(self):
        assert max_overlap([(0, 10)] * 5) == 5

    def test_back_to_back_not_overlapping(self):
        assert max_overlap([(0, 10), (10, 20)]) == 1

    def test_empty(self):
        assert max_overlap([]) == 0


class TestCallSummaries:
    def test_response_and_queue_times_from_records(self, kernel):
        from repro.core import AcceptGuard, AlpsObject, entry, manager_process
        from repro.kernel import Delay, Par, Select

        class Timed(AlpsObject):
            @entry
            def op(self):
                yield Delay(10)

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value)

        obj = Timed(kernel, record_calls=True)

        def caller():
            yield obj.op()

        def main():
            yield Par(*[lambda: caller() for _ in range(3)])

        kernel.run_process(main)
        calls = obj.completed_calls("op")
        assert len(calls) == 3
        rt = response_times(calls)
        qt = queue_times(calls)
        assert rt.count == 3
        assert rt.minimum >= 10  # at least the service time
        # Serial manager: later calls queue behind earlier ones.
        assert qt.maximum > qt.minimum
