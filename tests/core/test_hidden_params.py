"""Tests for hidden parameters and hidden results (§2.8)."""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.errors import ProtocolError
from repro.kernel import Kernel, Par, Select


class TestHiddenParameters:
    def test_manager_supplies_hidden_param_at_start(self, kernel):
        class Hidden(AlpsObject):
            @entry(returns=1)
            def op(self, visible, secret):
                return (visible, secret)

        # Rebuild with manager (hidden params require interception).
        class Hidden(AlpsObject):  # noqa: F811
            @entry(returns=1, hidden_params=1)
            def op(self, visible, secret):
                return (visible, secret)

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value, "injected")

        obj = Hidden(kernel)

        def main():
            return (yield obj.op("user-arg"))

        assert kernel.run_process(main) == ("user-arg", "injected")

    def test_callers_cannot_pass_hidden_params(self, kernel):
        from repro.errors import CallError

        class Hidden(AlpsObject):
            @entry(hidden_params=1)
            def op(self, secret):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    yield from self.execute(result.value, 0)

        obj = Hidden(kernel)

        def main():
            yield obj.op("trying-to-pass-secret")

        with pytest.raises(CallError):
            kernel.run_process(main)

    def test_start_arity_checked(self, kernel):
        class Hidden(AlpsObject):
            @entry(hidden_params=2)
            def op(self, a, b):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                result = yield Select(AcceptGuard(self, "op"))
                yield Start(result.value, "only-one")  # needs two

        obj = Hidden(kernel)

        def main():
            yield obj.op()

        with pytest.raises(ProtocolError):
            kernel.run_process(main)


class TestHiddenResults:
    def test_hidden_result_visible_to_manager_only(self, kernel):
        manager_saw = []

        class Hidden(AlpsObject):
            @entry(returns=1, hidden_results=1)
            def op(self):
                return ("public", "private")

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    call = result.value
                    yield Start(call)
                    done = yield self.await_("op", call=call)
                    manager_saw.append(done.hidden_results)
                    yield Finish(done)

        obj = Hidden(kernel)

        def main():
            return (yield obj.op())

        assert kernel.run_process(main) == "public"  # caller: public only
        assert manager_saw == [("private",)]

    def test_round_trip_allocation_pattern(self, kernel):
        # The §2.8.1 pattern: hidden param hands out a resource, hidden
        # result returns it, manager needs no allocation table.
        class Alloc(AlpsObject):
            def setup(self):
                self.free = [0, 1]

            @entry(returns=1, array=2, hidden_params=1, hidden_results=1)
            def op(self, resource):
                return (f"used-{resource}", resource)

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(
                        AcceptGuard(self, "op", when=lambda: bool(self.free)),
                        AwaitGuard(self, "op"),
                    )
                    call = result.value
                    if isinstance(result.guard, AcceptGuard):
                        yield Start(call, self.free.pop(0))
                    else:
                        (returned,) = call.hidden_results
                        self.free.append(returned)
                        yield Finish(call)

        obj = Alloc(kernel)

        def caller():
            return (yield obj.op())

        def main():
            return (yield Par(*[lambda: caller() for _ in range(6)]))

        results = kernel.run_process(main)
        assert len(results) == 6
        assert set(results) <= {"used-0", "used-1"}
        assert sorted(obj.free) == [0, 1]  # all resources returned
