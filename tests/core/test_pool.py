"""Tests for server-process pool strategies (§3)."""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    PoolConfig,
    Start,
    entry,
    manager_process,
)
from repro.errors import ObjectModelError
from repro.kernel import Delay, Kernel, Par, Select
from repro.kernel.costs import FREE


class Worked(AlpsObject):
    """Concurrent entry with a 100-tick body, 4 array slots."""

    @entry(returns=1, array=4)
    def op(self, n):
        yield Delay(100)
        return n

    @manager_process(intercepts=["op"])
    def mgr(self):
        while True:
            result = yield Select(
                AcceptGuard(self, "op"),
                AwaitGuard(self, "op"),
            )
            if isinstance(result.guard, AcceptGuard):
                yield Start(result.value)
            else:
                yield Finish(result.value)


def run_callers(kernel, obj, count):
    def caller(n):
        return (yield obj.op(n))

    def main():
        return (yield Par(*[lambda i=i: caller(i) for i in range(count)]))

    return kernel.run_process(main)


class TestPoolConfig:
    def test_modes_validated(self):
        with pytest.raises(ObjectModelError):
            PoolConfig("bogus")

    def test_shared_requires_size(self):
        with pytest.raises(ObjectModelError):
            PoolConfig("shared")

    def test_shared_size_validated(self):
        with pytest.raises(ObjectModelError):
            PoolConfig("shared", size=0)


class TestDynamicPool:
    def test_unbounded_concurrency(self):
        kernel = Kernel(costs=FREE)
        obj = Worked(kernel, pool=PoolConfig("dynamic"))
        assert run_callers(kernel, obj, 4) == [0, 1, 2, 3]
        assert kernel.clock.now == 100  # all four overlapped
        assert obj.pool.max_busy == 4
        assert obj.pool.preallocation_cost == 0


class TestPerSlotPool:
    def test_capacity_equals_slots(self):
        kernel = Kernel(costs=FREE)
        obj = Worked(kernel, pool=PoolConfig("per-slot"))
        assert obj.pool.capacity == 4

    def test_concurrency_bounded_by_slots(self):
        kernel = Kernel(costs=FREE)
        obj = Worked(kernel, pool=PoolConfig("per-slot"))
        assert sorted(run_callers(kernel, obj, 8)) == list(range(8))
        assert obj.pool.max_busy <= 4
        assert kernel.clock.now == 200  # two waves of four


class TestSharedPool:
    def test_m_less_than_n_bounds_concurrency(self):
        # §3: preallocate M << N and assign a process "at the time it is
        # started rather than when the call arrives".
        kernel = Kernel(costs=FREE)
        obj = Worked(kernel, pool=PoolConfig("shared", size=2))
        assert sorted(run_callers(kernel, obj, 8)) == list(range(8))
        assert obj.pool.max_busy <= 2
        assert kernel.clock.now == 400  # four waves of two

    def test_queued_starts_counted(self):
        kernel = Kernel(costs=FREE)
        obj = Worked(kernel, pool=PoolConfig("shared", size=1))
        run_callers(kernel, obj, 4)
        assert obj.pool.queued_starts == 3

    def test_worker_busy_until_finish(self):
        # The worker is released at finish, not at body completion (§2.3:
        # "both the finish P(...) and P terminate together").
        kernel = Kernel(costs=FREE)
        starts = []

        class LateFinish(AlpsObject):
            @entry(array=2)
            def op(self, tag):
                starts.append((tag, kernel.clock.now))

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "op"))
                    call = result.value
                    yield Start(call)
                    done = yield self.await_("op", call=call)
                    yield Delay(30)  # worker stays busy during this delay
                    yield Finish(done)

        obj = LateFinish(kernel, pool=PoolConfig("shared", size=1))

        def caller(tag):
            yield obj.op(tag)

        def main():
            yield Par(lambda: caller("a"), lambda: caller("b"))

        kernel.run_process(main)
        assert starts[1][1] >= starts[0][1] + 30


class TestPreallocationCost:
    def test_preallocated_pools_charge_up_front(self):
        from repro.kernel import CostModel

        costs = CostModel(lwp_create=10)
        kernel = Kernel(costs=costs)
        obj = Worked(kernel, pool=PoolConfig("per-slot"))
        assert obj.pool.preallocation_cost == 40  # 4 slots x 10

    def test_process_count_accounting(self):
        kernel = Kernel(costs=FREE)
        before = kernel.stats.spawns
        obj = Worked(kernel, pool=PoolConfig("shared", size=3))
        # 3 preallocated workers + the manager process.
        assert kernel.stats.spawns - before == 4
        run_callers(kernel, obj, 6)
        # Dispatching reuses workers: no further (net) spawns counted for
        # bodies beyond the preallocated three.
        assert kernel.stats.spawns - before == 4 + 1 + 6  # main + callers
