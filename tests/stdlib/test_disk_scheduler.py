"""Tests for the SCAN disk scheduler (run-time guard priorities)."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import DiskScheduler


def submit(kernel, disk, cylinders, arrival_delay=1):
    def request(c):
        yield Delay(arrival_delay)
        yield disk.access(c)

    def main():
        yield Par(*[lambda c=c: request(c) for c in cylinders])

    kernel.run_process(main)


class TestScan:
    def test_sweeps_in_one_direction(self):
        kernel = Kernel(costs=FREE)
        disk = DiskScheduler(kernel, seek_cost=1, transfer_work=1)
        submit(kernel, disk, [50, 30, 70, 10, 90])
        order = disk.service_order
        # After the first-served request, the head sweeps monotonically up
        # then monotonically down (at most one direction change).
        changes = 0
        for i in range(2, len(order)):
            if (order[i] - order[i - 1]) * (order[i - 1] - order[i - 2]) < 0:
                changes += 1
        assert changes <= 1

    def test_scan_beats_fifo_seek_distance(self):
        requests = [98, 183, 37, 122, 14, 124, 65, 67]

        kernel = Kernel(costs=FREE)
        disk = DiskScheduler(kernel, seek_cost=1, transfer_work=1)
        submit(kernel, disk, requests)
        scan_seek = disk.total_seek

        fifo_seek = 0
        head = 0
        for c in requests:
            fifo_seek += abs(c - head)
            head = c
        assert scan_seek < fifo_seek

    def test_all_requests_served(self):
        kernel = Kernel(costs=FREE)
        disk = DiskScheduler(kernel)
        cylinders = [5, 100, 42, 7, 160, 42]
        submit(kernel, disk, cylinders)
        assert sorted(disk.service_order) == sorted(cylinders)

    def test_sequential_requests_fifo(self, kernel):
        disk = DiskScheduler(kernel)

        def main():
            yield disk.access(10)
            yield disk.access(5)
            yield disk.access(20)

        kernel.run_process(main)
        assert disk.service_order == [10, 5, 20]

    def test_seek_time_charged(self):
        kernel = Kernel(costs=FREE)
        disk = DiskScheduler(kernel, seek_cost=2, transfer_work=0)

        def main():
            yield disk.access(30)

        kernel.run_process(main)
        assert kernel.stats.work_ticks == 60  # 30 cylinders x 2
