"""Tests for the §2.4.1 bounded buffer (manager as monitor)."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import BoundedBuffer


class TestBoundedBuffer:
    def test_fifo_single_producer_consumer(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=4)

        def producer():
            for i in range(10):
                yield buf.deposit(i)

        def consumer():
            got = []
            for _ in range(10):
                got.append((yield buf.remove()))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        assert proc.result == list(range(10))

    def test_deposit_blocks_when_full(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=2)
        deposited = []

        def producer():
            for i in range(5):
                yield buf.deposit(i)
                deposited.append(i)

        def consumer():
            yield Delay(1000)
            for _ in range(5):
                yield buf.remove()

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run(until=500)
        assert len(deposited) == 2
        kernel.run()
        assert len(deposited) == 5

    def test_remove_blocks_when_empty(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=2)

        def consumer():
            value = yield buf.remove()
            return (value, kernel.clock.now)

        def producer():
            yield Delay(77)
            yield buf.deposit("late")

        proc = kernel.spawn(consumer)
        kernel.spawn(producer)
        kernel.run()
        value, when = proc.result
        assert value == "late"
        assert when >= 77

    def test_size_one_alternates(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=1)

        def producer():
            for i in range(4):
                yield buf.deposit(i)

        def consumer():
            got = []
            for _ in range(4):
                got.append((yield buf.remove()))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        assert proc.result == [0, 1, 2, 3]

    def test_invalid_size_rejected(self, kernel):
        with pytest.raises(ValueError):
            BoundedBuffer(kernel, size=0)

    def test_multiple_producers_consumers_conserve_messages(self):
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=3)
        received = []

        def producer(base):
            for i in range(6):
                yield buf.deposit(base + i)

        def consumer():
            for _ in range(6):
                received.append((yield buf.remove()))

        def main():
            yield Par(
                lambda: producer(0),
                lambda: producer(100),
                lambda: consumer(),
                lambda: consumer(),
            )

        kernel.run_process(main)
        assert sorted(received) == sorted(list(range(6)) + list(range(100, 106)))

    def test_manager_serializes_bodies(self):
        # §2.4.1's manager uses execute: strict mutual exclusion even with
        # body work.
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=4, work=10)

        def producer():
            for i in range(3):
                yield buf.deposit(i)

        def consumer():
            for _ in range(3):
                yield buf.remove()

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run()
        # 6 operations x 10 ticks, fully serialized by the manager.
        assert kernel.clock.now >= 60
