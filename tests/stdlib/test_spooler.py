"""Tests for the §2.8.1 printer spooler (hidden params/results)."""

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Spooler


class TestSpooler:
    def test_single_job_prints(self, kernel):
        spooler = Spooler(kernel, printers=1, speed=2)

        def main():
            yield spooler.print_file("report.txt")

        kernel.run_process(main)
        assert spooler.printer_pool[0].jobs == ["report.txt"]

    def test_jobs_spread_across_printers(self):
        kernel = Kernel(costs=FREE)
        spooler = Spooler(kernel, printers=3, speed=5)

        def job(i):
            yield spooler.print_file(f"file-{i}-{'x' * 40}")

        def main():
            yield Par(*[lambda i=i: job(i) for i in range(6)])

        kernel.run_process(main)
        used = [p for p in spooler.printer_pool if p.jobs]
        assert len(used) == 3  # all printers pulled work

    def test_concurrency_bounded_by_printers(self):
        kernel = Kernel(costs=FREE)
        spooler = Spooler(kernel, printers=2, speed=10)

        def job(i):
            yield spooler.print_file(f"f{i}" + "x" * 30)

        def main():
            yield Par(*[lambda i=i: job(i) for i in range(6)])

        kernel.run_process(main)
        from repro.core.monitoring import max_overlap

        intervals = []
        for printer_intervals in spooler.busy_intervals.values():
            intervals.extend(printer_intervals)
        # Never more than two overlapping print jobs.
        assert max_overlap(intervals) <= 2

    def test_printer_reclaimed_via_hidden_result(self):
        kernel = Kernel(costs=FREE)
        spooler = Spooler(kernel, printers=1, speed=1)

        def main():
            # Sequential jobs through one printer: hidden result must free
            # it each time or the second job deadlocks.
            yield spooler.print_file("a" * 16)
            yield spooler.print_file("b" * 16)
            yield spooler.print_file("c" * 16)

        kernel.run_process(main)
        assert spooler.printer_pool[0].pages_printed == 6

    def test_every_job_printed_exactly_once(self):
        kernel = Kernel(costs=FREE)
        spooler = Spooler(kernel, printers=2, speed=1)
        files = [f"doc{i}" for i in range(10)]

        def job(name):
            yield spooler.print_file(name)

        def main():
            yield Par(*[lambda n=n: job(n) for n in files])

        kernel.run_process(main)
        printed = []
        for printer in spooler.printer_pool:
            printed.extend(printer.jobs)
        assert sorted(printed) == sorted(files)

    def test_zero_printers_rejected(self, kernel):
        with pytest.raises(ValueError):
            Spooler(kernel, printers=0)
