"""Tests for the alarm clock (Timeout guards inside a manager)."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import AlarmClock


class TestAlarmClock:
    def test_sleep_for(self):
        kernel = Kernel(costs=FREE)
        clock = AlarmClock(kernel)

        def sleeper():
            woke_at = yield clock.sleep_for(50)
            return (woke_at, kernel.clock.now)

        proc = kernel.spawn(sleeper)
        kernel.run()
        woke_at, now = proc.result
        assert woke_at >= 50
        assert now >= 50

    def test_sleep_until_absolute(self):
        kernel = Kernel(costs=FREE)
        clock = AlarmClock(kernel)

        def sleeper():
            yield clock.sleep_until(120)
            return kernel.clock.now

        proc = kernel.spawn(sleeper)
        kernel.run()
        assert proc.result >= 120

    def test_past_deadline_returns_immediately(self):
        kernel = Kernel(costs=FREE)
        clock = AlarmClock(kernel)

        def sleeper():
            yield Delay(40)
            yield clock.sleep_until(10)  # already past
            return kernel.clock.now

        proc = kernel.spawn(sleeper)
        kernel.run()
        assert proc.result == pytest.approx(40, abs=2)

    def test_wakeup_order_by_deadline(self):
        kernel = Kernel(costs=FREE)
        clock = AlarmClock(kernel)
        order = []

        def sleeper(tag, ticks):
            yield clock.sleep_for(ticks)
            order.append(tag)

        def main():
            yield Par(
                lambda: sleeper("late", 90),
                lambda: sleeper("early", 10),
                lambda: sleeper("middle", 50),
            )

        kernel.run_process(main)
        assert order == ["early", "middle", "late"]

    def test_no_bodies_run(self):
        kernel = Kernel(costs=FREE)
        clock = AlarmClock(kernel)

        def main():
            yield clock.sleep_for(5)

        kernel.run_process(main)
        assert kernel.stats.starts == 0
        assert kernel.stats.calls_combined == 1

    def test_many_simultaneous_sleepers(self):
        kernel = Kernel(costs=FREE)
        clock = AlarmClock(kernel, wait_max=32)
        wake_times = []

        def sleeper(ticks):
            yield clock.sleep_for(ticks)
            wake_times.append((ticks, kernel.clock.now))

        def main():
            yield Par(*[lambda t=t: sleeper(t) for t in range(5, 55, 5)])

        kernel.run_process(main)
        for requested, actual in wake_times:
            assert actual >= requested
        assert clock.sleeping == 0
