"""Tests for the §2.7.1 dictionary with request combining."""

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Dictionary

WORDS = {"cat": "feline", "dog": "canine", "ant": "insect"}


class TestLookup:
    def test_finds_meaning(self, kernel):
        d = Dictionary(kernel, entries=WORDS, search_work=0)

        def main():
            return (yield d.search("cat"))

        assert kernel.run_process(main) == "feline"

    def test_missing_word(self, kernel):
        d = Dictionary(kernel, entries=WORDS, search_work=0)

        def main():
            return (yield d.search("xyz"))

        assert "not found" in kernel.run_process(main)


class TestCombining:
    def test_concurrent_duplicates_one_search(self):
        kernel = Kernel(costs=FREE)
        d = Dictionary(kernel, entries=WORDS, search_max=8, search_work=100)

        def q():
            return (yield d.search("cat"))

        def main():
            return (yield Par(*[lambda: q() for _ in range(6)]))

        assert kernel.run_process(main) == ["feline"] * 6
        assert d.searches_executed == 1
        assert kernel.stats.calls_combined == 5

    def test_different_words_not_combined(self):
        kernel = Kernel(costs=FREE)
        d = Dictionary(kernel, entries=WORDS, search_max=8, search_work=50)

        def q(word):
            return (yield d.search(word))

        def main():
            return (yield Par(lambda: q("cat"), lambda: q("dog"), lambda: q("ant")))

        assert kernel.run_process(main) == ["feline", "canine", "insect"]
        assert d.searches_executed == 3
        assert kernel.stats.calls_combined == 0

    def test_sequential_requests_not_combined(self, kernel):
        # Combining only helps while a search is in flight.
        d = Dictionary(kernel, entries=WORDS, search_work=5)

        def main():
            first = yield d.search("cat")
            second = yield d.search("cat")
            return (first, second)

        assert kernel.run_process(main) == ("feline", "feline")
        assert d.searches_executed == 2

    def test_combining_disabled_runs_every_search(self):
        kernel = Kernel(costs=FREE)
        d = Dictionary(
            kernel, entries=WORDS, search_max=8, search_work=50, combining=False
        )

        def q():
            return (yield d.search("cat"))

        def main():
            return (yield Par(*[lambda: q() for _ in range(5)]))

        assert kernel.run_process(main) == ["feline"] * 5
        assert d.searches_executed == 5
        assert kernel.stats.calls_combined == 0

    def test_combining_reduces_total_work(self):
        def work(combining):
            kernel = Kernel(costs=FREE)
            d = Dictionary(
                kernel, entries=WORDS, search_max=16, search_work=50,
                combining=combining,
            )

            def q():
                return (yield d.search("cat"))

            def main():
                yield Par(*[lambda: q() for _ in range(10)])

            kernel.run_process(main)
            return kernel.stats.work_ticks

        assert work(True) < work(False)

    def test_mixed_duplicate_and_unique(self):
        kernel = Kernel(costs=FREE)
        d = Dictionary(kernel, entries=WORDS, search_max=8, search_work=50)

        def q(word):
            return (yield d.search(word))

        def main():
            return (
                yield Par(
                    lambda: q("cat"),
                    lambda: q("cat"),
                    lambda: q("dog"),
                    lambda: q("cat"),
                )
            )

        assert kernel.run_process(main) == ["feline", "feline", "canine", "feline"]
        assert d.searches_executed == 2  # one for cat, one for dog
