"""Tests for the §2.5.1 readers–writers database."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Database


def run_mixed(kernel, db, readers, writers, stagger=0):
    results = {}

    def reader(i):
        yield Delay(i * stagger)
        results[f"r{i}"] = yield db.read("key")

    def writer(i):
        yield Delay(i * stagger)
        yield db.write("key", f"v{i}")

    def main():
        yield Par(
            *[lambda i=i: reader(i) for i in range(readers)],
            *[lambda i=i: writer(i) for i in range(writers)],
        )

    kernel.run_process(main)
    return results


class TestExclusion:
    def test_no_violations_under_load(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=3, initial={"key": "v"})
        run_mixed(kernel, db, readers=10, writers=4, stagger=3)
        assert db.exclusion_violations == 0

    def test_read_max_bounds_concurrency(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=3, initial={"key": "v"}, read_work=50)
        run_mixed(kernel, db, readers=9, writers=0)
        assert db.max_concurrent_readers <= 3

    def test_readers_actually_overlap(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=4, initial={"key": "v"}, read_work=50)
        run_mixed(kernel, db, readers=4, writers=0)
        assert db.max_concurrent_readers >= 2
        # Four 50-tick reads through 4 concurrent slots: well under serial.
        assert kernel.clock.now < 4 * 50

    def test_writer_excludes_readers(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=4, initial={"key": "v"})
        run_mixed(kernel, db, readers=6, writers=3, stagger=1)
        assert db.exclusion_violations == 0


class TestData:
    def test_reads_see_initial_value(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, initial={"key": "original"}, write_work=0)
        results = run_mixed(kernel, db, readers=3, writers=0)
        assert all(v == "original" for v in results.values())

    def test_write_then_read_sequential(self, kernel):
        db = Database(kernel, initial={})

        def main():
            yield db.write("x", 42)
            return (yield db.read("x"))

        assert kernel.run_process(main) == 42

    def test_missing_key_reads_none(self, kernel):
        db = Database(kernel)

        def main():
            return (yield db.read("ghost"))

        assert kernel.run_process(main) is None


class TestStarvationFreedom:
    def test_writer_not_starved_by_reader_stream(self):
        # A continuous stream of readers must not starve the writer: the
        # paper's WriterLast disjunction guarantees a writer turn.
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=2, initial={"key": 0}, read_work=10, write_work=10)
        write_done = {}

        def reader(i):
            yield Delay(i * 2)  # steady arrival stream
            yield db.read("key")

        def writer():
            yield Delay(5)
            yield db.write("key", 1)
            write_done["at"] = kernel.clock.now

        def main():
            yield Par(
                *[lambda i=i: reader(i) for i in range(30)],
                lambda: writer(),
            )

        kernel.run_process(main)
        # The writer finished well before the full reader stream drained.
        assert write_done["at"] < kernel.clock.now

    def test_reader_not_starved_by_writer_stream(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=2, initial={"key": 0}, read_work=5, write_work=5)
        read_done = {}

        def writer(i):
            yield Delay(i)
            yield db.write("key", i)

        def reader():
            yield Delay(3)
            value = yield db.read("key")
            read_done["at"] = kernel.clock.now
            return value

        def main():
            yield Par(
                *[lambda i=i: writer(i) for i in range(20)],
                lambda: reader(),
            )

        kernel.run_process(main)
        assert read_done["at"] < kernel.clock.now

    def test_invalid_read_max_rejected(self, kernel):
        with pytest.raises(ValueError):
            Database(kernel, read_max=0)
