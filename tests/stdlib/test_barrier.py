"""Tests for the combining barrier."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Barrier


class TestBarrier:
    def test_parties_released_together(self):
        kernel = Kernel(costs=FREE)
        barrier = Barrier(kernel, parties=3)
        release_times = []

        def party(i):
            yield Delay(i * 10)  # staggered arrivals
            rank, generation = yield barrier.arrive()
            release_times.append(kernel.clock.now)
            return (rank, generation)

        def main():
            return (yield Par(*[lambda i=i: party(i) for i in range(3)]))

        results = kernel.run_process(main)
        assert len(set(release_times)) == 1  # all released at one instant
        assert sorted(r for r, _g in results) == [0, 1, 2]
        assert all(g == 0 for _r, g in results)

    def test_generations_increment(self):
        kernel = Kernel(costs=FREE)
        barrier = Barrier(kernel, parties=2)

        def party():
            results = []
            for _ in range(3):
                results.append((yield barrier.arrive()))
            return results

        def main():
            both = yield Par(lambda: party(), lambda: party())
            return both[0]

        rounds = kernel.run_process(main)
        assert [g for _r, g in rounds] == [0, 1, 2]

    def test_no_bodies_ever_run(self):
        kernel = Kernel(costs=FREE)
        barrier = Barrier(kernel, parties=2)

        def party():
            yield barrier.arrive()

        def main():
            yield Par(lambda: party(), lambda: party())

        kernel.run_process(main)
        assert kernel.stats.starts == 0  # pure combining
        assert kernel.stats.calls_combined == 2

    def test_excess_parties_wait_for_next_generation(self):
        kernel = Kernel(costs=FREE)
        barrier = Barrier(kernel, parties=2)

        def party(i):
            rank, generation = yield barrier.arrive()
            return generation

        def main():
            return (yield Par(*[lambda i=i: party(i) for i in range(4)]))

        generations = kernel.run_process(main)
        assert sorted(generations) == [0, 0, 1, 1]

    def test_single_party_barrier(self, kernel):
        barrier = Barrier(kernel, parties=1)

        def main():
            return (yield barrier.arrive())

        assert kernel.run_process(main) == (0, 0)

    def test_invalid_parties_rejected(self, kernel):
        with pytest.raises(ValueError):
            Barrier(kernel, parties=0)
