"""Tests for the resource allocator (acceptance conditions on params)."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import ResourceAllocator


class TestAllocation:
    def test_acquire_release_roundtrip(self, kernel):
        alloc = ResourceAllocator(kernel, total=10)

        def main():
            yield alloc.acquire(4)
            held = alloc.available
            yield alloc.release(4)
            return held

        assert kernel.run_process(main) == 6
        assert alloc.available == 10

    def test_never_oversubscribed(self):
        kernel = Kernel(costs=FREE)
        alloc = ResourceAllocator(kernel, total=5)

        def user(n):
            yield alloc.acquire(n)
            yield Delay(10)
            yield alloc.release(n)

        def main():
            yield Par(*[lambda n=n: user(n) for n in (3, 3, 3, 2)])

        kernel.run_process(main)
        assert all(avail >= 0 for _t, avail in alloc.history)
        assert alloc.available == 5

    def test_small_request_overtakes_large(self):
        # Acceptance condition reads the parameter: a 5-unit request that
        # cannot be satisfied does not block a 1-unit request behind it.
        kernel = Kernel(costs=FREE)
        alloc = ResourceAllocator(kernel, total=4)
        order = []

        def holder():
            yield alloc.acquire(3)  # leaves 1 unit
            yield Delay(100)
            yield alloc.release(3)

        def big():
            yield Delay(5)
            yield alloc.acquire(4)
            order.append("big")
            yield alloc.release(4)

        def small():
            yield Delay(10)
            yield alloc.acquire(1)
            order.append("small")
            yield alloc.release(1)

        def main():
            yield Par(lambda: holder(), lambda: big(), lambda: small())

        kernel.run_process(main)
        assert order == ["small", "big"]

    def test_best_fit_policy(self):
        kernel = Kernel(costs=FREE)
        alloc = ResourceAllocator(kernel, total=10, policy="best-fit")
        order = []

        def requester(n, delay):
            yield Delay(delay)
            yield alloc.acquire(n)
            order.append(n)

        def main():
            # A holder takes everything, then three requests queue up;
            # on release the largest satisfiable one is served first.
            yield alloc.acquire(10)
            yield Delay(20)  # let 2, 7, 5 queue
            yield alloc.release(10)
            yield Delay(50)

        kernel.spawn(requester, 2, 5, daemon=True)
        kernel.spawn(requester, 7, 6, daemon=True)
        kernel.spawn(requester, 5, 7, daemon=True)
        kernel.run_process(main)
        assert order[0] == 7  # best fit: largest satisfiable first

    def test_validation(self, kernel):
        with pytest.raises(ValueError):
            ResourceAllocator(kernel, total=-1)
        with pytest.raises(ValueError):
            ResourceAllocator(kernel, policy="magic")

    def test_no_bodies_run(self):
        kernel = Kernel(costs=FREE)
        alloc = ResourceAllocator(kernel, total=2)

        def main():
            yield alloc.acquire(1)
            yield alloc.release(1)

        kernel.run_process(main)
        assert kernel.stats.starts == 0
        assert kernel.stats.calls_combined == 2
