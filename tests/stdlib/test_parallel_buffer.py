"""Tests for the §2.8.2 parallel bounded buffer."""

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import BoundedBuffer, ParallelBuffer


def pump(kernel, buf, producers, consumers, per_producer):
    """Run P producers and C consumers; returns list of received batches."""
    total = producers * per_producer
    per_consumer, extra = divmod(total, consumers)
    assert extra == 0
    received = []

    def producer(base):
        for i in range(per_producer):
            yield buf.deposit((base, i))

    def consumer():
        for _ in range(per_consumer):
            received.append((yield buf.remove()))

    def main():
        yield Par(
            *[lambda b=b: producer(b) for b in range(producers)],
            *[lambda: consumer() for _ in range(consumers)],
        )

    kernel.run_process(main)
    return received


class TestTransfer:
    def test_all_messages_delivered_once(self):
        kernel = Kernel(costs=FREE)
        buf = ParallelBuffer(kernel, size=4, producer_max=3, consumer_max=3, copy_work=5)
        received = pump(kernel, buf, producers=3, consumers=3, per_producer=4)
        expected = [(b, i) for b in range(3) for i in range(4)]
        assert sorted(received) == sorted(expected)

    def test_per_producer_order_preserved(self):
        kernel = Kernel(costs=FREE)
        buf = ParallelBuffer(kernel, size=8, copy_work=0)
        received = pump(kernel, buf, producers=2, consumers=1, per_producer=5)
        for base in range(2):
            mine = [i for (b, i) in received if b == base]
            assert mine == sorted(mine)

    def test_capacity_never_exceeded(self):
        kernel = Kernel(costs=FREE)
        buf = ParallelBuffer(kernel, size=2, producer_max=4, consumer_max=4, copy_work=3)
        received = pump(kernel, buf, producers=4, consumers=4, per_producer=3)
        assert len(received) == 12

    def test_invalid_size_rejected(self, kernel):
        with pytest.raises(ValueError):
            ParallelBuffer(kernel, size=0)


class TestParallelism:
    def test_copies_overlap(self):
        # The whole point of §2.8.2: long-message copying runs in parallel
        # on disjoint slots.
        kernel = Kernel(costs=FREE)
        buf = ParallelBuffer(
            kernel, size=8, producer_max=4, consumer_max=4, copy_work=100
        )
        pump(kernel, buf, producers=4, consumers=4, per_producer=1)
        # 4 deposits + 4 removes of 100 ticks each: serial would be 800.
        assert kernel.clock.now < 400

    def test_beats_serial_buffer_for_long_messages(self):
        def elapsed(buf_factory):
            kernel = Kernel(costs=FREE)
            buf = buf_factory(kernel)
            received = []

            def producer(base):
                for i in range(4):
                    yield buf.deposit((base, i))

            def consumer():
                for _ in range(4):
                    received.append((yield buf.remove()))

            def main():
                yield Par(
                    *[lambda b=b: producer(b) for b in range(3)],
                    *[lambda: consumer() for _ in range(3)],
                )

            kernel.run_process(main)
            return kernel.clock.now

        serial = elapsed(lambda k: BoundedBuffer(k, size=6, work=50))
        parallel = elapsed(
            lambda k: ParallelBuffer(
                k, size=6, producer_max=3, consumer_max=3, copy_work=50
            )
        )
        assert parallel < serial

    def test_callable_copy_work(self):
        kernel = Kernel(costs=FREE)
        buf = ParallelBuffer(
            kernel, size=4, copy_work=lambda msg: len(str(msg))
        )

        def main():
            yield buf.deposit("x" * 30)
            return (yield buf.remove())

        assert kernel.run_process(main) == "x" * 30
        assert kernel.stats.work_ticks >= 60  # deposit + remove copies
