"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Any, Callable

from repro.kernel import Kernel
from repro.kernel.process import Process


def drive(kernel: Kernel, *fns: Callable[[], Any], **spawn_kwargs: Any) -> list[Process]:
    """Spawn every fn, run the kernel to quiescence, return the processes."""
    procs = [kernel.spawn(fn, **spawn_kwargs) for fn in fns]
    kernel.run()
    return procs


def results_of(procs: list[Process]) -> list[Any]:
    return [p.result for p in procs]


def run1(fn: Callable[[], Any], kernel: Kernel | None = None, **kernel_kwargs: Any) -> Any:
    """Run one process on a fresh kernel and return its result."""
    k = kernel or Kernel(**kernel_kwargs)
    return k.run_process(fn)
