"""Retry budgets and circuit breakers: the aggregate-retry guards."""

import pytest

from repro.errors import AdmissionError, DeadlineExceeded, RemoteCallError
from repro.faults import (
    CircuitBreaker,
    ExponentialBackoff,
    FaultPlan,
    FixedBackoff,
    RetryBudget,
    install,
    retry,
    shared_budget,
)
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import Dictionary


def scenario(plan, **dict_kwargs):
    kernel = Kernel(costs=FREE, seed=0, trace=True)
    net = ring(kernel, 4)
    dict_kwargs.setdefault("entries", {"a": 42})
    dict_kwargs.setdefault("search_work", 0)
    d = net.node("n1").place(Dictionary(kernel, name="d", **dict_kwargs))
    runtime = install(kernel, net, plan)
    return kernel, net, d, runtime


class TestRetryBudget:
    def test_token_arithmetic(self):
        budget = RetryBudget(capacity=2.0, fill_ratio=0.5)
        assert budget.tokens == 2.0  # starts full
        assert budget.try_withdraw() and budget.try_withdraw()
        assert not budget.try_withdraw()  # dry
        assert budget.denials == 1
        budget.deposit()  # +0.5 — still below one whole token
        assert not budget.try_withdraw()
        budget.deposit()
        assert budget.try_withdraw()
        assert (budget.deposits, budget.withdrawals) == (2, 3)

    def test_deposits_clamp_at_capacity(self):
        budget = RetryBudget(capacity=1.0, fill_ratio=1.0)
        for _ in range(5):
            budget.deposit()
        assert budget.tokens == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            RetryBudget(capacity=0.5)
        with pytest.raises(ValueError, match="fill_ratio"):
            RetryBudget(fill_ratio=0.0)

    def test_shared_budget_pools_per_caller_object_pair(self):
        kernel, net, d, _ = scenario(FaultPlan())
        a = shared_budget(kernel, "clients", d)
        b = shared_budget(kernel, "clients", d)
        c = shared_budget(kernel, "batch", d)
        assert a is b  # same (caller, object) → same bucket
        assert a is not c
        a.try_withdraw()
        assert b.withdrawals == 1

    def test_dry_budget_turns_retry_into_admission_error(self):
        # Node never restarts; budget allows exactly one retry, then the
        # second re-attempt is refused up front with reason=retry-budget
        # (NOT retry-exhausted: the policy had attempts left).
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)
        )
        budget = RetryBudget(capacity=1.0, fill_ratio=0.1)
        outcome = []

        def client():
            yield Delay(5)
            try:
                yield from retry(
                    lambda: d.search("a", timeout=50),
                    FixedBackoff(delay=20, max_attempts=10),
                    budget=budget,
                )
            except AdmissionError as exc:
                outcome.append(exc)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(outcome) == 1
        assert outcome[0].reason == "retry-budget"
        assert budget.withdrawals == 1 and budget.denials == 1
        assert kernel.stats.custom["retries"] == 1
        assert kernel.metrics.value("retry.budget_denied") == 1
        assert "retry_exhausted" not in kernel.stats.custom

    def test_healthy_traffic_never_touches_the_budget(self):
        kernel, net, d, _ = scenario(FaultPlan())
        budget = RetryBudget(capacity=5.0, fill_ratio=0.1)

        def client():
            for _ in range(3):
                value = yield from retry(
                    lambda: d.search("a", timeout=50),
                    FixedBackoff(delay=20, max_attempts=3),
                    budget=budget,
                )
                assert value == 42

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert budget.deposits == 3  # one per logical request
        assert budget.withdrawals == 0 and budget.denials == 0
        assert budget.tokens == 5.0  # clamped at capacity

    def test_unbounded_policy_drains_budget_not_forever(self):
        # max_attempts=None would loop forever against a dead node; the
        # budget is the only bound, and it terminates the run.
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)
        )
        budget = RetryBudget(capacity=3.0, fill_ratio=0.1)
        outcome = []

        def client():
            yield Delay(5)
            try:
                yield from retry(
                    lambda: d.search("a", timeout=50),
                    FixedBackoff(delay=20, max_attempts=None),
                    budget=budget,
                )
            except AdmissionError as exc:
                outcome.append(exc.reason)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert outcome == ["retry-budget"]
        assert budget.withdrawals == 3  # capacity spent, then refusal

    def test_unbounded_policies_describe_and_yield_forever(self):
        import itertools
        import random

        fixed = FixedBackoff(delay=7, max_attempts=None)
        expo = ExponentialBackoff(base=2, max_delay=50, max_attempts=None)
        assert "inf" in fixed.describe() and "inf" in expo.describe()
        head = list(itertools.islice(fixed.delays(random.Random(0)), 100))
        assert head == [7] * 100
        capped = list(itertools.islice(expo.delays(random.Random(0)), 20))
        assert capped[-1] == 50  # max_delay caps the unbounded tail


class TestCircuitBreaker:
    def breaker(self, **kwargs):
        kernel = Kernel(costs=FREE, seed=0, trace=True)
        kwargs.setdefault("window", 100)
        kwargs.setdefault("min_calls", 4)
        kwargs.setdefault("failure_threshold", 0.5)
        kwargs.setdefault("cooldown", 50)
        return kernel, CircuitBreaker(kernel, **kwargs)

    def test_opens_at_failure_threshold(self):
        kernel, breaker = self.breaker()
        for ok in (True, False, True, False):  # 2/4 failures = threshold
            assert breaker.allow()
            breaker.record(ok)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.transitions == [(0, "closed", "open")]
        assert kernel.metrics.value("breaker.transitions") == 1

    def test_needs_min_calls_before_opening(self):
        kernel, breaker = self.breaker(min_calls=10)
        for _ in range(9):
            breaker.record(False)  # 100% failures but too few samples
        assert breaker.state == CircuitBreaker.CLOSED

    def test_window_forgets_old_failures(self):
        kernel, breaker = self.breaker(window=30, min_calls=2)
        breaker.record(False)
        kernel.clock.advance_to(40)  # the failure ages out of the window
        breaker.record(False)
        assert breaker.state == CircuitBreaker.CLOSED  # only 1 in window

    def test_half_open_probe_is_singular(self):
        kernel, breaker = self.breaker(min_calls=2, cooldown=50)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == CircuitBreaker.OPEN
        kernel.clock.advance_to(60)  # past the cooldown
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # concurrent attempts refused
        breaker.record(True)  # probe succeeds
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert [(f, t) for _, f, t in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_failed_probe_reopens_for_full_cooldown(self):
        kernel, breaker = self.breaker(min_calls=2, cooldown=50)
        breaker.record(False)
        breaker.record(False)
        kernel.clock.advance_to(60)
        assert breaker.allow()
        breaker.record(False)  # probe fails
        assert breaker.state == CircuitBreaker.OPEN
        kernel.clock.advance_to(100)  # 40 < cooldown since reopen at 60
        assert not breaker.allow()
        kernel.clock.advance_to(110)
        assert breaker.allow()  # next probe

    def test_probe_success_clears_the_window(self):
        # After recovery, stale pre-outage failures must not count against
        # fresh post-recovery traffic: with the window cleared, a healthy
        # sample leaves the breaker closed (without the clear, 2 old
        # failures / 3 calls = 0.66 would instantly re-open it).
        kernel, breaker = self.breaker(min_calls=2, cooldown=50, window=10**6)
        breaker.record(False)
        breaker.record(False)
        kernel.clock.advance_to(60)
        assert breaker.allow()
        breaker.record(True)  # probe succeeds → closed, window cleared
        breaker.record(True)
        assert breaker.state == CircuitBreaker.CLOSED
        assert len(breaker._events) == 1  # only the post-recovery sample

    def test_open_breaker_refuses_before_issuing_the_call(self):
        # Trip the breaker via real failures, then observe that further
        # retry() invocations raise AdmissionError(reason=breaker-open)
        # without sending anything (no new call events in the trace).
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)
        )
        breaker = CircuitBreaker(
            kernel, window=10**6, min_calls=2, failure_threshold=0.5, cooldown=10**6
        )
        reasons = []

        def client():
            yield Delay(5)
            for _ in range(3):
                try:
                    yield from retry(
                        lambda: d.search("a", timeout=50),
                        FixedBackoff(delay=20, max_attempts=2),
                        breaker=breaker,
                    )
                except RemoteCallError:
                    reasons.append("remote")
                except AdmissionError as exc:
                    reasons.append(exc.reason)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert reasons == ["remote", "breaker-open", "breaker-open"]
        assert breaker.state == CircuitBreaker.OPEN
        assert kernel.metrics.value("breaker.refused") == 2

    def test_transition_log_is_replay_identical(self):
        # Two same-seed runs through a crash/heal cycle: the breaker's
        # (tick, from, to) log is byte-identical.
        def run():
            kernel, net, d, _ = scenario(
                FaultPlan(detection_delay=10).crash_node("n1", at=20, restart_at=200)
            )
            kernel.post(210, d.restart)
            breaker = CircuitBreaker(
                kernel, window=500, min_calls=2, failure_threshold=0.5, cooldown=100
            )

            def client():
                yield Delay(30)
                for _ in range(8):
                    try:
                        yield from retry(
                            lambda: d.search("a", timeout=40),
                            FixedBackoff(delay=30, max_attempts=2),
                            breaker=breaker,
                        )
                    except (RemoteCallError, AdmissionError):
                        yield Delay(60)

            net.node("n0").spawn(client, name="client")
            kernel.run()
            return breaker.transitions

        first, second = run(), run()
        assert first == second
        states = [(f, t) for _, f, t in first]
        assert ("closed", "open") in states  # tripped during the outage
        assert ("half-open", "closed") in states  # recovered after heal

    def test_validation(self):
        kernel = Kernel(costs=FREE)
        with pytest.raises(ValueError, match="window"):
            CircuitBreaker(kernel, window=0)
        with pytest.raises(ValueError, match="min_calls"):
            CircuitBreaker(kernel, min_calls=0)
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(kernel, failure_threshold=1.5)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(kernel, cooldown=0)


class TestDeadlineTerminatesRetry:
    def test_deadline_exceeded_is_not_retried(self):
        # Per-hop timeouts are retryable; the end-to-end deadline is not.
        # A deadline shorter than the crash window expires the call, and
        # retry() re-raises immediately — no backoff, no second attempt.
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)
        )
        outcome = []

        def client():
            yield Delay(5)
            try:
                yield from retry(
                    lambda: d.search("a", timeout=200, deadline=8),
                    FixedBackoff(delay=20, max_attempts=5),
                )
            except DeadlineExceeded as exc:
                outcome.append((exc.deadline_at, kernel.clock.now))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert outcome == [(13, 13)]  # issued at 5 + deadline 8
        assert "retries" not in kernel.stats.custom

    def test_deadline_failure_still_feeds_the_breaker(self):
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)
        )
        breaker = CircuitBreaker(
            kernel, window=10**6, min_calls=2, failure_threshold=0.5, cooldown=10**6
        )
        reasons = []

        def client():
            yield Delay(5)
            for _ in range(3):
                try:
                    yield from retry(
                        lambda: d.search("a", timeout=200, deadline=8),
                        FixedBackoff(delay=20, max_attempts=5),
                        breaker=breaker,
                    )
                except DeadlineExceeded:
                    reasons.append("deadline")
                except AdmissionError as exc:
                    reasons.append(exc.reason)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert reasons == ["deadline", "deadline", "breaker-open"]
