"""Recovery layer: retry combinators and the Supervisor object."""

import pytest

from repro.errors import RemoteCallError
from repro.faults import ExponentialBackoff, FaultPlan, FixedBackoff, install, retry
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import Dictionary, Supervisor


def scenario(plan, **dict_kwargs):
    kernel = Kernel(costs=FREE, seed=0, trace=True)
    net = ring(kernel, 4)
    dict_kwargs.setdefault("entries", {"a": 42})
    dict_kwargs.setdefault("search_work", 0)
    d = net.node("n1").place(Dictionary(kernel, name="d", **dict_kwargs))
    runtime = install(kernel, net, plan)
    return kernel, net, d, runtime


class TestRetry:
    def test_fixed_backoff_outlasts_crash_window(self):
        # Node down for [20, 200); unsupervised, so the object needs an
        # explicit restart, after which a persistent retrier succeeds.
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=20, restart_at=200)
        )
        kernel.post(210, d.restart)
        results = []

        def client():
            yield Delay(30)  # issue while the node is down
            value = yield from retry(
                lambda: d.search("a", timeout=50),
                FixedBackoff(delay=60, max_attempts=6),
            )
            results.append((value, kernel.clock.now))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(results) == 1
        value, when = results[0]
        assert value == 42
        assert when > 200  # could only succeed after the restart
        assert kernel.stats.custom["retries"] >= 1
        assert kernel.stats.custom["retried_successes"] == 1
        assert kernel.trace.count("retry") == kernel.stats.custom["retries"]

    def test_exponential_backoff_beats_lossy_link(self):
        kernel, net, d, _ = scenario(
            FaultPlan(seed=3).drop_messages(0.5, dst="n1"),
            search_work=20,
        )

        def client():
            return (
                yield from retry(
                    lambda: d.search("a", timeout=80),
                    ExponentialBackoff(base=20, max_attempts=8, jitter=10),
                    seed=7,
                )
            )

        proc = net.node("n0").spawn(client, name="client")
        kernel.run()
        assert proc.result == 42

    def test_exhaustion_raises_last_error(self):
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)  # never restarts
        )
        outcome = []

        def client():
            yield Delay(5)
            try:
                yield from retry(
                    lambda: d.search("a", timeout=50),
                    FixedBackoff(delay=20, max_attempts=3),
                )
            except RemoteCallError as exc:
                outcome.append(exc)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(outcome) == 1
        assert kernel.stats.custom["retry_exhausted"] == 1
        assert kernel.stats.custom["retries"] == 2  # 3 attempts = 2 retries

    def test_non_remote_errors_propagate_immediately(self):
        from repro.core import AlpsObject, entry

        class Flaky(AlpsObject):
            @entry(returns=1)
            def boom(self):
                raise KeyError("nope")

        kernel, net, d, _ = scenario(FaultPlan())
        flaky = net.node("n2").place(Flaky(kernel, name="flaky"))
        outcome = []

        def client():
            try:
                yield from retry(
                    lambda: flaky.boom(timeout=50),
                    FixedBackoff(delay=20, max_attempts=5),
                )
            except KeyError as exc:
                outcome.append(exc)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(outcome) == 1
        assert "retries" not in kernel.stats.custom

    def test_max_attempts_one_means_no_retry(self):
        # Degenerate policy: exactly the bare call — first failure is
        # final, no backoff sleep, no retry accounting.
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=0)
        )
        outcome = []

        def client():
            yield Delay(5)
            try:
                yield from retry(
                    lambda: d.search("a", timeout=50),
                    FixedBackoff(delay=20, max_attempts=1),
                )
            except RemoteCallError:
                outcome.append(kernel.clock.now)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert outcome == [15]  # issue at 5 + detection_delay 10, no backoff
        assert "retries" not in kernel.stats.custom
        assert kernel.stats.custom["retry_exhausted"] == 1

    def test_jittered_schedule_is_identical_across_runs(self):
        # Same retry seed, two full runs: every retry lands on the same
        # tick, so the whole recovery timeline replays exactly.
        def run():
            kernel, net, d, _ = scenario(
                FaultPlan(detection_delay=10).crash_node("n1", at=20, restart_at=300)
            )
            kernel.post(310, d.restart)
            done = []

            def client():
                yield Delay(30)
                value = yield from retry(
                    lambda: d.search("a", timeout=40),
                    ExponentialBackoff(base=25, max_attempts=8, jitter=15),
                    seed=9,
                )
                done.append((value, kernel.clock.now))

            net.node("n0").spawn(client, name="client")
            kernel.run()
            retries = [e.time for e in kernel.trace if e.kind == "retry"]
            return done, retries

        first, second = run(), run()
        assert first == second
        assert first[0][0][0] == 42
        assert len(first[1]) >= 2  # the jittered schedule was exercised

    def test_backoff_schedule_is_seeded(self):
        policy = ExponentialBackoff(base=10, max_attempts=6, jitter=20)
        import random

        a = list(policy.delays(random.Random(4)))
        b = list(policy.delays(random.Random(4)))
        c = list(policy.delays(random.Random(5)))
        assert a == b
        assert a != c
        bases = [10, 20, 40, 80, 160]
        assert all(base <= d <= base + 20 for base, d in zip(bases, a))


class TestSupervisor:
    def failover(self, reaction_delay=0, **plan_kwargs):
        kernel, net, d, runtime = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=20, restart_at=200),
            search_work=30,
        )
        sup = net.node("n3").place(
            Supervisor(kernel, name="sup", faults=runtime, reaction_delay=reaction_delay)
        )
        sup.watch(d)
        return kernel, net, d, sup

    def test_interrupted_caller_gets_result_not_error(self):
        kernel, net, d, sup = self.failover()
        results = []

        def client():
            yield Delay(10)  # call is mid-flight when n1 dies at t=20
            results.append(((yield d.search("a")), kernel.clock.now))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(results) == 1
        value, when = results[0]
        assert value == 42
        assert when > 200  # completed only after the restart
        assert sup.restarts == [(200, "d", 1)]
        assert kernel.stats.custom["supervisor_restarts"] == 1
        assert kernel.stats.custom["requeued_calls"] == 1

    def test_unsupervised_object_fails_its_callers(self):
        kernel, net, d, runtime = scenario(
            FaultPlan(detection_delay=10).crash_node("n1", at=20, restart_at=200),
            search_work=30,
        )
        outcome = []

        def client():
            yield Delay(10)
            try:
                yield d.search("a")
            except RemoteCallError:
                outcome.append(kernel.clock.now)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert outcome == [30]  # crash at 20 + detection_delay 10

    def test_reaction_delay_postpones_recovery(self):
        kernel, net, d, sup = self.failover(reaction_delay=40)
        results = []

        def client():
            yield Delay(10)
            results.append(((yield d.search("a")), kernel.clock.now))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert results and results[0][0] == 42
        assert sup.restarts[0][0] == 240  # restart_at 200 + reaction 40

    def test_shared_data_survives_restart(self):
        # Shared data (the entries mapping) models stable storage: a word
        # added before the crash is still searchable after the restart.
        kernel, net, d, sup = self.failover()
        d.entries["b"] = 7
        results = []

        def reader():
            yield Delay(250)  # well past the recovery
            results.append((yield d.search("b")))

        net.node("n2").spawn(reader, name="reader")
        kernel.run()
        assert results == [7]

    def test_report_entry_exposes_restarts(self):
        kernel, net, d, sup = self.failover()
        reports = []

        def client():
            yield Delay(10)
            yield d.search("a")
            reports.append((yield sup.report()))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert reports == [[(200, "d", 1)]]

    def test_multiple_interrupted_callers_all_recover(self):
        kernel, net, d, sup = self.failover()
        results = []

        def client(key, delay):
            yield Delay(delay)
            results.append((yield d.search(key)))

        d.entries["b"] = 7
        net.node("n0").spawn(client, "a", 5, name="c0")
        net.node("n2").spawn(client, "b", 10, name="c1")
        kernel.run()
        assert sorted(results, key=str) == [42, 7]
        assert sup.restarts[0][2] == 2  # both calls re-queued

    def test_supervisor_requires_fault_runtime(self):
        kernel = Kernel(costs=FREE)
        with pytest.raises(TypeError):
            Supervisor(kernel, name="sup")

    def test_watch_rejects_unplaced_object(self):
        from repro.errors import ObjectModelError
        from repro.stdlib import Dictionary

        kernel, net, d, runtime = scenario(FaultPlan())
        sup = net.node("n3").place(Supervisor(kernel, name="sup", faults=runtime))
        stray = Dictionary(kernel, name="stray", entries={})
        with pytest.raises(ObjectModelError, match="place it on a node"):
            sup.watch(stray)

    def test_watch_rejects_double_watch_and_name_clash(self):
        from repro.errors import ObjectModelError
        from repro.stdlib import Dictionary

        kernel, net, d, runtime = scenario(FaultPlan())
        sup = net.node("n3").place(Supervisor(kernel, name="sup", faults=runtime))
        sup.watch(d)
        with pytest.raises(ObjectModelError, match="already watch"):
            sup.watch(d)
        impostor = net.node("n2").place(Dictionary(kernel, name="d", entries={}))
        with pytest.raises(ObjectModelError, match="name"):
            sup.watch(impostor)
