"""Detection layer: crash detection, timed calls, heartbeats."""

import pytest

from repro.errors import CallError, RemoteCallError
from repro.faults import Beacon, FaultPlan, Heartbeat, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import Dictionary


def scenario(plan, seed=0, trace=True, **dict_kwargs):
    kernel = Kernel(costs=FREE, seed=seed, trace=trace)
    net = ring(kernel, 4)
    dict_kwargs.setdefault("entries", {"a": 1})
    dict_kwargs.setdefault("search_work", 0)
    d = net.node("n1").place(Dictionary(kernel, name="d", **dict_kwargs))
    runtime = install(kernel, net, plan)
    return kernel, net, d, runtime


class TestCrashDetection:
    def test_call_to_crashed_node_fails_not_deadlocks(self):
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=30).crash_node("n1", at=0)
        )
        failures = []

        def client():
            yield Delay(10)  # issue strictly after the crash
            try:
                yield d.search("a")
            except RemoteCallError as exc:
                failures.append((kernel.clock.now, exc))

        net.node("n0").spawn(client, name="client")
        kernel.run()  # must reach quiescence without DeadlockError
        assert len(failures) == 1
        when, exc = failures[0]
        assert when == 40  # issue at 10 + detection_delay 30
        assert exc.obj == "d" and exc.entry == "search"

    def test_call_interrupted_by_crash_fails(self):
        kernel, net, d, _ = scenario(
            FaultPlan(detection_delay=30).crash_node("n1", at=50),
            search_work=200,  # body still running when the node dies
        )
        failures = []

        def client():
            try:
                yield d.search("a")
            except RemoteCallError as exc:
                failures.append((kernel.clock.now, str(exc)))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(failures) == 1
        assert failures[0][0] == 80  # crash at 50 + detection_delay
        assert "interrupted" in failures[0][1]

    def test_detection_delay_zero_fails_immediately(self):
        kernel, net, d, _ = scenario(FaultPlan(detection_delay=0).crash_node("n1", at=0))
        failures = []

        def client():
            yield Delay(5)
            try:
                yield d.search("a")
            except RemoteCallError:
                failures.append(kernel.clock.now)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert failures == [5]


class TestTimedCalls:
    def test_timeout_on_lost_request(self):
        kernel, net, d, _ = scenario(FaultPlan(seed=2).drop_messages(1.0, dst="n1"))
        failures = []

        def client():
            try:
                yield d.search("a", timeout=40)
            except RemoteCallError as exc:
                failures.append((kernel.clock.now, str(exc)))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert failures and failures[0][0] == 40
        assert "timed out" in failures[0][1]
        assert kernel.trace.count("call_timeout") == 1

    def test_timeout_on_lost_response(self):
        # Only the response leg (n1 -> n0) is lossy: the body executes,
        # but its results never arrive.
        kernel, net, d, _ = scenario(FaultPlan(seed=2).drop_messages(1.0, src="n1"))
        failures = []

        def client():
            try:
                yield d.search("a", timeout=60)
            except RemoteCallError:
                failures.append(kernel.clock.now)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert failures == [60]
        assert d.searches_executed == 1  # the work happened
        assert kernel.stats.custom["dropped_responses"] == 1

    def test_generous_timeout_does_not_fire(self):
        kernel, net, d, _ = scenario(FaultPlan())
        results = []

        def client():
            results.append((yield d.search("a", timeout=500)))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert results == [1]
        assert kernel.trace.count("call_timeout") == 0
        # The cancelled expiry timer must not stretch the simulation.
        assert kernel.clock.now < 500

    def test_late_response_after_timeout_is_discarded(self):
        # Slow body + short timeout: the caller gets the error, then the
        # response arrives and must be dropped, not double-delivered.
        kernel, net, d, _ = scenario(FaultPlan(), search_work=100)
        events = []

        def client():
            try:
                yield d.search("a", timeout=30)
            except RemoteCallError:
                events.append("timeout")
            yield Delay(200)  # outlive the late response
            events.append("alive")

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert events == ["timeout", "alive"]

    def test_negative_timeout_rejected(self):
        kernel, net, d, _ = scenario(FaultPlan())
        errors = []

        def client():
            try:
                yield d.search("a", timeout=-1)
            except CallError as exc:
                errors.append(exc)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert len(errors) == 1

    def test_timed_calls_work_without_faults_installed(self):
        kernel = Kernel(costs=FREE)
        net = ring(kernel, 4)
        d = net.node("n1").place(
            Dictionary(kernel, name="d", entries={"a": 1}, search_work=100)
        )
        failures = []

        def client():
            try:
                yield d.search("a", timeout=20)
            except RemoteCallError:
                failures.append(kernel.clock.now)

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert failures == [20]


class TestHeartbeat:
    def test_detects_down_and_recovered(self):
        kernel = Kernel(costs=FREE, trace=True)
        net = ring(kernel, 4)
        beacon = net.node("n1").place(Beacon(kernel, name="beacon"))
        install(
            kernel, net,
            FaultPlan(detection_delay=10).crash_node("n1", at=100, restart_at=200),
        )
        # The node restart does not resurrect the object by itself.
        kernel.post(220, beacon.restart)

        hb = Heartbeat(kernel, interval=50, timeout=30, rounds=8)
        hb.watch("n1", beacon)
        hb.start()
        kernel.run()

        verdicts = [(name, verdict) for _, name, verdict in hb.transitions]
        assert verdicts == [("n1", "up"), ("n1", "down"), ("n1", "up")]
        assert hb.is_up("n1")

    def test_all_up_steady_state(self):
        kernel = Kernel(costs=FREE)
        net = ring(kernel, 3)
        b1 = net.node("n1").place(Beacon(kernel, name="b1"))
        b2 = net.node("n2").place(Beacon(kernel, name="b2"))
        install(kernel, net, FaultPlan())
        hb = Heartbeat(kernel, interval=20, timeout=15, rounds=3)
        hb.watch("n1", b1)
        hb.watch("n2", b2)
        hb.start()
        kernel.run()
        assert hb.status == {"n1": "up", "n2": "up"}
        assert len(hb.transitions) == 2  # unknown -> up, once each

    def test_probes_ping_concurrently(self):
        # Three dead targets, timeout 30: concurrent probes all record
        # "down" at tick 30.  A sequential monitor would serialize the
        # timeouts (30, 60, 90) and stretch every later verdict.
        kernel = Kernel(costs=FREE)
        net = ring(kernel, 4)
        beacons = {
            n: net.node(n).place(Beacon(kernel, name=f"b_{n}"))
            for n in ("n1", "n2", "n3")
        }
        install(
            kernel, net,
            FaultPlan(detection_delay=500)  # kernel detector never helps
            .crash_node("n1", at=0).crash_node("n2", at=0).crash_node("n3", at=0),
        )
        hb = Heartbeat(kernel, interval=20, timeout=30, rounds=1)
        for name, beacon in beacons.items():
            hb.watch(name, beacon)
        hb.start()
        kernel.run()
        assert [(t, v) for t, _, v in hb.transitions] == [(30, "down")] * 3

    def test_double_start_rejected(self):
        from repro.errors import KernelError

        kernel = Kernel(costs=FREE)
        net = ring(kernel, 3)
        install(kernel, net, FaultPlan())
        hb = Heartbeat(kernel, rounds=2)
        hb.watch("n1", net.node("n1").place(Beacon(kernel, name="b1")))
        hb.start()
        with pytest.raises(KernelError):
            hb.start()

    def test_stop_kills_unbounded_monitor(self):
        kernel = Kernel(costs=FREE)
        net = ring(kernel, 3)
        install(kernel, net, FaultPlan())
        hb = Heartbeat(kernel, interval=25, timeout=15, rounds=None)
        hb.watch("n1", net.node("n1").place(Beacon(kernel, name="b1")))
        hb.start()
        kernel.post(200, hb.stop)
        kernel.run(until=1000)
        # The daemon is gone: virtual time stops advancing with it.
        assert hb.process is None
        assert hb.is_up("n1")
        rounds_run = kernel.stats.custom["heartbeat_up"]
        assert rounds_run == 1  # one unknown->up transition, then steady

    def test_stop_returns_whether_monitor_was_running(self):
        kernel = Kernel(costs=FREE)
        hb = Heartbeat(kernel, rounds=1)
        assert hb.stop() is False  # never started
        hb.watch("x", Beacon(kernel, name="b"))
        hb.start()
        assert hb.stop() is True
        assert hb.stop() is False  # idempotent
        hb.start()  # restartable after a stop
