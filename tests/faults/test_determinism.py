"""Two runs, same seeds => tick-identical traces.

This is the contract that makes fault injection usable for debugging:
every crash, drop, jitter draw, retry and recovery lands on the same
virtual tick every time, so a failing schedule can be replayed exactly.
"""

from repro.errors import RemoteCallError
from repro.faults import ExponentialBackoff, FaultPlan, install, retry
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import Dictionary, Supervisor


def snapshot(kernel):
    """A trace as comparable tuples (drops Event object identity)."""
    return [
        (e.time, e.kind, e.process, tuple(sorted(e.detail.items())))
        for e in kernel.trace
    ]


def full_scenario(fault_seed=11, kernel_seed=0):
    """Crash + partition + lossy/jittery links + supervisor + retriers."""
    kernel = Kernel(costs=FREE, seed=kernel_seed, trace=True)
    net = ring(kernel, 4)
    d = net.node("n1").place(
        Dictionary(kernel, name="d", entries={"a": 1, "b": 2}, search_work=10)
    )
    runtime = install(
        kernel,
        net,
        FaultPlan(seed=fault_seed, detection_delay=20)
        .crash_node("n1", at=150, restart_at=400)
        .partition(["n0", "n1"], ["n2", "n3"], at=700, heal_at=900)
        .drop_messages(0.3, dst="n1")
        .delay_jitter(5, dst="n1"),
    )
    sup = net.node("n3").place(Supervisor(kernel, name="sup", faults=runtime))
    sup.watch(d)

    def client(node, key, phase):
        def body():
            yield Delay(phase)
            for _ in range(6):
                try:
                    value = yield from retry(
                        lambda: d.search(key, timeout=60),
                        ExponentialBackoff(base=15, max_attempts=6, jitter=8),
                        seed=phase,
                    )
                    assert value in (1, 2)
                except RemoteCallError:
                    pass
                yield Delay(40)

        net.node(node).spawn(body, name=f"client_{node}")

    client("n0", "a", 0)
    client("n2", "b", 7)
    kernel.run(until=1200)
    return kernel


def test_same_seeds_tick_identical_traces():
    first = full_scenario()
    second = full_scenario()
    a, b = snapshot(first), snapshot(second)
    assert a == b
    # The scenario genuinely exercised every fault class.
    kinds = {e.kind for e in first.trace}
    assert {"crash", "restart", "drop", "partition", "retry"} <= kinds
    assert first.stats.custom == second.stats.custom


def test_different_fault_seed_diverges():
    # 0.3 loss over dozens of messages: a different RNG stream is
    # (deterministically) certain to pick different victims.
    a = snapshot(full_scenario(fault_seed=11))
    b = snapshot(full_scenario(fault_seed=12))
    assert a != b


def test_fault_free_plan_matches_plain_run_outcomes():
    """Installing an empty plan must not perturb application results."""

    def run(with_faults):
        kernel = Kernel(costs=FREE, seed=0, trace=True)
        net = ring(kernel, 4)
        d = net.node("n1").place(
            Dictionary(kernel, name="d", entries={"a": 1}, search_work=10)
        )
        if with_faults:
            install(kernel, net, FaultPlan())
        results = []

        def client():
            for _ in range(3):
                results.append(((yield d.search("a")), kernel.clock.now))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        return results

    assert run(with_faults=True) == run(with_faults=False)


def test_message_fate_draws_are_order_stable():
    """Per-send RNG draws depend only on event order, not wall time."""
    from repro.channels import Receive
    from repro.net import NetChannel, NetSend

    def run():
        kernel = Kernel(costs=FREE, seed=0, trace=True)
        net = ring(kernel, 4)
        install(
            kernel,
            net,
            FaultPlan(seed=21).drop_messages(0.5, dst="n2").delay_jitter(9, dst="n2"),
        )
        inbox = NetChannel(net.node("n2"), name="inbox")
        got = []

        def sender(start):
            yield Delay(start)
            for i in range(30):
                yield NetSend(inbox, (start, i))
                yield Delay(3)

        def receiver():
            while True:
                got.append((kernel.clock.now, (yield Receive(inbox))))

        net.node("n0").spawn(sender, 0, name="s0")
        net.node("n1").spawn(sender, 1, name="s1")
        net.node("n2").spawn(receiver, name="recv", daemon=True)
        kernel.run()
        return got

    first, second = run(), run()
    assert first == second
    assert 0 < len(first) < 60  # loss actually applied to the interleaving
