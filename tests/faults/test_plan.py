"""FaultPlan construction and validation."""

import pytest

from repro.errors import NetworkError
from repro.faults import FaultPlan, MessageRule


def test_builders_chain():
    plan = (
        FaultPlan(seed=1, detection_delay=20)
        .crash_node("n0", at=10, restart_at=50)
        .link_down("n0", "n1", at=5, up_at=15)
        .partition(["n0"], ["n1", "n2"], at=30, heal_at=60)
        .slow_cpu("n2", factor=3.0, at=0, until=100)
        .drop_messages(0.1)
        .duplicate_messages(0.05, dst="n1")
        .delay_jitter(7, src="n0")
    )
    assert len(plan.crashes) == 1
    assert len(plan.link_faults) == 1
    assert len(plan.partitions) == 1
    assert len(plan.slow_cpus) == 1
    assert len(plan.message_rules) == 3
    assert plan.seed == 1 and plan.detection_delay == 20


def test_negative_detection_delay_rejected():
    with pytest.raises(NetworkError):
        FaultPlan(detection_delay=-1)


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_rates_must_be_probabilities(rate):
    with pytest.raises(NetworkError):
        FaultPlan().drop_messages(rate)
    with pytest.raises(NetworkError):
        FaultPlan().duplicate_messages(rate)


def test_slow_cpu_factor_below_one_rejected():
    with pytest.raises(NetworkError):
        FaultPlan().slow_cpu("n0", factor=0.5)


def test_overlapping_partition_groups_rejected():
    with pytest.raises(NetworkError):
        FaultPlan().partition(["n0", "n1"], ["n1", "n2"], at=10)


def test_window_end_must_follow_start():
    with pytest.raises(NetworkError):
        FaultPlan().crash_node("n0", at=10, restart_at=10)
    with pytest.raises(NetworkError):
        FaultPlan().link_down("a", "b", at=-1)
    with pytest.raises(NetworkError):
        FaultPlan().delay_jitter(-3)


def test_rules_scope_by_src_and_dst():
    plan = (
        FaultPlan()
        .drop_messages(0.5, dst="n1")
        .duplicate_messages(0.5, src="n0")
        .delay_jitter(4)  # unscoped: matches everything
    )
    assert len(plan.rules_for("n0", "n1")) == 3
    assert len(plan.rules_for("n2", "n1")) == 2  # src-scoped rule excluded
    assert len(plan.rules_for("n0", "n2")) == 2  # dst-scoped rule excluded
    assert len(plan.rules_for("n3", "n4")) == 1  # only the wildcard


def test_message_rule_matching():
    rule = MessageRule(drop_rate=0.2, src="a", dst=None)
    assert rule.matches("a", "anything")
    assert not rule.matches("b", "anything")


def test_describe_lists_every_fault():
    plan = (
        FaultPlan()
        .crash_node("n0", at=10, restart_at=50)
        .partition(["n0"], ["n1"], at=30)
        .drop_messages(0.1)
    )
    text = plan.describe()
    assert "crash n0 @ 10" in text
    assert "partition" in text
    assert "drop 10%" in text
    assert FaultPlan().describe() == "(no faults)"
