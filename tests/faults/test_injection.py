"""Injection layer: crashes, link/partition faults, message fates, slow CPUs."""

import pytest

from repro.channels import Receive, TryReceive
from repro.errors import NetworkError, RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import NetChannel, NetSend, ring
from repro.stdlib import Dictionary


def make_ring(seed=0, size=4, trace=True):
    kernel = Kernel(costs=FREE, seed=seed, trace=trace)
    return kernel, ring(kernel, size)


class TestNodeCrash:
    def test_crash_kills_node_processes(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan().crash_node("n1", at=50))
        progress = []

        def worker():
            while True:
                yield Delay(20)
                progress.append(kernel.clock.now)

        proc = net.node("n1").spawn(worker, name="worker", daemon=True)
        kernel.run(until=200)
        assert not proc.alive
        assert progress == [20, 40]  # nothing after the crash at t=50
        assert kernel.trace.count("crash") == 1
        assert kernel.stats.custom["node_crashes"] == 1

    def test_other_nodes_keep_running(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan().crash_node("n1", at=50))
        survivor = []

        def worker():
            for _ in range(5):
                yield Delay(20)
            survivor.append(kernel.clock.now)

        net.node("n2").spawn(worker, name="survivor")
        kernel.run()
        assert survivor == [100]

    def test_restart_brings_node_back(self):
        kernel, net = make_ring()
        runtime = install(
            kernel, net, FaultPlan().crash_node("n1", at=50, restart_at=120)
        )
        states = []

        def probe():
            for _ in range(4):
                yield Delay(40)
                states.append((kernel.clock.now, runtime.node_up("n1")))

        net.node("n0").spawn(probe, name="probe")
        kernel.run()
        assert states == [(40, True), (80, False), (120, True), (160, True)]
        assert kernel.trace.count("restart") == 1


class TestMessageFaults:
    def _pump(self, kernel, net, n, dst="n1", size=1):
        """Send n messages n0 -> dst; return list of receive times."""
        inbox = NetChannel(net.node(dst), name="inbox")
        got = []

        def sender():
            for i in range(n):
                yield NetSend(inbox, i, size=size)
                yield Delay(10)

        def receiver():
            while True:
                value = yield Receive(inbox)
                got.append((kernel.clock.now, value))

        net.node("n0").spawn(sender, name="sender")
        net.node(dst).spawn(receiver, name="receiver", daemon=True)
        kernel.run()
        return got

    def test_total_loss_delivers_nothing(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan(seed=5).drop_messages(1.0, dst="n1"))
        got = self._pump(kernel, net, 5)
        assert got == []
        assert kernel.stats.custom["dropped_messages"] == 5
        assert kernel.trace.count("drop") == 5

    def test_no_loss_delivers_everything(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan(seed=5).drop_messages(0.0))
        got = self._pump(kernel, net, 5)
        assert [v for _, v in got] == [0, 1, 2, 3, 4]

    def test_partial_loss_is_seeded(self):
        def run(seed):
            kernel, net = make_ring(trace=False)
            install(kernel, net, FaultPlan(seed=seed).drop_messages(0.5, dst="n1"))
            return [v for _, v in self._pump(kernel, net, 40)]

        first, again = run(seed=9), run(seed=9)
        assert first == again  # same seed, same fates
        assert 0 < len(first) < 40  # and the rate actually bites

    def test_duplication_delivers_twice(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan(seed=5).duplicate_messages(1.0, dst="n1"))
        got = self._pump(kernel, net, 3)
        assert sorted(v for _, v in got) == [0, 0, 1, 1, 2, 2]
        assert kernel.stats.custom["duplicated_messages"] == 3

    def test_jitter_delays_delivery(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan(seed=1).delay_jitter(50, dst="n1"))
        got = self._pump(kernel, net, 10)
        assert len(got) == 10
        base = 1  # n0-n1 link latency
        lags = [t - 10 * i - base for (t, _), i in zip(got, range(10))]
        assert all(0 <= lag <= 50 for lag in lags)
        assert any(lag > 0 for lag in lags)  # jitter actually drawn

    def test_send_to_downed_node_dropped(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan().crash_node("n1", at=0))
        inbox = NetChannel(net.node("n1"), name="inbox")

        def sender():
            yield Delay(10)
            yield NetSend(inbox, "lost")

        net.node("n0").spawn(sender, name="sender")
        kernel.run()
        assert kernel.stats.custom["dropped_messages"] == 1
        assert len(inbox._queue) == 0


class TestTopologyFaults:
    def test_link_down_reroutes_the_long_way(self):
        kernel, net = make_ring()  # n0-n1-n2-n3-n0
        install(kernel, net, FaultPlan().link_down("n0", "n1", at=0, up_at=1000))
        inbox = NetChannel(net.node("n1"), name="inbox")
        got = []

        def sender():
            yield NetSend(inbox, "x")

        def receiver():
            yield Receive(inbox)
            got.append(kernel.clock.now)

        net.node("n0").spawn(sender, name="sender")
        net.node("n1").spawn(receiver, name="receiver")
        kernel.run(until=1000)
        assert got == [3]  # n0-n3-n2-n1 instead of the direct hop

    def test_link_restored_shortens_route(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan().link_down("n0", "n1", at=0, up_at=50))
        kernel.run(until=10)  # applies the down transition at t=0
        assert net.latency("n0", "n1") == 3
        kernel.run(until=60)  # applies the up transition at t=50
        assert net.latency("n0", "n1") == 1

    def test_partition_fails_cross_calls(self):
        kernel, net = make_ring()
        install(
            kernel,
            net,
            FaultPlan(detection_delay=25).partition(["n0", "n3"], ["n1", "n2"], at=0),
        )
        d = net.node("n1").place(Dictionary(kernel, name="d", entries={"a": 1}, search_work=0))
        outcome = []

        def client():
            try:
                yield d.search("a")
            except RemoteCallError as exc:
                outcome.append((kernel.clock.now, "error", str(exc)))
            else:
                outcome.append((kernel.clock.now, "ok", None))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert outcome and outcome[0][1] == "error"
        assert "no route" in outcome[0][2]

    def test_partition_heals(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan().partition(["n0", "n3"], ["n1", "n2"], at=0, heal_at=40))
        d = net.node("n1").place(Dictionary(kernel, name="d", entries={"a": 1}, search_work=0))
        result = []

        def client():
            yield Delay(50)  # wait out the partition
            result.append((yield d.search("a")))

        net.node("n0").spawn(client, name="client")
        kernel.run()
        assert result == [1]
        assert kernel.trace.count("partition") == 2  # cut + heal

    def test_same_side_unaffected_by_partition(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan().partition(["n0", "n3"], ["n1", "n2"], at=0))
        d = net.node("n3").place(Dictionary(kernel, name="d", entries={"a": 2}, search_work=0))

        def client():
            return (yield d.search("a"))

        proc = net.node("n0").spawn(client, name="client")
        kernel.run()
        assert proc.result == 2


class TestSlowCpu:
    def test_work_dilates_on_degraded_node(self):
        from repro.kernel import Charge

        kernel, net = make_ring()
        install(kernel, net, FaultPlan().slow_cpu("n1", factor=4.0, at=0))
        finish = {}

        def worker(tag):
            yield Charge(100)
            finish[tag] = kernel.clock.now

        net.node("n0").spawn(worker, "fast", name="fast")
        net.node("n1").spawn(worker, "slow", name="slow")
        kernel.run()
        assert finish["fast"] == 100
        assert finish["slow"] == 400

    def test_degradation_window_ends(self):
        from repro.kernel import Charge

        kernel, net = make_ring()
        install(kernel, net, FaultPlan().slow_cpu("n1", factor=4.0, at=0, until=1))
        finish = {}

        def worker():
            yield Delay(10)  # past the window
            yield Charge(100)
            finish["t"] = kernel.clock.now

        net.node("n1").spawn(worker, name="worker")
        kernel.run()
        assert finish["t"] == 110


class TestInstall:
    def test_double_install_rejected(self):
        kernel, net = make_ring()
        install(kernel, net, FaultPlan())
        with pytest.raises(NetworkError):
            install(kernel, net, FaultPlan())

    def test_unknown_node_in_plan_rejected(self):
        kernel, net = make_ring()
        with pytest.raises(NetworkError):
            install(kernel, net, FaultPlan().crash_node("nope", at=0))
