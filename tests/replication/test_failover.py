"""Read failover: callers of a Replicated object never see one crash."""

import pytest

from repro.errors import RemoteCallError
from repro.faults import FaultPlan

from .scenarios import build, spawn_reader, spawn_writer


class TestReadFailover:
    def test_reads_survive_primary_crash(self):
        # Primary node dies and never returns; every read still succeeds,
        # transparently served by a backup (then by the promoted primary).
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=150)
        )
        acked, wfailed = spawn_writer(kernel, rep, 6, gap=30)
        ok, rfailed = spawn_reader(kernel, rep, 12, gap=50)
        kernel.run(until=2500)
        assert len(ok) == 12 and rfailed == []
        assert acked == list(range(6)) and wfailed == []
        assert kernel.stats.custom["replication_failovers"] >= 1
        assert rep.view.primary != "rep.r0"

    def test_read_exhausts_all_replicas(self):
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20)
            .crash_node("n0", at=50)
            .crash_node("n2", at=50)
            .crash_node("n4", at=50)
        )
        errors = []

        def client():
            from repro.kernel import Delay

            yield Delay(100)
            try:
                yield from rep.get("missing")
            except RemoteCallError as exc:
                errors.append(str(exc))

        kernel.spawn(client, name="client")
        kernel.run(until=3000)
        assert len(errors) == 1
        assert "all 3 replicas unreachable" in errors[0]

    def test_write_fails_when_no_replica_live(self):
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20)
            .crash_node("n0", at=50)
            .crash_node("n2", at=50)
            .crash_node("n4", at=50)
        )
        errors = []

        def client():
            from repro.kernel import Delay

            yield Delay(100)
            try:
                yield from rep.put("k", 1)
            except RemoteCallError:
                errors.append(kernel.clock.now)

        kernel.spawn(client, name="client")
        kernel.run(until=5000)
        assert len(errors) == 1
        assert kernel.stats.custom["replication_write_failures"] == 1
        # Nothing was acknowledged, so nothing may claim durability.
        assert rep.view.version == 0 and len(rep.log) == 0

    def test_unreplicated_baseline_loses_availability(self):
        # replicas=1 is the paper's restart-in-place world: during the
        # down window every call fails — exactly what replication removes.
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=100, restart_at=800),
            replicas=1,
            nodes=["n0"],
        )
        ok, failed = spawn_reader(kernel, rep, 10, gap=100, start=10)
        kernel.run(until=2500)
        assert failed, "reads during the down window must fail with one replica"
        assert ok, "reads after the supervised restart must succeed again"
        assert max(ok) > 800

    def test_stale_read_from_straggler_records_lag(self):
        # White-box: a read served by a down-marked straggler reports its
        # version lag.  heartbeat_rounds=0 keeps the monitor from repairing
        # the straggler underneath the test.
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=500),
            replicas=2,
            nodes=["n0", "n2"],
            heartbeat_rounds=0,
        )
        acked, _ = spawn_writer(kernel, rep, 3, gap=20)
        served = []

        def late_reader():
            from repro.kernel import Delay

            yield Delay(510)  # after the primary crash
            served.append((yield from rep.get("k0")))

        kernel.spawn(late_reader, name="late")
        # Pretend the backup missed the last two writes and was marked down.
        def corrupt():
            from repro.kernel import Delay

            yield Delay(400)
            rep.view.mark_down("rep.r1")
            rep.view.versions["rep.r1"] = 1

        kernel.spawn(corrupt, name="corrupt")
        kernel.run(until=3000)
        assert acked == [0, 1, 2]
        assert served == [0]  # k0 was written by write #0
        assert rep.staleness() == [2]  # the straggler lags acks 2 and 3
        assert kernel.stats.custom["replication_failovers"] == 1


class TestWrapperValidation:
    def test_unknown_entry_raises(self):
        from repro.errors import ReplicationError

        kernel, net, rep, runtime, sup = build(supervised=False)
        with pytest.raises(ReplicationError):
            rep.invoke("flush", ())
        with pytest.raises(AttributeError):
            rep.no_such_entry

    def test_entry_attribute_builds_proxy(self):
        kernel, net, rep, runtime, sup = build(supervised=False)
        proxy = rep.get
        assert proxy.name == "get" and proxy.rep is rep
