"""Replay contract: same seeded crash plan => tick-identical failover.

The wrapper adds daemons, elections and catch-up on top of the fault
layer; none of it may introduce nondeterminism, or seeded replay (the
debugging story of PR 1) stops working for replicated objects.
"""

from repro.faults import FaultPlan

from .scenarios import build, last_acked_values, spawn_reader, spawn_writer


def churn_plan(fault_seed=11):
    return (
        FaultPlan(seed=fault_seed, detection_delay=20)
        .crash_node("n0", at=300, restart_at=900)
        .crash_node("n4", at=1300, restart_at=1700)
        .drop_messages(0.25, dst="n0")
        .delay_jitter(4, dst="n0")
    )


def run_scenario(fault_seed=11):
    kernel, net, rep, runtime, sup = build(churn_plan(fault_seed))
    acked, wfailed = spawn_writer(kernel, rep, 25, gap=67)
    # The reader lives on a node, so its calls traverse the lossy network
    # (the wrapper's unplaced control plane is outside the failure model).
    ok, rfailed = spawn_reader(kernel, rep, 25, gap=73, net=net, node="n1")
    kernel.run(until=6000)
    return kernel, rep, acked, wfailed, ok, rfailed


def trace_snapshot(kernel):
    return [
        (e.time, e.kind, e.process, tuple(sorted(e.detail.items())))
        for e in kernel.trace
    ]


def test_same_seeded_plan_is_tick_identical():
    k1, rep1, acked1, wf1, ok1, rf1 = run_scenario()
    k2, rep2, acked2, wf2, ok2, rf2 = run_scenario()
    # The acceptance check: transition logs match tick for tick.
    assert rep1.view.transitions == rep2.view.transitions
    assert rep1.heartbeat.transitions == rep2.heartbeat.transitions
    assert (acked1, wf1, ok1, rf1) == (acked2, wf2, ok2, rf2)
    assert trace_snapshot(k1) == trace_snapshot(k2)
    assert k1.stats.custom == k2.stats.custom
    # The scenario genuinely failed over (it is not vacuous).
    events = {event for _, event, _, _ in rep1.view.transitions}
    assert {"down", "promote", "rejoin"} <= events


def test_different_fault_seed_diverges():
    # 15% loss toward a replica across dozens of messages: a different
    # RNG stream deterministically picks different victims.
    a = trace_snapshot(run_scenario(fault_seed=11)[0])
    b = trace_snapshot(run_scenario(fault_seed=12)[0])
    assert a != b


def test_no_acked_write_lost_under_seeded_churn():
    # Same churn, stronger claim: whatever the interleaving did, every
    # acknowledged write is on every live replica afterwards.
    kernel, rep, acked, wfailed, ok, rfailed = run_scenario()
    assert acked, "churn scenario must acknowledge writes"
    expected = last_acked_values(acked)
    for name in rep.view.live():
        data = rep.replica(name).data
        for key, value in expected.items():
            assert data[key] == value, (name, key)
