"""Fault-aware placement: choose_nodes and the wrapper's placement rules."""

import pytest

from repro.errors import NetworkError, ReplicationError
from repro.faults import Heartbeat
from repro.kernel import Kernel
from repro.kernel.costs import FREE
from repro.net import choose_nodes, ring
from repro.replication import Replicated, place_replicated
from repro.stdlib import KVStore

from .scenarios import build


def fresh(n=4):
    kernel = Kernel(costs=FREE)
    return kernel, ring(kernel, n)


class TestChooseNodes:
    def test_prefers_lightly_loaded_nodes(self):
        kernel, net = fresh()
        net.node("n0").place(KVStore(kernel, name="a"))
        net.node("n0").place(KVStore(kernel, name="b"))
        net.node("n1").place(KVStore(kernel, name="c"))
        chosen = [n.name for n in choose_nodes(net, 2)]
        assert chosen == ["n2", "n3"]  # empty nodes first, insertion order

    def test_avoid_and_exhaustion(self):
        kernel, net = fresh()
        chosen = [n.name for n in choose_nodes(net, 2, avoid=("n0", "n1"))]
        assert chosen == ["n2", "n3"]
        with pytest.raises(NetworkError):
            choose_nodes(net, 3, avoid=("n0", "n1"))
        with pytest.raises(NetworkError):
            choose_nodes(net, 0)

    def test_heartbeat_verdict_demotes_nodes(self):
        kernel, net = fresh()
        hb = Heartbeat(kernel)
        hb.status["n0"] = "down"  # verdict as a detector would record it
        chosen = [n.name for n in choose_nodes(net, 3, heartbeat=hb)]
        assert chosen == ["n1", "n2", "n3"]
        # Down nodes rank last but stay eligible (degraded placement
        # beats refusing outright when every node is suspect).
        assert [n.name for n in choose_nodes(net, 4, heartbeat=hb)][-1] == "n0"


class TestWrapperPlacement:
    def test_automatic_placement_is_distinct_and_respects_avoid(self):
        kernel, net, rep, runtime, sup = build(
            supervised=False, nodes=None, avoid=("n5",)
        )
        homes = [rep.node_of(n) for n in rep.view.order]
        assert len(set(homes)) == 3
        assert "n5" not in homes

    def test_colocated_explicit_nodes_rejected(self):
        with pytest.raises(ReplicationError):
            build(supervised=False, nodes=["n0", "n0", "n2"])

    def test_replica_count_and_writes_validated(self):
        with pytest.raises(ReplicationError):
            build(replicas=0, nodes=[])
        with pytest.raises(ReplicationError):
            build(supervised=False, writes=("put", "no_such_entry"))

    def test_factory_must_pass_name_through(self):
        kernel = Kernel(costs=FREE)
        net = ring(kernel, 4)
        with pytest.raises(ReplicationError):
            Replicated(lambda name: KVStore(kernel, name="fixed"), net, 2)

    def test_place_replicated_helper(self):
        kernel, net = fresh()
        placed = place_replicated(
            lambda name: KVStore(kernel, name=name), net, 3, name="kv"
        )
        assert [obj.alps_name for obj in placed] == ["kv.r0", "kv.r1", "kv.r2"]
        homes = {obj.node.name for obj in placed}
        assert len(homes) == 3
