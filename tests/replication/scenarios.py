"""Shared builders for the replication test suite.

Every scenario runs a :class:`~repro.stdlib.KVStore` replicated over a
6-node ring, with the Supervisor (when used) on ``n5`` — a node no
scenario ever crashes, mirroring the paper's assumption that the
recovery manager itself survives.
"""

from __future__ import annotations

from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor

#: Default replica homes (distinct, Supervisor-free nodes of the ring).
REPLICA_NODES = ("n0", "n2", "n4")


def build(
    plan: FaultPlan | None = None,
    *,
    replicas: int = 3,
    supervised: bool = True,
    seed: int = 0,
    trace: bool = True,
    **rep_kwargs,
):
    """Kernel + ring(6) + fault runtime + Supervisor + replicated KVStore."""
    kernel = Kernel(costs=FREE, seed=seed, trace=trace)
    net = ring(kernel, 6)
    runtime = install(kernel, net, plan or FaultPlan(detection_delay=20))
    sup = None
    if supervised:
        sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=runtime))
    rep_kwargs.setdefault("nodes", list(REPLICA_NODES)[:replicas])
    rep_kwargs.setdefault("heartbeat_interval", 40)
    rep_kwargs.setdefault("call_timeout", 60)
    rep_kwargs.setdefault("writes", ("put", "delete"))
    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net,
        replicas,
        supervisor=sup,
        **rep_kwargs,
    )
    return kernel, net, rep, runtime, sup


def _spawn(kernel, net, body, name, node):
    """Unplaced by default; on ``node``, calls traverse the faulty network."""
    if node is None:
        kernel.spawn(body, name=name)
    else:
        net.node(node).spawn(body, name=name)


def spawn_writer(kernel, rep, count, *, gap=37, keys=5, start=0, name="writer",
                 net=None, node=None):
    """Write ``k<i % keys> = i`` every ``gap`` ticks; returns the outcome lists."""
    acked: list[int] = []
    failed: list[int] = []

    def body():
        if start:
            yield Delay(start)
        for i in range(count):
            try:
                yield from rep.put(f"k{i % keys}", i)
                acked.append(i)
            except RemoteCallError:
                failed.append(i)
            yield Delay(gap)

    _spawn(kernel, net, body, name, node)
    return acked, failed


def spawn_reader(kernel, rep, count, *, gap=41, keys=5, start=10, name="reader",
                 net=None, node=None):
    """Read round-robin keys; returns (successes, failures) tick lists."""
    ok: list[int] = []
    failed: list[int] = []

    def body():
        if start:
            yield Delay(start)
        for i in range(count):
            try:
                yield from rep.get(f"k{i % keys}")
                ok.append(kernel.clock.now)
            except RemoteCallError:
                failed.append(kernel.clock.now)
            yield Delay(gap)

    _spawn(kernel, net, body, name, node)
    return ok, failed


def last_acked_values(acked, keys=5):
    """The k→value mapping every replica must converge to."""
    expected = {}
    for i in acked:
        expected[f"k{i % keys}"] = i
    return expected
