"""Convergence: replicas end identical; acknowledged writes are never lost."""

import pytest

from repro.faults import FaultPlan

from .scenarios import build, last_acked_values, spawn_writer


class TestWriteLogUnit:
    def test_versions_must_be_monotone(self):
        from repro.replication import WriteLog

        log = WriteLog()
        log.append(1, "put", ("k", 1))
        log.append(2, "put", ("k", 2))
        with pytest.raises(ValueError):
            log.append(2, "put", ("k", 3))

    def test_since_and_prune_escalation(self):
        from repro.replication import WriteLog

        log = WriteLog(limit=3)
        for v in range(1, 7):
            log.append(v, "put", ("k", v))
        assert len(log) == 3 and log.base == 3
        assert [v for v, _, _ in log.since(4)] == [5, 6]
        assert log.since(3) == [log.entries[0], log.entries[1], log.entries[2]]
        # Behind the pruned prefix: replay impossible, snapshot required.
        assert log.since(2) is None

    def test_bad_limit_rejected(self):
        from repro.replication import WriteLog

        with pytest.raises(ValueError):
            WriteLog(limit=0)


class TestConvergence:
    def assert_converged(self, rep, acked):
        expected = last_acked_values(acked)
        for replica in rep.replicas():
            assert replica.data == expected, replica.alps_name
        assert rep.view.version == len(acked)
        assert all(v == rep.view.version for v in rep.view.versions.values())

    def test_replicas_converge_after_staggered_churn(self):
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20)
            .crash_node("n0", at=250, restart_at=700)
            .crash_node("n2", at=1100, restart_at=1500)
        )
        acked, failed = spawn_writer(kernel, rep, 30, gap=60)
        kernel.run(until=6000)
        assert failed == []
        assert acked == list(range(30))
        self.assert_converged(rep, acked)
        assert kernel.stats.custom["replication_rejoins"] >= 2

    def test_no_acked_write_lost_on_permanent_primary_crash(self):
        # The acceptance check: the primary dies mid-workload and never
        # returns, yet every acknowledged write is present on every live
        # replica (the ack implies it was forwarded before the crash).
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=500)
        )
        acked, failed = spawn_writer(kernel, rep, 20, gap=45)
        kernel.run(until=4000)
        assert failed == []
        expected = last_acked_values(acked)
        live = [rep.replica(n) for n in rep.view.live()]
        assert len(live) == 2
        for replica in live:
            for key, value in expected.items():
                assert replica.data[key] == value, (replica.alps_name, key)
        assert all(rep.view.versions[n] >= rep.view.version for n in rep.view.live())

    def test_pruned_log_escalates_to_state_snapshot(self):
        # The backup sleeps through far more writes than the bounded log
        # retains: replay is impossible and a full state transfer from the
        # primary repairs it instead.
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n2", at=100, restart_at=1400),
            replicas=2,
            nodes=["n0", "n2"],
            log_limit=4,
        )
        acked, failed = spawn_writer(kernel, rep, 25, gap=45)
        kernel.run(until=5000)
        assert failed == []
        assert kernel.stats.custom["replication_snapshots"] >= 1
        self.assert_converged(rep, acked)

    def test_sequencer_orders_concurrent_writers(self):
        # Two interleaved writers race on the same keys; the sequencer's
        # single global order means all replicas agree exactly.
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=400, restart_at=900)
        )
        from repro.errors import RemoteCallError
        from repro.kernel import Delay

        done = []

        def writer(tag, start, gap):
            def body():
                yield Delay(start)
                for i in range(12):
                    try:
                        yield from rep.put(f"k{i % 3}", (tag, i))
                    except RemoteCallError:
                        pass
                    yield Delay(gap)
                done.append(tag)

            kernel.spawn(body, name=f"writer_{tag}")

        writer("a", 0, 53)
        writer("b", 11, 47)
        kernel.run(until=6000)
        assert sorted(done) == ["a", "b"]
        assert rep.view.version == 24 == len(rep.log)
        datas = [r.data for r in rep.replicas()]
        assert datas[0] == datas[1] == datas[2]
