"""Promotion: the highest-version live backup takes over, losing nothing."""

from repro.faults import FaultPlan
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.replication import ReplicaView

from .scenarios import build, spawn_writer


class TestPromotionPolicy:
    def view(self):
        return ReplicaView(Kernel(costs=FREE), ["r0", "r1", "r2"])

    def test_live_primary_is_left_in_place(self):
        v = self.view()
        assert v.promote() == "r0"
        assert v.transitions == []

    def test_highest_version_wins(self):
        v = self.view()
        v.mark_applied("r1", 3)
        v.mark_applied("r2", 5)
        v.mark_down("r0")
        assert v.promote() == "r2"
        assert v.primary == "r2"

    def test_tie_breaks_by_placement_order(self):
        v = self.view()
        v.mark_applied("r1", 5)
        v.mark_applied("r2", 5)
        v.mark_down("r0")
        assert v.promote() == "r1"

    def test_no_live_replica_leaves_leadership_vacant(self):
        v = self.view()
        for name in ("r0", "r1", "r2"):
            v.mark_down(name)
        assert v.promote() is None
        assert v.primary == "r0"  # unchanged; nothing to lead


class TestPromotionEndToEnd:
    def test_promotes_most_up_to_date_backup(self):
        # r2's node dies early, so r2 misses writes; when the primary dies
        # later, the election must pick r1 (caught up), never r2 (stale).
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20)
            .crash_node("n4", at=100)  # r2: out early, stays out
            .crash_node("n0", at=900)  # r0: primary dies mid-workload
        )
        acked, failed = spawn_writer(kernel, rep, 12, gap=80)
        kernel.run(until=4000)
        assert failed == []
        assert rep.view.primary == "rep.r1"
        promotes = [t for t in rep.view.transitions if t[1] == "promote"]
        assert [t[2] for t in promotes] == ["rep.r1"]
        # The winner holds every acknowledged write.
        assert rep.view.versions["rep.r1"] == rep.view.version == len(acked)
        assert rep.view.versions["rep.r2"] < rep.view.version

    def test_ex_primary_rejoins_as_backup(self):
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=200, restart_at=900)
        )
        acked, failed = spawn_writer(kernel, rep, 15, gap=70)
        kernel.run(until=4000)
        assert failed == []
        # Promotion stuck: the restarted ex-primary does not reclaim the role.
        assert rep.view.primary != "rep.r0"
        assert rep.view.is_up("rep.r0")
        events = [(e, n) for _, e, n, _ in rep.view.transitions]
        assert ("promote", rep.view.primary) in events
        assert ("rejoin", "rep.r0") in events
        # ...and it caught up on every write it slept through.
        assert rep.view.versions["rep.r0"] == rep.view.version == len(acked)

    def test_monitor_promotes_without_any_writes(self):
        # No write ever reaches the sequencer, so the heartbeat/monitor
        # pair alone must notice the dead primary and re-elect.
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=100)
        )
        kernel.run(until=1000)
        assert rep.view.primary != "rep.r0"
        assert kernel.stats.custom["replication_promotions"] == 1

    def test_supervised_restart_requeues_interrupted_write(self):
        # A write interrupted by the primary crash is re-queued by the
        # Supervisor after restart; the sequencer's retry/election makes
        # the caller whole either way — the write must not be lost *or*
        # fail, and all replicas must agree afterwards.
        kernel, net, rep, runtime, sup = build(
            FaultPlan(detection_delay=20).crash_node("n0", at=115, restart_at=600),
            heartbeat_interval=30,
        )
        acked, failed = spawn_writer(kernel, rep, 4, gap=100, start=90)
        kernel.run(until=4000)
        assert failed == []
        assert len(acked) == 4
        datas = [r.data for r in rep.replicas()]
        assert datas[0] == datas[1] == datas[2]
