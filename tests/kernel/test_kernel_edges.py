"""Edge-case kernel behaviour: kill-during-select, bounded runs,
arbitration validation, error hierarchy."""

import pytest

from repro import errors
from repro.channels import Channel, ReceiveGuard, Send
from repro.errors import KernelError
from repro.kernel import Delay, Join, Kernel, Kill, Select, Spawn
from repro.kernel.costs import FREE


class TestKillDuringSelect:
    def test_killed_selector_deregisters(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def selector():
            yield Select(ReceiveGuard(ch))

        def killer(victim):
            yield Delay(5)
            yield Kill(victim)
            # A send afterwards must not wake the corpse.
            yield Send(ch, "for nobody")

        victim = kernel.spawn(selector)
        kernel.spawn(killer, victim)
        kernel.run()
        assert not victim.alive
        assert len(ch) == 1  # message still queued, never consumed

    def test_kill_then_join_raises(self):
        kernel = Kernel(costs=FREE)

        def sleeper():
            yield Delay(1000)

        def main():
            victim = yield Spawn(sleeper)
            yield Kill(victim)
            yield Join(victim)

        with pytest.raises(errors.ProcessError):
            kernel.run_process(main)


class TestBoundedRuns:
    def test_max_events_stops_early(self):
        kernel = Kernel(costs=FREE)
        ticks = []

        def ticker():
            for _ in range(100):
                yield Delay(1)
                ticks.append(kernel.clock.now)

        kernel.spawn(ticker)
        kernel.run(max_events=10)
        assert 0 < len(ticks) < 100
        kernel.run()
        assert len(ticks) == 100

    def test_bounded_run_does_not_conclude_deadlock(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def waiter():
            return (yield Select(ReceiveGuard(ch))).value

        proc = kernel.spawn(waiter)
        kernel.run(until=100)  # no deadlock error despite blocked waiter

        def sender():
            yield Send(ch, "late arrival")

        kernel.spawn(sender)
        kernel.run()
        assert proc.result == "late arrival"


class TestValidation:
    def test_bad_arbitration_rejected(self):
        with pytest.raises(KernelError):
            Kernel(arbitration="coin-flip")

    def test_post_in_past_rejected(self):
        kernel = Kernel()

        def main():
            yield Delay(10)
            kernel.post(5, lambda: None)

        with pytest.raises(KernelError):
            kernel.run_process(main)

    def test_negative_cpu_count_rejected(self):
        with pytest.raises(ValueError):
            Kernel(num_cpus=0)


class TestErrorHierarchy:
    def test_everything_is_alps_error(self):
        leaf_errors = [
            errors.KernelError,
            errors.DeadlockError,
            errors.ProcessError,
            errors.ChannelError,
            errors.ChannelTypeError,
            errors.SelectError,
            errors.GuardExhaustedError,
            errors.ObjectModelError,
            errors.InterceptError,
            errors.ProtocolError,
            errors.CallError,
            errors.PathExpressionError,
            errors.NetworkError,
        ]
        for cls in leaf_errors:
            assert issubclass(cls, errors.AlpsError)

    def test_deadlock_is_kernel_error(self):
        assert issubclass(errors.DeadlockError, errors.KernelError)

    def test_guard_exhausted_is_select_error(self):
        assert issubclass(errors.GuardExhaustedError, errors.SelectError)

    def test_channel_type_is_channel_error(self):
        assert issubclass(errors.ChannelTypeError, errors.ChannelError)
