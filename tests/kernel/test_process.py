"""Unit tests for the Process abstraction."""

import pytest

from repro.errors import ProcessError
from repro.kernel.process import (
    PRIORITY_MANAGER,
    PRIORITY_NORMAL,
    Process,
    ProcessState,
    as_generator,
    format_blocked,
)


def _gen():
    value = yield "syscall-1"
    return value * 2


class TestProcess:
    def make(self, body=None, **kwargs):
        return Process(pid=1, name="p", body=body or _gen(), **kwargs)

    def test_requires_generator_body(self):
        with pytest.raises(ProcessError):
            Process(pid=1, name="p", body=lambda: None)

    def test_initial_state(self):
        proc = self.make()
        assert proc.state == ProcessState.NEW
        assert proc.alive
        assert proc.daemon is False

    def test_step_yields_syscall(self):
        proc = self.make()
        finished, payload = proc.step()
        assert not finished
        assert payload == "syscall-1"

    def test_step_to_completion_captures_result(self):
        proc = self.make()
        proc.step()
        proc.prepare_resume(21)
        finished, result = proc.step()
        assert finished
        assert result == 42
        assert proc.state == ProcessState.DONE
        assert proc.result == 42
        assert not proc.alive

    def test_prepare_throw_raises_inside_body(self):
        def body():
            try:
                yield "x"
            except ValueError:
                return "caught"

        proc = self.make(body=body())
        proc.step()
        proc.prepare_throw(ValueError("boom"))
        finished, result = proc.step()
        assert finished and result == "caught"

    def test_uncaught_exception_marks_failed(self):
        def body():
            yield "x"
            raise RuntimeError("bad")

        proc = self.make(body=body())
        proc.step()
        with pytest.raises(RuntimeError):
            proc.step()
        assert proc.state == ProcessState.FAILED
        assert isinstance(proc.exception, RuntimeError)

    def test_kill(self):
        proc = self.make()
        proc.step()
        proc.kill()
        assert proc.state == ProcessState.KILLED
        assert not proc.alive

    def test_kill_finished_is_noop(self):
        proc = self.make()
        proc.step()
        proc.prepare_resume(1)
        proc.step()
        proc.kill()
        assert proc.state == ProcessState.DONE

    def test_resumption_counter(self):
        proc = self.make()
        proc.step()
        proc.prepare_resume(1)
        proc.step()
        assert proc.resumptions == 2

    def test_manager_priority_is_higher_than_normal(self):
        # Numerically smaller = dispatched first.
        assert PRIORITY_MANAGER < PRIORITY_NORMAL


class TestAsGenerator:
    def test_passes_generators_through(self):
        gen = _gen()
        assert as_generator(lambda: gen) is gen

    def test_wraps_plain_functions(self):
        body = as_generator(lambda: 7)
        with pytest.raises(StopIteration) as stop:
            next(body)
        assert stop.value.value == 7

    def test_forwards_arguments(self):
        def add(a, b):
            return a + b

        body = as_generator(add, 2, b=3)
        with pytest.raises(StopIteration) as stop:
            next(body)
        assert stop.value.value == 5


class TestFormatBlocked:
    def test_lists_waiters(self):
        proc = Process(pid=3, name="stuck", body=_gen())
        proc.blocked_on = "receive(ch)"
        text = format_blocked([proc])
        assert "stuck" in text and "receive(ch)" in text

    def test_empty(self):
        assert "(none)" in format_blocked([])
