"""Unit tests for the virtual clock."""

import pytest

from repro.errors import KernelError
from repro.kernel.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_custom_start(self):
        assert VirtualClock(start=42).now == 42

    def test_negative_start_rejected(self):
        with pytest.raises(KernelError):
            VirtualClock(start=-1)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(5) == 5
        assert clock.advance(3) == 8
        assert clock.now == 8

    def test_advance_zero_is_noop(self):
        clock = VirtualClock(start=7)
        clock.advance(0)
        assert clock.now == 7

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(KernelError):
            clock.advance(-1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(10)
        assert clock.now == 10

    def test_advance_to_same_time_allowed(self):
        clock = VirtualClock(start=10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(start=10)
        with pytest.raises(KernelError):
            clock.advance_to(9)
