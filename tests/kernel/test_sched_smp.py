"""The SMP virtual machine: determinism, classes, stealing, domains.

The two compatibility anchors are byte-level: a 1-CPU domain must emit
the *identical* Chrome trace the pre-SMP single-queue scheduler emitted
(pinned in ``tests/fixtures/smp/``), and any multi-CPU run must be
byte-replayable under the same seed.  Everything else — scheduling
classes, idle-steal, the periodic balancer, node-local domains — is
tested against hand-computed virtual timelines.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import KernelError
from repro.kernel import Charge, Kernel
from repro.kernel.process import PRIORITY_MANAGER, PRIORITY_NORMAL
from repro.kernel.sched import SchedDomain, SmpScheduler
from repro.obs import ChromeTraceSink
from repro.stdlib import BoundedBuffer

FIXTURES = "tests/fixtures/smp"
MESSAGES = 200


def _e1_trace_bytes(tmp_path, num_cpus):
    """Run the E1 BoundedBuffer cell and return its Chrome trace, canonical."""
    kernel = Kernel(num_cpus=num_cpus)
    path = str(tmp_path / f"trace_{num_cpus}.json")
    kernel.obs.add_sink(ChromeTraceSink(path))
    buf = BoundedBuffer(kernel, size=4)

    def producer():
        for i in range(MESSAGES):
            yield buf.deposit(i)

    def consumer():
        for _ in range(MESSAGES):
            yield buf.remove()

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    kernel.obs.close()
    with open(path) as fh:
        data = json.load(fh)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class TestUpStrictCompatibility:
    """cpus=1 must be bit-for-bit the old PriorityCpuScheduler."""

    def test_cpus1_trace_matches_pre_smp_fixture(self, tmp_path):
        produced = _e1_trace_bytes(tmp_path, num_cpus=1)
        with open(f"{FIXTURES}/trace_e1_cpus1.json") as fh:
            expected = json.dumps(json.load(fh), sort_keys=True, separators=(",", ":"))
        assert produced == expected

    def test_unbounded_trace_matches_pre_smp_fixture(self, tmp_path):
        produced = _e1_trace_bytes(tmp_path, num_cpus=None)
        with open(f"{FIXTURES}/trace_e1_unbounded.json") as fh:
            expected = json.dumps(json.load(fh), sort_keys=True, separators=(",", ":"))
        assert produced == expected

    def test_cpus1_trace_diffs_clean_against_fixture(self, tmp_path):
        from repro.obs.diff import main as diff_main

        path = str(tmp_path / "produced.json")
        with open(path, "w") as fh:
            fh.write(_e1_trace_bytes(tmp_path, num_cpus=1))
        assert diff_main([f"{FIXTURES}/trace_e1_cpus1.json", path]) == 0


class TestSmpDeterminism:
    def test_cpus2_run_twice_is_byte_identical(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = _e1_trace_bytes(tmp_path / "a", num_cpus=2)
        second = _e1_trace_bytes(tmp_path / "b", num_cpus=2)
        assert first == second

    def test_stats_replay_identical(self):
        def run():
            kernel = Kernel(num_cpus=2)
            buf = BoundedBuffer(kernel, size=4)

            def producer():
                for i in range(50):
                    yield buf.deposit(i)

            def consumer():
                for _ in range(50):
                    yield buf.remove()

            kernel.spawn(producer)
            kernel.spawn(consumer)
            kernel.run()
            return kernel.clock.now, kernel.stats.snapshot()

        assert run() == run()


class TestSchedulingClasses:
    def test_manager_priority_work_granted_before_fair(self):
        # One CPU busy until t=100; a fair item then an RT item queue
        # behind it.  The RT item must be granted first despite arriving
        # second.
        kernel = Kernel(num_cpus=1)
        domain = kernel.cpu_scheduler.default
        order = []
        domain.submit(None, PRIORITY_NORMAL, 100, lambda: order.append("first"))
        domain.submit(None, PRIORITY_NORMAL, 10, lambda: order.append("fair"))
        domain.submit(None, PRIORITY_MANAGER, 10, lambda: order.append("rt"))
        kernel.run()
        assert order == ["first", "rt", "fair"]

    def test_rt_class_beats_fair_on_same_runqueue(self):
        kernel = Kernel(num_cpus=2)
        domain = kernel.cpu_scheduler.default
        order = []
        # Fill both CPUs, steer one fair then one RT grant onto cpu0's
        # runqueue (the 1000-tick decoy keeps cpu1's backlog deeper):
        # when cpu0 frees, the RT class must be granted before the fair
        # item that was enqueued earlier.
        domain.submit(None, PRIORITY_NORMAL, 100, lambda: order.append("a"))
        domain.submit(None, PRIORITY_NORMAL, 100, lambda: order.append("b"))
        domain.submit(None, PRIORITY_NORMAL, 10, lambda: order.append("fair"))
        domain.submit(None, PRIORITY_NORMAL, 1000, lambda: order.append("decoy"))
        domain.submit(None, PRIORITY_MANAGER, 10, lambda: order.append("rt"))
        kernel.run()
        assert order.index("rt") < order.index("fair")

    def test_vruntime_interleaves_fair_processes(self):
        # Two processes repeatedly charging on one fair CPU pair: the
        # vruntime key must not let either starve.
        kernel = Kernel(num_cpus=2)
        finished = []

        def worker(tag):
            for _ in range(5):
                yield Charge(10)
            finished.append((kernel.clock.now, tag))

        kernel.spawn(lambda: worker("x"), name="x")
        kernel.spawn(lambda: worker("y"), name="y")
        kernel.run()
        times = [t for t, _ in finished]
        # Fair sharing on 2 CPUs: both finish together, not serialized.
        assert times[0] == times[1]


class TestIdleSteal:
    def test_freed_cpu_steals_from_loaded_sibling(self):
        kernel = Kernel(num_cpus=2)
        domain = kernel.cpu_scheduler.default
        done = {}

        def mark(tag):
            return lambda: done.setdefault(tag, kernel.clock.now)

        # W1=10 starts on cpu0, W2=100 on cpu1; W3=50 queues on cpu0
        # (shorter backlog), W4=50 queues on cpu1.  At t=60 cpu0 is free
        # with an empty queue and steals W4 from cpu1.
        domain.submit(None, PRIORITY_NORMAL, 10, mark("w1"))
        domain.submit(None, PRIORITY_NORMAL, 100, mark("w2"))
        domain.submit(None, PRIORITY_NORMAL, 50, mark("w3"))
        domain.submit(None, PRIORITY_NORMAL, 50, mark("w4"))
        kernel.run()
        assert done == {"w1": 10, "w2": 100, "w3": 60, "w4": 110}
        assert kernel.stats.steals == 1
        # Without the steal, w4 would wait for cpu1: finish at t=150.
        assert kernel.clock.now == 110

    def test_per_cpu_busy_ticks_accounted(self):
        kernel = Kernel(num_cpus=2)
        domain = kernel.cpu_scheduler.default
        for _ in range(4):
            domain.submit(None, PRIORITY_NORMAL, 50, lambda: None)
        kernel.run()
        assert kernel.stats.cpu == {"cpu0": 100, "cpu1": 100}
        assert kernel.stats.snapshot()["cpu.cpu0"] == 100
        assert domain.utilization(kernel.clock.now) == pytest.approx(1.0)


class TestNodeDomains:
    def test_load_never_balances_across_nodes(self):
        from repro.net import Network

        kernel = Kernel()
        net = Network(kernel)
        net.add_node("left", cpus=1)
        net.add_node("right", cpus=1)
        left = kernel.cpu_scheduler.domain("left")
        right = kernel.cpu_scheduler.domain("right")
        done = {}

        def mark(tag):
            return lambda: done.setdefault(tag, kernel.clock.now)

        # Pile three grants on `left` while `right` idles: were domains
        # shared, the idle right CPU would absorb the backlog.
        for i in range(3):
            left.submit(None, PRIORITY_NORMAL, 100, mark(f"l{i}"))
        right.submit(None, PRIORITY_NORMAL, 10, mark("r0"))
        kernel.run()
        assert done == {"l0": 100, "l1": 200, "l2": 300, "r0": 10}
        assert kernel.stats.steals == 0
        assert kernel.stats.migrations == 0
        assert kernel.stats.cpu == {"left.cpu0": 300, "right.cpu0": 10}

    def test_node_processes_contend_on_node_domain(self):
        from repro.kernel import FREE
        from repro.net import Network

        kernel = Kernel(costs=FREE)
        net = Network(kernel)
        node = net.add_node("server", cpus=1)

        def worker():
            yield Charge(100)

        node.spawn(worker)
        node.spawn(worker)
        kernel.run()
        # One CPU on the node: the two charges serialize.
        assert kernel.clock.now == 200
        assert kernel.cpu_scheduler.domain("server").busy_ticks == 200

    def test_queue_depth_reads_node_domain(self):
        from repro.net import Network

        kernel = Kernel()
        net = Network(kernel)
        node = net.add_node("server", cpus=1)
        domain = kernel.cpu_scheduler.domain("server")
        domain.submit(None, PRIORITY_NORMAL, 100, lambda: None)
        domain.submit(None, PRIORITY_NORMAL, 70, lambda: None)
        assert kernel.cpu_scheduler.queue_depth(node) == 1
        assert kernel.cpu_scheduler.queue_depth("server") == 1
        assert kernel.cpu_scheduler.queue_depth() == 0  # default domain
        kernel.run()
        assert kernel.cpu_scheduler.queue_depth(node) == 0

    def test_duplicate_domain_rejected(self):
        kernel = Kernel()
        kernel.cpu_scheduler.add_domain("n", 2)
        with pytest.raises(KernelError):
            kernel.cpu_scheduler.add_domain("n", 2)


class TestBalancer:
    def test_balancer_equalizes_uneven_queues(self):
        # Domain with aggressive balancing: queue 4 long grants while
        # both CPUs are pinned busy, all landing on the same runqueue
        # via submit-time choice, then let the balancer run.
        kernel = Kernel()
        domain = SchedDomain(kernel, "bal", 2, balance_period=10)
        ran = []
        domain.submit(None, PRIORITY_NORMAL, 1000, lambda: ran.append("pin0"))
        domain.submit(None, PRIORITY_NORMAL, 1000, lambda: ran.append("pin1"))
        for i in range(4):
            domain.submit(None, PRIORITY_NORMAL, 100, lambda i=i: ran.append(i))
        kernel.run()
        assert kernel.stats.balance_runs > 0
        assert len(ran) == 6
        # Balanced 2+2 behind the pins: everything ends at 1000+200.
        assert kernel.clock.now == 1200

    def test_balancer_never_inflates_quiet_runs(self):
        # A run whose queues drain must not leave a pending balance
        # event that drags the clock forward after the last real event.
        kernel = Kernel(num_cpus=2)
        domain = kernel.cpu_scheduler.default
        for _ in range(3):
            domain.submit(None, PRIORITY_NORMAL, 10, lambda: None)
        kernel.run()
        assert kernel.clock.now == 20


class TestKernelApi:
    def test_cpus_alias(self):
        assert Kernel(cpus=2).cpu_scheduler.default.count == 2
        assert Kernel(num_cpus=3).cpu_scheduler.default.count == 3
        assert Kernel().cpu_scheduler.default is None

    def test_cpus_alias_conflict_rejected(self):
        with pytest.raises(KernelError):
            Kernel(num_cpus=2, cpus=4)

    def test_bad_cpu_count_rejected(self):
        with pytest.raises(KernelError):
            SmpScheduler(Kernel(), 0)

    def test_migrations_counted(self):
        kernel = Kernel(num_cpus=2)

        def worker():
            for _ in range(4):
                yield Charge(10)

        kernel.spawn(worker)
        kernel.spawn(worker)
        kernel.spawn(worker)
        kernel.run()
        # 3 runnable processes on 2 CPUs must migrate at least once.
        assert kernel.stats.migrations > 0

    def test_utilization_gauge_registered(self):
        kernel = Kernel(num_cpus=2)
        domain = kernel.cpu_scheduler.default
        domain.submit(None, PRIORITY_NORMAL, 10, lambda: None)
        kernel.run()
        assert kernel.metrics.value("cpu.util") == pytest.approx(0.5)
