"""Unit tests for Waitable/Guard plumbing."""

import pytest

from repro.channels import Channel, ReceiveGuard, Send
from repro.kernel import Delay, Kernel, Select
from repro.kernel.costs import FREE
from repro.kernel.waiting import Guard, Ready, Waitable


class TestWaitable:
    def test_add_remove_waiters(self):
        w = Waitable()

        class FakeProc:
            pass

        p = FakeProc()
        w.add_waiter(p)
        w.add_waiter(p)  # idempotent
        assert w.waiter_count == 1
        w.remove_waiter(p)
        assert w.waiter_count == 0
        w.remove_waiter(p)  # tolerant

    def test_blocked_selector_registered_and_cleared(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def selector():
            yield Select(ReceiveGuard(ch))

        proc = kernel.spawn(selector)
        kernel.run(until=0)
        assert ch.waiter_count == 1  # registered while blocked

        def sender():
            yield Send(ch, 1)

        kernel.spawn(sender)
        kernel.run()
        assert ch.waiter_count == 0  # unregistered after commit

    def test_selector_with_two_channels_registered_on_both(self):
        kernel = Kernel(costs=FREE)
        a, b = Channel(), Channel()

        def selector():
            yield Select(ReceiveGuard(a), ReceiveGuard(b))

        kernel.spawn(selector)
        kernel.run(until=0)
        assert a.waiter_count == 1
        assert b.waiter_count == 1

        def sender():
            yield Send(a, 1)

        kernel.spawn(sender)
        kernel.run()
        # Commit on a must deregister from b too.
        assert b.waiter_count == 0


class TestGuardDefaults:
    def test_base_guard_defaults(self):
        guard = Guard()
        assert guard.feasible()
        assert list(guard.waitables()) == []
        assert guard.describe() == "Guard"

    def test_effective_pri_ordering(self):
        unprioritized = Guard()
        prioritized = Guard()
        prioritized.pri = 5
        ready = Ready("x")
        assert prioritized.effective_pri(ready) < unprioritized.effective_pri(ready)

    def test_callable_pri_uses_value(self):
        guard = Guard()
        guard.pri = lambda value: value * 2
        assert guard.effective_pri(Ready(10)) == (0, 20)
