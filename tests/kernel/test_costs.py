"""Unit tests for the cost model."""

import pytest

from repro.kernel.costs import DEFAULT, FREE, HEAVY_PROCESSES, CostModel


class TestCostModel:
    def test_defaults_validate(self):
        DEFAULT.validate()
        FREE.validate()
        HEAVY_PROCESSES.validate()

    def test_free_is_all_zero(self):
        assert all(v == 0 for v in FREE.__dict__.values())

    def test_with_overrides_one_field(self):
        model = DEFAULT.with_(process_create=500)
        assert model.process_create == 500
        assert model.send == DEFAULT.send

    def test_with_does_not_mutate_original(self):
        DEFAULT.with_(send=99)
        assert DEFAULT.send == 1

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(send=-1).validate()

    def test_heavy_processes_regime(self):
        # §3: dynamic (conventional) process creation much more expensive
        # than lightweight creation.
        assert HEAVY_PROCESSES.process_create > 10 * HEAVY_PROCESSES.lwp_create

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT.send = 5
