"""Tests of the generic select machinery: guards, priorities, acceptance
conditions, else-clauses, exhaustion (§2.4 semantics at kernel level)."""

import pytest

from repro.channels import Channel, ReceiveGuard, Send
from repro.core import WhenGuard
from repro.errors import GuardExhaustedError
from repro.kernel import Delay, Kernel, Select, SelectResult, Timeout
from repro.kernel.costs import FREE


class TestImmediateSelect:
    def test_ready_guard_fires(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, 5)
            result = yield Select(ReceiveGuard(ch))
            return (result.index, result.value)

        assert kernel.run_process(main) == (0, 5)

    def test_result_unpacks(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, 5)
            index, value = yield Select(ReceiveGuard(ch))
            return (index, value)

        assert kernel.run_process(main) == (0, 5)

    def test_textual_order_breaks_ties(self, kernel):
        a, b = Channel(name="a"), Channel(name="b")

        def main():
            yield Send(a, "from-a")
            yield Send(b, "from-b")
            result = yield Select(ReceiveGuard(a), ReceiveGuard(b))
            return result.value

        assert kernel.run_process(main) == "from-a"

    def test_random_arbitration_is_seed_deterministic(self):
        def run(seed):
            kernel = Kernel(seed=seed, arbitration="random")
            a, b = Channel(), Channel()

            def main():
                yield Send(a, "a")
                yield Send(b, "b")
                picks = []
                for _ in range(1):
                    result = yield Select(ReceiveGuard(a), ReceiveGuard(b))
                    picks.append(result.value)
                return picks

            return kernel.run_process(main)

        assert run(3) == run(3)

    def test_else_when_nothing_ready(self, kernel):
        ch = Channel()

        def main():
            result = yield Select(
                ReceiveGuard(ch), else_=True, else_value="polled"
            )
            return (result.index, result.value)

        assert kernel.run_process(main) == (-1, "polled")

    def test_guards_as_list(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, 1)
            result = yield Select([ReceiveGuard(ch)])
            return result.value

        assert kernel.run_process(main) == 1


class TestBlockingSelect:
    def test_blocks_until_guard_ready(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def sender():
            yield Delay(30)
            yield Send(ch, "late")

        def receiver():
            result = yield Select(ReceiveGuard(ch))
            return (result.value, kernel.clock.now)

        kernel.spawn(sender)
        proc = kernel.spawn(receiver)
        kernel.run()
        assert proc.result == ("late", 30)

    def test_first_event_wins(self):
        kernel = Kernel(costs=FREE)
        a, b = Channel(), Channel()

        def send_a():
            yield Delay(10)
            yield Send(a, "a")

        def send_b():
            yield Delay(5)
            yield Send(b, "b")

        def receiver():
            result = yield Select(ReceiveGuard(a), ReceiveGuard(b))
            return result.value

        kernel.spawn(send_a)
        kernel.spawn(send_b)
        proc = kernel.spawn(receiver)
        kernel.run()
        assert proc.result == "b"

    def test_two_receivers_one_message(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()
        done = []

        def receiver(tag):
            result = yield Select(ReceiveGuard(ch))
            done.append((tag, result.value))

        def sender():
            yield Delay(5)
            yield Send(ch, "only")

        kernel.spawn(receiver, 1, daemon=True)
        kernel.spawn(receiver, 2, daemon=True)
        kernel.spawn(sender)
        kernel.run()
        assert done == [(1, "only")]  # FIFO wake: first waiter gets it


class TestAcceptanceConditions:
    def test_condition_scans_queue(self, kernel):
        ch = Channel()

        def main():
            for value in (1, 2, 9, 3):
                yield Send(ch, value)
            result = yield Select(ReceiveGuard(ch, when=lambda v: v > 5))
            return (result.value, ch.peek_all())

        value, remaining = kernel.run_process(main)
        assert value == 9
        assert remaining == [(1,), (2,), (3,)]

    def test_condition_false_blocks(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def sender():
            yield Send(ch, 1)
            yield Delay(10)
            yield Send(ch, 100)

        def receiver():
            result = yield Select(ReceiveGuard(ch, when=lambda v: v >= 100))
            return result.value

        kernel.spawn(sender)
        proc = kernel.spawn(receiver)
        kernel.run()
        assert proc.result == 100

    def test_multi_field_condition(self, kernel):
        ch = Channel(types=(str, int))

        def main():
            yield Send(ch, "small", 1)
            yield Send(ch, "big", 10)
            result = yield Select(
                ReceiveGuard(ch, when=lambda tag, n: n > 5)
            )
            return result.value

        assert kernel.run_process(main) == ("big", 10)


class TestRuntimePriorities:
    def test_smallest_pri_wins(self, kernel):
        a, b = Channel(), Channel()

        def main():
            yield Send(a, "low-priority")
            yield Send(b, "high-priority")
            result = yield Select(
                ReceiveGuard(a, pri=10),
                ReceiveGuard(b, pri=1),
            )
            return result.value

        assert kernel.run_process(main) == "high-priority"

    def test_pri_beats_textual_order(self, kernel):
        a, b = Channel(), Channel()

        def main():
            yield Send(a, "first-listed")
            yield Send(b, "prioritized")
            result = yield Select(
                ReceiveGuard(a, pri=5),
                ReceiveGuard(b, pri=0),
            )
            return result.value

        assert kernel.run_process(main) == "prioritized"

    def test_pri_can_use_received_values(self, kernel):
        # §2.4: priorities "can possibly use values received by an accept,
        # await or receive appearing in the guard".
        a, b = Channel(), Channel()

        def main():
            yield Send(a, 40)
            yield Send(b, 7)
            result = yield Select(
                ReceiveGuard(a, pri=lambda v: v),
                ReceiveGuard(b, pri=lambda v: v),
            )
            return result.value

        assert kernel.run_process(main) == 7

    def test_unprioritized_sorts_after_prioritized(self, kernel):
        a, b = Channel(), Channel()

        def main():
            yield Send(a, "unprioritized")
            yield Send(b, "prioritized")
            result = yield Select(
                ReceiveGuard(a),
                ReceiveGuard(b, pri=999),
            )
            return result.value

        assert kernel.run_process(main) == "prioritized"


class TestWhenGuards:
    def test_true_boolean_guard_fires(self, kernel):
        def main():
            result = yield Select(WhenGuard(True, value="yes"))
            return result.value

        assert kernel.run_process(main) == "yes"

    def test_callable_condition(self, kernel):
        flag = {"on": True}

        def main():
            result = yield Select(WhenGuard(lambda: flag["on"], value="ok"))
            return result.value

        assert kernel.run_process(main) == "ok"

    def test_all_false_booleans_exhaust(self, kernel):
        def main():
            yield Select(WhenGuard(False), WhenGuard(False))

        with pytest.raises(GuardExhaustedError):
            kernel.run_process(main)

    def test_false_boolean_with_live_channel_blocks(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def sender():
            yield Delay(5)
            yield Send(ch, "msg")

        def main():
            result = yield Select(WhenGuard(False), ReceiveGuard(ch))
            return result.index

        kernel.spawn(sender)
        proc = kernel.spawn(main)
        kernel.run()
        assert proc.result == 1

    def test_empty_select_without_else_exhausts(self, kernel):
        def main():
            yield Select()

        with pytest.raises(GuardExhaustedError):
            kernel.run_process(main)

    def test_empty_select_with_else(self, kernel):
        def main():
            result = yield Select(else_=True, else_value="fallthrough")
            return result.value

        assert kernel.run_process(main) == "fallthrough"


class TestTimeoutGuard:
    def test_timeout_fires_after_ticks(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def main():
            result = yield Select(ReceiveGuard(ch), Timeout(25, value="timeout"))
            return (result.value, kernel.clock.now)

        kernel.spawn(main, daemon=False)
        proc = kernel.processes()[0]
        kernel.run()
        assert proc.result == ("timeout", 25)

    def test_message_preempts_timeout(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def sender():
            yield Delay(5)
            yield Send(ch, "quick")

        def main():
            result = yield Select(ReceiveGuard(ch), Timeout(1000))
            return result.value

        kernel.spawn(sender)
        proc = kernel.spawn(main)
        kernel.run()
        assert proc.result == "quick"
        # The cancelled timer must not drag the clock to 1000.
        assert kernel.clock.now < 100

    def test_zero_timeout_fires_immediately(self, kernel):
        def main():
            result = yield Select(Timeout(0, value="now"))
            return result.value

        assert kernel.run_process(main) == "now"

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1)


class TestGuardPollAccounting:
    def test_polls_counted(self):
        kernel = Kernel()
        ch = Channel()

        def main():
            yield Send(ch, 1)
            yield Select(ReceiveGuard(ch), ReceiveGuard(ch))

        kernel.run_process(main)
        assert kernel.stats.guard_polls >= 2
        assert kernel.stats.selects >= 1
        assert kernel.stats.commits >= 1

    def test_guard_poll_cost_charged(self):
        from repro.kernel import CostModel

        costs = CostModel(
            context_switch=0, process_create=0, lwp_create=0, send=0,
            receive=0, accept=0, start=0, await_=0, finish=0,
            guard_poll=5, dispatch=0,
        )
        kernel = Kernel(costs=costs)
        ch = Channel()

        def main():
            yield Send(ch, 1)
            yield Select(ReceiveGuard(ch), ReceiveGuard(ch))

        kernel.run_process(main)
        assert kernel.clock.now >= 10  # two polls x 5 ticks
