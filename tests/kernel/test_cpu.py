"""Unit tests for the CPU pool."""

import pytest

from repro.kernel.cpu import CpuPool


class TestInfinitePool:
    def test_work_never_queues(self):
        pool = CpuPool(None)
        assert pool.acquire(10, 100) == (10, 110)
        assert pool.acquire(10, 100) == (10, 110)

    def test_infinite_flag(self):
        assert CpuPool(None).infinite

    def test_utilization_reports_mean_parallelism(self):
        # No finite capacity to divide by: the infinite pool reports
        # busy ticks per elapsed tick (mean parallelism), not 0.0.
        pool = CpuPool(None)
        pool.acquire(0, 100)
        pool.acquire(0, 100)
        assert pool.utilization(100) == pytest.approx(2.0)
        assert pool.utilization(400) == pytest.approx(0.5)
        assert pool.utilization(0) == 0.0


class TestFinitePool:
    def test_single_cpu_serializes(self):
        pool = CpuPool(1)
        assert pool.acquire(0, 10) == (0, 10)
        assert pool.acquire(0, 10) == (10, 20)
        assert pool.acquire(0, 10) == (20, 30)

    def test_two_cpus_overlap_two(self):
        pool = CpuPool(2)
        assert pool.acquire(0, 10) == (0, 10)
        assert pool.acquire(0, 10) == (0, 10)
        assert pool.acquire(0, 10) == (10, 20)

    def test_idle_gap_respected(self):
        pool = CpuPool(1)
        pool.acquire(0, 5)
        # Work requested after the CPU is already free starts immediately.
        assert pool.acquire(50, 5) == (50, 55)

    def test_zero_duration(self):
        pool = CpuPool(1)
        assert pool.acquire(3, 0) == (3, 3)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CpuPool(1).acquire(0, -1)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            CpuPool(0)

    def test_utilization(self):
        pool = CpuPool(2)
        pool.acquire(0, 10)
        pool.acquire(0, 10)
        assert pool.utilization(10) == pytest.approx(1.0)
        assert pool.utilization(20) == pytest.approx(0.5)

    def test_busy_ticks_accumulate(self):
        pool = CpuPool(4)
        pool.acquire(0, 3)
        pool.acquire(0, 4)
        assert pool.busy_ticks == 7
