"""Regression: a Timeout guard anchors its deadline at first poll, so
reusing one across selects would silently keep the stale deadline.  The
guard now refuses re-arming with ValueError instead."""

import pytest

from repro.channels import Channel, ReceiveGuard, Send
from repro.kernel import Delay, Kernel, Select, Timeout
from repro.kernel.costs import FREE


def test_reuse_after_fire_raises():
    kernel = Kernel(costs=FREE)
    guard = Timeout(10, value="t")

    def main():
        yield Select(guard)  # fires at t=10, consuming the guard
        yield Select(guard)  # stale deadline: must refuse, not fire at t=10

    kernel.spawn(main, name="main")
    with pytest.raises(ValueError, match="re-armed"):
        kernel.run()


def test_reuse_after_losing_to_another_guard_raises():
    # Even when the *other* guard won, the anchored deadline is spent.
    kernel = Kernel(costs=FREE)
    ch = Channel()
    guard = Timeout(100, value="t")

    def sender():
        yield Delay(5)
        yield Send(ch, "msg")

    def main():
        result = yield Select(ReceiveGuard(ch), guard)
        assert result.value == "msg"
        yield Select(guard)

    kernel.spawn(sender, name="sender")
    kernel.spawn(main, name="main")
    with pytest.raises(ValueError, match="re-armed"):
        kernel.run()


def test_fresh_timeout_per_select_is_fine():
    kernel = Kernel(costs=FREE)
    fired = []

    def main():
        for _ in range(3):
            yield Select(Timeout(10, value="t"))
            fired.append(kernel.clock.now)

    kernel.spawn(main, name="main")
    kernel.run()
    assert fired == [10, 20, 30]
