"""Unit tests for tracing and stats plumbing."""

import pytest

from repro.kernel import Delay, Kernel, Spawn
from repro.kernel.stats import KernelStats
from repro.kernel.tracing import Trace, TraceEvent


class TestTrace:
    def test_disabled_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(0, "spawn", "p")
        assert len(trace) == 0

    def test_enabled_records(self):
        trace = Trace(enabled=True)
        trace.record(5, "spawn", "p", pid=1)
        assert len(trace) == 1
        event = trace.events()[0]
        assert event.time == 5
        assert event.kind == "spawn"
        assert event.detail["pid"] == 1

    def test_filtering(self):
        trace = Trace(enabled=True)
        trace.record(0, "spawn", "a")
        trace.record(1, "exit", "a")
        trace.record(2, "spawn", "b")
        assert trace.count("spawn") == 2
        assert trace.count("spawn", process="b") == 1
        assert [e.process for e in trace.events(kind="exit")] == ["a"]

    def test_capacity_bound(self):
        trace = Trace(enabled=True, capacity=3)
        for i in range(10):
            trace.record(i, "tick", "p")
        assert len(trace) == 3
        assert trace.events()[0].time == 7

    def test_listener(self):
        trace = Trace(enabled=True)
        seen = []
        trace.subscribe(seen.append)
        trace.record(0, "spawn", "p")
        assert len(seen) == 1

    def test_format(self):
        event = TraceEvent(time=3, kind="send", process="p", detail={"ch": "c"})
        text = event.format()
        assert "send" in text and "'c'" in text

    def test_kernel_trace_integration(self):
        kernel = Kernel(trace=True)

        def child():
            yield Delay(1)

        def main():
            yield Spawn(child)
            yield Delay(2)

        kernel.run_process(main)
        assert kernel.trace.count("spawn") == 2
        assert kernel.trace.count("exit") == 2

    def test_clear(self):
        trace = Trace(enabled=True)
        trace.record(0, "x", "p")
        trace.clear()
        assert len(trace) == 0


class TestKernelStats:
    def test_bump_custom_deprecated(self):
        stats = KernelStats()
        with pytest.warns(DeprecationWarning, match="typed counter"):
            stats.bump("widgets")
        with pytest.warns(DeprecationWarning):
            stats.bump("widgets", 4)
        assert stats.custom["widgets"] == 5

    def test_snapshot_includes_custom(self):
        stats = KernelStats()
        stats.custom["widgets"] = 2
        snap = stats.snapshot()
        assert snap["custom.widgets"] == 2

    def test_diff(self):
        stats = KernelStats()
        before = stats.snapshot()
        stats.sends = 10
        delta = stats.diff(before)
        assert delta["sends"] == 10
        assert delta["receives"] == 0
