"""Wait-for graph construction and cycle-naming DeadlockError."""

import pytest

from repro.core import AlpsObject, entry, manager_process
from repro.errors import DeadlockError
from repro.kernel import Delay, Kernel
from repro.kernel.waitgraph import WaitForSnapshot, build_wait_graph


class Alpha(AlpsObject):
    """Manager accepts ping, then calls into its peer before finishing."""

    @entry(returns=1)
    def ping(self):
        return "ping"

    @entry
    def nudge(self):
        pass

    @manager_process(intercepts=["ping", "nudge"])
    def mgr(self):
        call = yield self.accept("ping")
        yield self.peer.pong()  # blocks on Beta's manager
        yield from self.execute(call)


class Beta(AlpsObject):
    """Manager accepts pong, then calls back into Alpha: circular wait."""

    @entry(returns=1)
    def pong(self):
        return "pong"

    @manager_process(intercepts=["pong"])
    def mgr(self):
        call = yield self.accept("pong")
        yield self.peer.nudge()  # blocks on Alpha's manager: cycle closed
        yield from self.execute(call)


def _deadlocked_pair(kernel):
    a = Alpha(kernel, name="A")
    b = Beta(kernel, name="B")
    a.peer = b
    b.peer = a
    kernel.spawn(lambda: (yield a.ping()), name="client")
    return a, b


class TestCycleDiagnosis:
    def test_two_manager_cycle_named_in_error(self, kernel):
        a, b = _deadlocked_pair(kernel)
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        message = str(excinfo.value)
        # The full cycle is spelled out: both managers, both entries, the
        # slots involved.
        assert "wait-for cycle:" in message
        assert "A.manager" in message
        assert "B.manager" in message
        assert "B.pong[0]" in message
        assert "A.nudge[0]" in message

    def test_wait_for_snapshot_attached(self, kernel):
        a, b = _deadlocked_pair(kernel)
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        snapshot = excinfo.value.wait_for
        assert isinstance(snapshot, WaitForSnapshot)
        cycles = snapshot.cycles()
        assert len(cycles) == 1
        cycle = cycles[0]
        assert len(cycle) == 2
        # Structured edge labels: object / entry / slot per hop.
        hops = {(e.obj, e.entry, e.slot) for e in cycle}
        assert hops == {("B", "pong", 0), ("A", "nudge", 0)}
        assert all(e.definite for e in cycle)
        names = {e.src.name for e in cycle}
        assert names == {"A.manager", "B.manager"}

    def test_client_edge_on_fringe(self, kernel):
        a, b = _deadlocked_pair(kernel)
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        snapshot = excinfo.value.wait_for
        client = next(p for p in snapshot.processes if p.name == "client")
        edges = snapshot.edges_from(client)
        assert len(edges) == 1
        assert edges[0].obj == "A" and edges[0].entry == "ping"
        assert edges[0].dst.name == "A.manager"

    def test_timed_call_edges_not_definite(self, kernel):
        # A pending timeout can dissolve the wait, so the edge of a timed
        # call must be marked non-definite in any snapshot.
        from repro.errors import RemoteCallError

        class Shy(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                yield Delay(100)  # not receptive yet: the call waits
                call = yield self.accept("op")
                yield from self.execute(call)

        obj = Shy(kernel, name="S")
        holder = {}

        def probe():
            yield Delay(5)
            holder["snap"] = build_wait_graph(kernel)

        def client():
            with pytest.raises(RemoteCallError):
                yield obj.op(timeout=50)

        kernel.spawn(probe, name="probe")
        kernel.spawn(client, name="timed-client")
        kernel.run()
        snap = holder["snap"]
        timed_edges = [e for e in snap.edges if e.entry == "op"]
        assert timed_edges
        assert all(not e.definite for e in timed_edges)
        assert all(e.dst.name == "S.manager" for e in timed_edges)


class TestQuiescenceStillClean:
    def test_no_cycle_text_for_plain_blocked_process(self, kernel):
        # A process blocked on a channel with no sender: deadlock, but no
        # circular wait — the error reports no cycle and an empty graph
        # cycle list.
        from repro.channels import Channel, Receive

        ch = Channel(name="lonely")
        kernel.spawn(lambda: (yield Receive(ch)), name="receiver")
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        assert excinfo.value.wait_for is not None
        assert excinfo.value.wait_for.cycles() == []
        assert "wait-for cycle" not in str(excinfo.value)
