"""Integration-level tests of the kernel scheduler: priorities, virtual
time, CPU contention, joins, par, failure propagation, deadlock."""

import pytest

from repro.errors import DeadlockError, KernelError, ProcessError
from repro.kernel import (
    PRIORITY_MANAGER,
    PRIORITY_NORMAL,
    Charge,
    CostModel,
    Delay,
    Join,
    Kernel,
    Kill,
    Now,
    Par,
    Self,
    SetPriority,
    Spawn,
    Yield,
)
from repro.kernel.costs import FREE
from repro.kernel.process import ProcessState


class TestBasics:
    def test_run_process_returns_result(self):
        def main():
            yield Delay(1)
            return "done"

        assert Kernel().run_process(main) == "done"

    def test_plain_function_body(self):
        assert Kernel().run_process(lambda: 42) == 42

    def test_now_syscall(self):
        def main():
            yield Delay(7)
            return (yield Now())

        kernel = Kernel(costs=FREE)
        assert kernel.run_process(main) == 7

    def test_self_syscall(self):
        def main():
            me = yield Self()
            return me.name

        assert Kernel().run_process(main, name="myself") == "myself"

    def test_yield_reschedules(self):
        def main():
            yield Yield()
            return "ok"

        assert Kernel().run_process(main) == "ok"

    def test_non_syscall_yield_raises_in_process(self):
        def main():
            yield "not a syscall"

        with pytest.raises(ProcessError):
            Kernel().run_process(main)

    def test_run_not_reentrant(self):
        kernel = Kernel()

        def main():
            kernel.run()
            yield Delay(0)

        with pytest.raises(KernelError):
            kernel.run_process(main)


class TestVirtualTime:
    def test_delay_advances_clock(self):
        kernel = Kernel(costs=FREE)

        def main():
            yield Delay(100)

        kernel.run_process(main)
        assert kernel.clock.now == 100

    def test_parallel_delays_overlap(self):
        kernel = Kernel(costs=FREE)

        def sleeper():
            yield Delay(50)

        for _ in range(5):
            kernel.spawn(sleeper)
        kernel.run()
        assert kernel.clock.now == 50

    def test_charge_with_infinite_cpus_overlaps(self):
        kernel = Kernel(costs=FREE, num_cpus=None)

        def worker():
            yield Charge(50)

        for _ in range(4):
            kernel.spawn(worker)
        kernel.run()
        assert kernel.clock.now == 50

    def test_charge_with_one_cpu_serializes(self):
        kernel = Kernel(costs=FREE, num_cpus=1)

        def worker():
            yield Charge(50)

        for _ in range(4):
            kernel.spawn(worker)
        kernel.run()
        assert kernel.clock.now == 200

    def test_charge_with_two_cpus_halves(self):
        kernel = Kernel(costs=FREE, num_cpus=2)

        def worker():
            yield Charge(50)

        for _ in range(4):
            kernel.spawn(worker)
        kernel.run()
        assert kernel.clock.now == 100

    def test_negative_delay_rejected(self):
        def main():
            yield Delay(-1)

        with pytest.raises(KernelError):
            Kernel().run_process(main)

    def test_until_stops_early(self):
        kernel = Kernel(costs=FREE)

        def ticker():
            while True:
                yield Delay(10)

        kernel.spawn(ticker, daemon=True)
        kernel.run(until=55)
        assert kernel.clock.now == 55

    def test_run_resumable_after_until(self):
        kernel = Kernel(costs=FREE)
        ticks = []

        def ticker():
            for _ in range(10):
                yield Delay(10)
                ticks.append(kernel.clock.now)

        kernel.spawn(ticker)
        kernel.run(until=35)
        assert ticks == [10, 20, 30]
        kernel.run()
        assert ticks[-1] == 100


class TestPriorities:
    def test_higher_priority_runs_first_at_same_instant(self):
        kernel = Kernel(costs=FREE)
        order = []

        def proc(tag):
            order.append(tag)
            yield Delay(0)

        kernel.spawn(proc, "normal", priority=PRIORITY_NORMAL)
        kernel.spawn(proc, "manager", priority=PRIORITY_MANAGER)
        kernel.run()
        assert order[0] == "manager"

    def test_fifo_within_priority(self):
        kernel = Kernel(costs=FREE)
        order = []

        def proc(tag):
            order.append(tag)
            yield Delay(0)

        for tag in ("a", "b", "c"):
            kernel.spawn(proc, tag)
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_set_priority(self):
        kernel = Kernel(costs=FREE)

        def main():
            yield SetPriority(5)
            me = yield Self()
            return me.priority

        assert kernel.run_process(main) == 5

    def test_high_priority_charge_acquires_cpu_first(self):
        # Both become runnable at t=0 with one CPU: the high-priority
        # process's work runs first (the §3 receptive-manager argument).
        kernel = Kernel(costs=FREE, num_cpus=1)
        finish_times = {}

        def worker(tag, prio):
            yield Charge(10)
            finish_times[tag] = kernel.clock.now

        kernel.spawn(worker, "low", PRIORITY_NORMAL, priority=PRIORITY_NORMAL)
        kernel.spawn(worker, "high", PRIORITY_MANAGER, priority=PRIORITY_MANAGER)
        kernel.run()
        assert finish_times["high"] < finish_times["low"]


class TestSpawnJoin:
    def test_spawn_returns_process(self):
        def child():
            yield Delay(5)
            return "child-done"

        def main():
            proc = yield Spawn(child)
            result = yield Join(proc)
            return result

        assert Kernel().run_process(main) == "child-done"

    def test_join_already_finished(self):
        def child():
            return 7
            yield

        def main():
            proc = yield Spawn(child)
            yield Delay(10)
            return (yield Join(proc))

        assert Kernel().run_process(main) == 7

    def test_join_propagates_child_exception(self):
        def child():
            yield Delay(1)
            raise ValueError("child failed")

        def main():
            proc = yield Spawn(child)
            yield Join(proc)

        with pytest.raises(ValueError, match="child failed"):
            Kernel().run_process(main)

    def test_join_killed_process_raises(self):
        def child():
            yield Delay(100)

        def main():
            proc = yield Spawn(child)
            yield Kill(proc)
            yield Join(proc)

        with pytest.raises(ProcessError):
            Kernel().run_process(main)

    def test_kill_returns_whether_alive(self):
        def child():
            yield Delay(100)

        def main():
            proc = yield Spawn(child)
            first = yield Kill(proc)
            second = yield Kill(proc)
            return (first, second)

        assert Kernel().run_process(main) == (True, False)

    def test_unwatched_failure_propagates_out_of_run(self):
        kernel = Kernel()

        def crasher():
            yield Delay(1)
            raise RuntimeError("unwatched")

        kernel.spawn(crasher)
        with pytest.raises(RuntimeError, match="unwatched"):
            kernel.run()

    def test_spawn_cost_delays_heavy_child_start(self):
        costs = CostModel(
            process_create=100, lwp_create=1, context_switch=0, dispatch=0
        )
        kernel = Kernel(costs=costs)

        def child():
            yield Delay(0)
            return kernel.clock.now

        def main():
            proc = yield Spawn(child, lightweight=False)
            return (yield Join(proc))

        # Creation cost delays the child's first dispatch (§3: dynamic
        # process creation is expensive), not the creator's resume — the
        # asynchronous start must not stall the manager.
        assert kernel.run_process(main) >= 100

    def test_lightweight_child_starts_promptly(self):
        costs = CostModel(
            process_create=100, lwp_create=1, context_switch=0, dispatch=0
        )
        kernel = Kernel(costs=costs)

        def child():
            yield Delay(0)
            return kernel.clock.now

        def main():
            proc = yield Spawn(child, lightweight=True)
            return (yield Join(proc))

        assert kernel.run_process(main) <= 5


class TestPar:
    def test_par_runs_all_and_collects_results(self):
        def task(n):
            yield Delay(n)
            return n * 10

        def main():
            return (yield Par(lambda: task(3), lambda: task(1), lambda: task(2)))

        assert Kernel().run_process(main) == [30, 10, 20]

    def test_par_terminates_only_when_all_do(self):
        kernel = Kernel(costs=FREE)

        def task(n):
            yield Delay(n)

        def main():
            yield Par(lambda: task(5), lambda: task(50))
            return (yield Now())

        assert kernel.run_process(main) == 50

    def test_empty_par(self):
        def main():
            return (yield Par())

        assert Kernel().run_process(main) == []

    def test_par_accepts_list(self):
        def main():
            return (yield Par([lambda: 1, lambda: 2]))

        assert Kernel().run_process(main) == [1, 2]

    def test_par_propagates_failure(self):
        def bad():
            yield Delay(1)
            raise KeyError("nope")

        def main():
            yield Par(lambda: bad(), lambda: 1)

        with pytest.raises(KeyError):
            Kernel().run_process(main)

    def test_nested_par(self):
        def leaf(n):
            yield Delay(1)
            return n

        def branch(base):
            return (yield Par(lambda: leaf(base), lambda: leaf(base + 1)))

        def main():
            return (yield Par(lambda: branch(0), lambda: branch(10)))

        assert Kernel().run_process(main) == [[0, 1], [10, 11]]


class TestDeadlockDetection:
    def test_blocked_nondaemon_is_deadlock(self):
        from repro.channels import Channel, Receive

        kernel = Kernel()
        ch = Channel()

        def stuck():
            yield Receive(ch)

        kernel.spawn(stuck)
        with pytest.raises(DeadlockError) as exc:
            kernel.run()
        assert "stuck" in str(exc.value)

    def test_blocked_daemon_is_fine(self):
        from repro.channels import Channel, Receive

        kernel = Kernel()
        ch = Channel()

        def daemon():
            yield Receive(ch)

        kernel.spawn(daemon, daemon=True)
        kernel.run()  # no exception

    def test_deadlock_lists_blocked_processes(self):
        from repro.channels import Channel, Receive

        kernel = Kernel()
        a, b = Channel(name="a"), Channel(name="b")

        def p1():
            yield Receive(a)

        def p2():
            yield Receive(b)

        kernel.spawn(p1, name="first")
        kernel.spawn(p2, name="second")
        with pytest.raises(DeadlockError) as exc:
            kernel.run()
        assert len(exc.value.blocked) == 2


class TestStats:
    def test_counts_spawns_and_exits(self):
        kernel = Kernel()

        def child():
            yield Delay(1)

        def main():
            procs = []
            for _ in range(3):
                procs.append((yield Spawn(child)))
            for proc in procs:
                yield Join(proc)

        kernel.run_process(main)
        assert kernel.stats.spawns == 4  # main + 3 children
        assert kernel.stats.exits == 4

    def test_snapshot_and_diff(self):
        kernel = Kernel()
        before = kernel.stats.snapshot()

        def main():
            yield Delay(1)

        kernel.run_process(main)
        delta = kernel.stats.diff(before)
        assert delta["spawns"] == 1

    def test_work_ticks(self):
        kernel = Kernel()

        def main():
            yield Charge(25)

        kernel.run_process(main)
        assert kernel.stats.work_ticks == 25


class TestDeterminism:
    def test_same_seed_same_interleaving(self):
        def build():
            kernel = Kernel(seed=7, arbitration="random")
            order = []

            def proc(tag):
                yield Delay(1)
                order.append(tag)

            for tag in range(20):
                kernel.spawn(proc, tag)
            kernel.run()
            return order, kernel.clock.now

        assert build() == build()
