"""Wait-for graph DOT export: live snapshots, JSON round-trip, CLI."""

import json

import pytest

from repro.analysis import to_dot
from repro.analysis.cli import main
from repro.core import AlpsObject, entry, manager_process
from repro.errors import DeadlockError
from repro.kernel import Kernel


class Alpha(AlpsObject):
    @entry(returns=1)
    def ping(self):
        return "ping"

    @entry
    def nudge(self):
        pass

    @manager_process(intercepts=["ping", "nudge"])
    def mgr(self):
        call = yield self.accept("ping")
        yield self.peer.pong()
        yield from self.execute(call)


class Beta(AlpsObject):
    @entry(returns=1)
    def pong(self):
        return "pong"

    @manager_process(intercepts=["pong"])
    def mgr(self):
        call = yield self.accept("pong")
        yield self.peer.nudge()
        yield from self.execute(call)


@pytest.fixture
def snapshot(kernel):
    a = Alpha(kernel, name="A")
    b = Beta(kernel, name="B")
    a.peer = b
    b.peer = a
    kernel.spawn(lambda: (yield a.ping()), name="client")
    with pytest.raises(DeadlockError) as excinfo:
        kernel.run()
    return excinfo.value.wait_for


class TestToJson:
    def test_snapshot_serializes_completely(self, snapshot):
        data = json.loads(json.dumps(snapshot.to_json()))
        assert data["type"] == "wait_for"
        assert set(data["processes"]) == {"A.manager", "B.manager", "client"}
        assert len(data["edges"]) == 3
        for edge in data["edges"]:
            assert {"src", "dst", "label", "definite"} <= set(edge)
        # The cycle names both managers, as [src, dst] pairs.
        (cycle,) = data["cycles"]
        assert sorted(pair[0] for pair in cycle) == ["A.manager", "B.manager"]


class TestToDot:
    def test_live_snapshot_and_json_render_identically(self, snapshot):
        assert to_dot(snapshot) == to_dot(snapshot.to_json())

    def test_cycle_members_and_edges_are_highlighted(self, snapshot):
        dot = to_dot(snapshot)
        assert dot.startswith("digraph wait_for {")
        assert dot.rstrip().endswith("}")
        # Deadlocked managers are filled; the bystander client is not.
        assert '"A.manager" [style=filled' in dot
        assert '"B.manager" [style=filled' in dot
        assert '"client";' in dot
        # Cycle edges are red and bold; the client's edge is plain.
        assert dot.count("color=red, penwidth=2") == 2
        client_line = next(l for l in dot.splitlines() if l.startswith('  "client" ->'))
        assert "color=red" not in client_line
        # Labels carry the protocol description.
        assert "awaiting accept" in dot

    def test_indefinite_edges_are_dashed_and_labels_escaped(self):
        dot = to_dot({
            "type": "wait_for",
            "time": 9,
            "processes": ["p", "q"],
            "edges": [
                {"src": "p", "dst": "q", "label": 'say "hi"',
                 "definite": False},
            ],
            "pools": [],
            "cycles": [],
        })
        assert "style=dashed" in dot
        assert 'say \\"hi\\"' in dot
        assert 'label="wait-for graph at t=9"' in dot

    def test_exhausted_pools_render_as_boxes(self):
        dot = to_dot({
            "type": "wait_for",
            "time": 3,
            "processes": [],
            "edges": [],
            "pools": [
                {"obj": "spool", "entry": "print", "array_size": 2,
                 "waiting": 4, "holders": ["w1", "w2"]},
            ],
            "cycles": [],
        })
        assert "shape=box" in dot
        assert "spool.print[1..2] exhausted" in dot
        assert "4 caller(s) queued" in dot
        assert "w1\\nw2" in dot


class TestCli:
    def test_dot_flag_renders_a_snapshot_file(self, tmp_path, snapshot, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot.to_json()))
        assert main(["--dot", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph wait_for {")

    def test_dot_output_file(self, tmp_path, snapshot):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(snapshot.to_json()))
        out = tmp_path / "graph.dot"
        assert main(["--dot", str(snap), "-o", str(out)]) == 0
        assert out.read_text().startswith("digraph wait_for {")

    def test_dot_rejects_missing_and_non_snapshot_input(self, tmp_path):
        assert main(["--dot", str(tmp_path / "missing.json")]) == 2
        other = tmp_path / "other.json"
        other.write_text('{"rows": []}')
        assert main(["--dot", str(other)]) == 2
