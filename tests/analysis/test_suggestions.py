"""Fix-style suggestions on the arity findings (ALP105-ALP108)."""

from pathlib import Path

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent.parent / "fixtures" / "analysis"


def lint_fixture(name: str):
    return lint_source(
        (FIXTURES / name).read_text(encoding="utf-8"), path=name
    )


def by_code(findings, code):
    return [f for f in findings if f.code == code]


class TestArityFindingsCarrySuggestions:
    def test_alp105_intercept_arity(self):
        findings = by_code(
            lint_fixture("bad_alp105_intercept_arity.py"), "ALP105"
        )
        assert findings
        assert all(f.suggestion for f in findings)
        texts = " | ".join(f.suggestion for f in findings)
        # The param/result overcounts point at a corrected icpt(...), the
        # hidden-without-intercept one at the intercepts clause.
        assert "icpt(" in texts
        assert "intercepts" in texts

    def test_alp106_when_arity(self):
        findings = by_code(lint_fixture("bad_alp106_when_arity.py"), "ALP106")
        assert findings
        (finding,) = findings
        # The corrected lambda takes exactly the 1 intercepted param.
        assert finding.suggestion is not None
        assert "lambda p0:" in finding.suggestion

    def test_alp107_finish_result_arity(self):
        findings = by_code(
            lint_fixture("bad_alp107_finish_result_arity.py"), "ALP107"
        )
        assert findings
        (finding,) = findings
        assert finding.suggestion is not None
        # Combining a returns=1 entry: the only valid call shape.
        assert "yield Finish(call, r0)" in finding.suggestion

    def test_alp108_start_hidden_arity(self):
        findings = by_code(
            lint_fixture("bad_alp108_start_hidden_arity.py"), "ALP108"
        )
        assert findings
        (finding,) = findings
        assert finding.suggestion is not None
        assert "yield Start(call, h0)" in finding.suggestion
        assert "hidden_params=1" in finding.suggestion


class TestSuggestionPlumbing:
    def test_render_appends_fix_line(self):
        findings = by_code(
            lint_fixture("bad_alp108_start_hidden_arity.py"), "ALP108"
        )
        rendered = findings[0].render()
        assert "\n    fix: " in rendered

    def test_to_dict_carries_suggestion(self):
        findings = by_code(
            lint_fixture("bad_alp107_finish_result_arity.py"), "ALP107"
        )
        record = findings[0].to_dict()
        assert record["suggestion"] == findings[0].suggestion
        assert record["suggestion"]

    def test_non_arity_findings_have_no_suggestion(self):
        findings = lint_fixture("bad_alp101_never_accepted.py")
        assert findings
        for finding in findings:
            assert finding.suggestion is None
            assert "fix:" not in finding.render()

    def test_clean_fixtures_stay_clean(self):
        for name in (
            "good_alp105_arities_fit.py",
            "good_alp106_when_matches.py",
            "good_alp107_combining.py",
            "good_alp108_hidden_matches.py",
        ):
            assert lint_fixture(name) == []
