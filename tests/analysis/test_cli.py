"""CLI behavior of ``python -m repro.analysis`` / tools/alpslint.py."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import main

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

BAD_SOURCE = """\
from repro.core import AlpsObject, entry, manager_process


class Starved(AlpsObject):
    @entry
    def a(self):
        pass

    @entry
    def b(self):
        pass

    @manager_process(intercepts=["a", "b"])
    def mgr(self):
        while True:
            call = yield self.accept("a")
            yield from self.execute(call)
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "starved.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return str(path)


class TestMain:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, bad_file, capsys):
        assert main([bad_file]) == 1
        out = capsys.readouterr().out
        assert "ALP101" in out
        assert "starved.py" in out
        assert "1 error(s)" in out

    def test_json_format(self, bad_file, capsys):
        assert main(["--format", "json", bad_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "ALP101"
        assert payload[0]["obj"] == "Starved"
        assert payload[0]["title"] == "intercepted-never-accepted"

    def test_select_and_ignore(self, bad_file, capsys):
        assert main(["--select", "ALP111", bad_file]) == 0
        assert main(["--ignore", "ALP101", bad_file]) == 0
        assert main(["--ignore", "ALP111", bad_file]) == 1
        capsys.readouterr()

    def test_unknown_code_exits_two_listing_valid(self, bad_file, capsys):
        assert main(["--select", "ALP999", bad_file]) == 2
        err = capsys.readouterr().err
        assert "unknown code(s): ALP999" in err
        # The error enumerates every valid code so the user can correct
        # the invocation without opening the docs.
        assert "valid codes:" in err
        for code in ("ALP101", "ALP114", "ALP120", "ALP121"):
            assert code in err

    def test_unknown_ignore_code_exits_two(self, bad_file, capsys):
        assert main(["--ignore", "ALP000,ALP101", bad_file]) == 2
        assert "ALP000" in capsys.readouterr().err

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_missing_path_is_input_error(self, capsys):
        assert main(["/nonexistent/definitely_not_here"]) == 2
        capsys.readouterr()

    def test_syntax_error_is_input_error(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_list_checks(self, capsys):
        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "ALP101" in out and "ALP201" in out
        assert "ALP120" in out and "ALP121" in out


CYCLIC_SOURCE = """\
class A:
    @entry
    def p(self):
        yield self.peer.q()

    @manager_process(intercepts=["p"])
    def mgr(self):
        while True:
            call = yield self.accept("p")
            yield from self.execute(call)


class B:
    @entry
    def q(self):
        yield self.peer.p()

    @manager_process(intercepts=["q"])
    def mgr(self):
        while True:
            call = yield self.accept("q")
            yield from self.execute(call)


def build(kernel):
    a = A(kernel)
    b = B(kernel)
    a.peer = b
    b.peer = a
"""


@pytest.fixture
def cyclic_tree(tmp_path):
    (tmp_path / "cyc.py").write_text(CYCLIC_SOURCE, encoding="utf-8")
    return tmp_path


class TestWholeProgram:
    def test_cycle_exits_one(self, cyclic_tree, capsys):
        assert main(["--whole-program", str(cyclic_tree)]) == 1
        out = capsys.readouterr().out
        assert "ALP120" in out
        assert "predicted wait-for cycle" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["--whole-program", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_dot_export_on_stdout(self, cyclic_tree, capsys):
        # DOT goes to stdout, so findings text is suppressed — but the
        # exit code still reports the predicted cycle.
        assert main(["--whole-program", "--dot", str(cyclic_tree)]) == 1
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "ALP120" not in out
        assert "red" in out  # cycle edges highlighted

    def test_dot_export_to_file(self, cyclic_tree, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        code = main(
            ["--whole-program", "--dot", str(cyclic_tree), "-o", str(target)]
        )
        assert code == 1
        assert target.read_text(encoding="utf-8").startswith("digraph")
        # Findings still print when DOT went to a file.
        assert "ALP120" in capsys.readouterr().out

    def test_bare_dot_without_whole_program_is_usage_error(self, capsys):
        assert main(["--dot"]) == 2
        assert "--whole-program" in capsys.readouterr().err

    def test_select_filters_whole_program_findings(self, cyclic_tree, capsys):
        assert main(["--whole-program", "--ignore", "ALP120", str(cyclic_tree)]) == 0
        capsys.readouterr()


class TestSarif:
    def test_sarif_written_alongside_text(self, bad_file, tmp_path, capsys):
        target = tmp_path / "out.sarif"
        assert main(["--sarif", str(target), bad_file]) == 1
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "alpslint"
        results = run["results"]
        assert any(r["ruleId"] == "ALP101" for r in results)
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1  # SARIF is 1-based
        # Rule metadata only for codes actually reported.
        rules = run["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == {r["ruleId"] for r in results}
        # Normal text output still printed.
        assert "ALP101" in capsys.readouterr().out

    def test_sarif_with_whole_program(self, cyclic_tree, tmp_path, capsys):
        target = tmp_path / "wp.sarif"
        assert main(
            ["--whole-program", "--sarif", str(target), str(cyclic_tree)]
        ) == 1
        payload = json.loads(target.read_text(encoding="utf-8"))
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "ALP120" for r in results)
        capsys.readouterr()

    def test_clean_sarif_has_empty_results(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        target = tmp_path / "clean.sarif"
        assert main(["--sarif", str(target), str(tmp_path / "ok.py")]) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["runs"][0]["results"] == []
        capsys.readouterr()


class TestLaunchers:
    """The real entry points, run as subprocesses."""

    def test_python_dash_m(self, bad_file):
        env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", bad_file],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert proc.returncode == 1
        assert "ALP101" in proc.stdout

    def test_tools_wrapper_needs_no_pythonpath(self, bad_file):
        env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
        proc = subprocess.run(
            [sys.executable, os.path.join(ROOT, "tools", "alpslint.py"), bad_file],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert proc.returncode == 1
        assert "ALP101" in proc.stdout
