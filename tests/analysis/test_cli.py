"""CLI behavior of ``python -m repro.analysis`` / tools/alpslint.py."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import main

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

BAD_SOURCE = """\
from repro.core import AlpsObject, entry, manager_process


class Starved(AlpsObject):
    @entry
    def a(self):
        pass

    @entry
    def b(self):
        pass

    @manager_process(intercepts=["a", "b"])
    def mgr(self):
        while True:
            call = yield self.accept("a")
            yield from self.execute(call)
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "starved.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return str(path)


class TestMain:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, bad_file, capsys):
        assert main([bad_file]) == 1
        out = capsys.readouterr().out
        assert "ALP101" in out
        assert "starved.py" in out
        assert "1 error(s)" in out

    def test_json_format(self, bad_file, capsys):
        assert main(["--format", "json", bad_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "ALP101"
        assert payload[0]["obj"] == "Starved"
        assert payload[0]["title"] == "intercepted-never-accepted"

    def test_select_and_ignore(self, bad_file, capsys):
        assert main(["--select", "ALP111", bad_file]) == 0
        assert main(["--ignore", "ALP101", bad_file]) == 0
        assert main(["--ignore", "ALP111", bad_file]) == 1
        capsys.readouterr()

    def test_unknown_code_rejected(self, bad_file):
        with pytest.raises(SystemExit):
            main(["--select", "ALP999", bad_file])

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_missing_path_is_input_error(self, capsys):
        assert main(["/nonexistent/definitely_not_here"]) == 2
        capsys.readouterr()

    def test_syntax_error_is_input_error(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_list_checks(self, capsys):
        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "ALP101" in out and "ALP201" in out


class TestLaunchers:
    """The real entry points, run as subprocesses."""

    def test_python_dash_m(self, bad_file):
        env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", bad_file],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert proc.returncode == 1
        assert "ALP101" in proc.stdout

    def test_tools_wrapper_needs_no_pythonpath(self, bad_file):
        env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
        proc = subprocess.run(
            [sys.executable, os.path.join(ROOT, "tools", "alpslint.py"), bad_file],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert proc.returncode == 1
        assert "ALP101" in proc.stdout
