"""The bad/good fixture corpus keeps the linter honest both ways."""

import os

import pytest

from repro.analysis import CATALOGUE, lint_file
from repro.analysis.cli import check_corpus, expected_codes

CORPUS = os.path.join(os.path.dirname(__file__), "..", "fixtures", "analysis")


def corpus_files(prefix: str) -> list[str]:
    return sorted(
        name
        for name in os.listdir(CORPUS)
        if name.startswith(prefix) and name.endswith(".py")
    )


class TestCorpus:
    def test_corpus_is_paired_per_check(self):
        # Every static check (ALP1xx) has at least one positive and one
        # negative fixture; an empty corpus would be a silent skip.
        bad, good = corpus_files("bad_"), corpus_files("good_")
        assert len(bad) >= 13 and len(good) >= 13
        static_codes = {c for c in CATALOGUE if c.startswith("ALP1")}
        covered = set()
        for name in bad:
            with open(os.path.join(CORPUS, name), encoding="utf-8") as fh:
                covered |= expected_codes(fh.read())
        assert covered == static_codes

    @pytest.mark.parametrize("name", corpus_files("bad_"))
    def test_bad_fixture_reports_expected_codes(self, name):
        path = os.path.join(CORPUS, name)
        with open(path, encoding="utf-8") as fh:
            expected = expected_codes(fh.read())
        assert expected, f"{name} lacks an '# expect:' header"
        found = {f.code for f in lint_file(path)}
        assert expected <= found

    @pytest.mark.parametrize("name", corpus_files("good_"))
    def test_good_fixture_is_clean(self, name):
        findings = lint_file(os.path.join(CORPUS, name))
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_check_corpus_passes(self, capsys):
        assert check_corpus(CORPUS, __import__("sys").stdout) == 0

    def test_check_corpus_fails_on_empty_dir(self, tmp_path):
        import io

        stream = io.StringIO()
        assert check_corpus(str(tmp_path), stream) == 1
        assert "refusing to pass a vacuous check" in stream.getvalue()

    def test_check_corpus_fails_on_missing_dir(self, tmp_path):
        import io

        stream = io.StringIO()
        assert check_corpus(str(tmp_path / "nope"), stream) == 2

    def test_check_corpus_fails_on_wrong_expectation(self, tmp_path):
        import io

        (tmp_path / "bad_fake.py").write_text(
            "# expect: ALP113\nx = 1\n", encoding="utf-8"
        )
        (tmp_path / "good_fake.py").write_text("x = 1\n", encoding="utf-8")
        stream = io.StringIO()
        assert check_corpus(str(tmp_path), stream) == 1
        assert "FAIL bad_fake.py" in stream.getvalue()
