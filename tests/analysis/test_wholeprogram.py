"""Whole-program analyzer: call-graph resolution, effects, interference.

The resolution edge cases here pin the unknown-edge contract: an entry
call the dataflow cannot resolve must surface as an explicit
unknown-target edge — *never* as silence that would fake ALP120
cleanliness.
"""

import ast
import textwrap

from repro.analysis.wholeprogram import (
    analyze_paths,
    build_call_graph,
    build_program,
    callgraph_to_dot,
    check_interference,
    entry_effects,
    lint_module,
    predict_cycles,
)
from repro.analysis.model import extract_objects


def graph_of(source: str, path: str = "<source>"):
    tree = ast.parse(textwrap.dedent(source))
    program = build_program([(path, tree)])
    return build_call_graph(program)


def codes(findings) -> set[str]:
    return {f.code for f in findings}


MUTUAL = """
    class A:
        @entry
        def p(self):
            yield self.peer.q()

        @manager_process(intercepts=["p"])
        def mgr(self):
            while True:
                call = yield self.accept("p")
                yield from self.execute(call)

    class B:
        @entry
        def q(self):
            yield self.peer.p()

        @manager_process(intercepts=["q"])
        def mgr(self):
            while True:
                call = yield self.accept("q")
                yield from self.execute(call)

    def build(kernel):
        a = A(kernel)
        b = B(kernel)
        a.peer = b
        b.peer = a
"""


class TestCycles:
    def test_mutual_execute_cycle_predicted(self):
        findings = lint_module(textwrap.dedent(MUTUAL))
        assert codes(findings) == {"ALP120"}
        assert "predicted wait-for cycle" in findings[0].message
        # Full cycle in DeadlockError notation, naming both classes.
        assert "--[" in findings[0].message
        assert "A" in findings[0].message and "B" in findings[0].message

    def test_one_way_chain_clean(self):
        findings = lint_module(
            textwrap.dedent(
                """
                class Up:
                    @entry
                    def f(self):
                        yield self.down.g()

                class Down:
                    @entry
                    def g(self):
                        pass

                def build(kernel):
                    up = Up(kernel, down=Down(kernel))
                """
            )
        )
        assert findings == []

    def test_receptive_select_manager_not_blocking(self):
        # Managers sitting in a Select that still holds accept guards
        # stay receptive (§2.3 asynchrony) — a call into them creates no
        # manager-blocking edge, so the X<->Y body chain below, which is
        # acyclic at the body level, must not be flagged.
        findings = lint_module(
            textwrap.dedent(
                """
                class X:
                    @entry
                    def p(self):
                        yield self.y.q()

                    @manager_process(intercepts=["p"])
                    def mgr(self):
                        while True:
                            result = yield Select(
                                AcceptGuard(self, "p"), AwaitGuard(self, "p")
                            )
                            if result.index == 0:
                                yield Start(result.value)
                            else:
                                yield Finish(result.value)

                class Y:
                    @entry
                    def q(self):
                        yield self.x.r()

                    @manager_process(intercepts=["q"])
                    def mgr(self):
                        while True:
                            result = yield Select(
                                AcceptGuard(self, "q"), AwaitGuard(self, "q")
                            )
                            if result.index == 0:
                                yield Start(result.value)
                            else:
                                yield Finish(result.value)

                def build(kernel):
                    x = X(kernel)
                    y = Y(kernel)
                    x.y = y
                    y.x = x
                """
            )
        )
        assert findings == []

    def test_non_receptive_await_blocks(self):
        # A bare await_ (one-guard select, no accepts) makes the manager
        # non-receptive: manager -> body edge, closing the cycle through
        # the body's outbound call.
        findings = lint_module(
            textwrap.dedent(
                """
                class Gate:
                    @entry
                    def enter(self):
                        yield self.lock.acquire()

                    @manager_process(intercepts=["enter"])
                    def mgr(self):
                        while True:
                            call = yield self.accept("enter")
                            yield Start(call)
                            done = yield self.await_("enter", call=call)
                            yield Finish(done)

                class Lock:
                    @entry
                    def acquire(self):
                        yield self.gate.enter()

                    @manager_process(intercepts=["acquire"])
                    def mgr(self):
                        while True:
                            call = yield self.accept("acquire")
                            yield from self.execute(call)

                def build(kernel):
                    gate = Gate(kernel)
                    lock = Lock(kernel)
                    gate.lock = lock
                    lock.gate = gate
                """
            )
        )
        assert "ALP120" in codes(findings)


class TestResolution:
    def test_aliased_local_resolves(self):
        # x = self.backend; x.op() must resolve through the alias.
        graph = graph_of(
            """
            class Client:
                @entry
                def go(self):
                    target = self.backend
                    yield target.op()

            class Server:
                @entry
                def op(self):
                    pass

            def build(kernel):
                c = Client(kernel, backend=Server(kernel))
            """
        )
        labels = {e.describe() for e in graph.resolved_edges()}
        assert any("Server.op" in lbl for lbl in labels)
        assert not graph.unknown_edges()

    def test_collection_element_resolves(self):
        # Calls on elements of an instance collection (a sharded pool)
        # resolve to the element class.
        graph = graph_of(
            """
            class Router:
                @entry
                def route(self, i):
                    yield self.shards[i].put()

            class Shard:
                @entry
                def put(self):
                    pass

            def build(kernel):
                r = Router(kernel, shards=[Shard(kernel) for _ in range(4)])
            """
        )
        assert any(
            e.dst is not None and e.dst.cls == "Shard"
            for e in graph.resolved_edges()
        )
        assert not graph.unknown_edges()

    def test_unresolvable_target_yields_unknown_edge(self):
        # A dict-subscript receiver cannot be resolved: the analyzer must
        # record an explicit unknown edge, not stay silent.
        graph = graph_of(
            """
            class Hub:
                @entry
                def fanout(self):
                    yield self.table["x"].q()
            """
        )
        unknown = graph.unknown_edges()
        assert len(unknown) == 1
        assert "unresolved target" in unknown[0].label
        assert unknown[0].src.label == "Hub.fanout"

    def test_unknown_edges_never_fake_cycles(self):
        # Unknown edges are visible but cannot complete a cycle (no
        # false ALP120 from dynamic dispatch)...
        graph = graph_of(
            """
            class Hub:
                @entry
                def fanout(self):
                    yield self.table["x"].q()
            """
        )
        assert predict_cycles(graph) == []
        # ...and they are rendered in the DOT export so the uncertainty
        # is never invisible.
        dot = callgraph_to_dot(graph)
        assert '"?"' in dot and "dashed" in dot

    def test_ambiguous_class_name_resolves_to_unknown(self):
        # Two classes with the same name in different modules: resolving
        # through the name would be a guess, so the call goes unknown.
        modules = [
            (
                "m1.py",
                ast.parse(
                    textwrap.dedent(
                        """
                        class Dup:
                            @entry
                            def op(self):
                                pass
                        """
                    )
                ),
            ),
            (
                "m2.py",
                ast.parse(
                    textwrap.dedent(
                        """
                        class Dup:
                            @entry
                            def op(self):
                                yield None

                        class User:
                            @entry
                            def go(self):
                                yield self.dup.op()

                        def build(kernel):
                            u = User(kernel, dup=Dup(kernel))
                        """
                    )
                ),
            ),
        ]
        program = build_program(modules)
        assert "Dup" in program.ambiguous
        graph = build_call_graph(program)
        assert graph.unknown_edges()

    def test_constructor_kwarg_wires_attribute(self):
        graph = graph_of(
            """
            class Holder:
                @entry
                def go(self):
                    yield self.dep.op()

            class Dep:
                @entry
                def op(self):
                    pass

            def build(kernel):
                h = Holder(kernel, dep=Dep(kernel))
            """
        )
        assert any(
            e.dst is not None and e.dst.cls == "Dep"
            for e in graph.resolved_edges()
        )


class TestEffects:
    def obj_of(self, source: str):
        tree = ast.parse(textwrap.dedent(source))
        return extract_objects(tree, managed_only=False)[0]

    def test_reads_and_writes_separated(self):
        obj = self.obj_of(
            """
            class C:
                @entry
                def e(self):
                    self.total += self.step
                    return self.limit
            """
        )
        fx = entry_effects(obj, "e")
        assert "total" in fx.writes
        assert {"step", "limit"} <= fx.reads
        assert "limit" not in fx.writes

    def test_mutating_method_call_is_write(self):
        obj = self.obj_of(
            """
            class C:
                @entry
                def e(self):
                    self.buf.append(1)
                    return self.index.get("k")
            """
        )
        fx = entry_effects(obj, "e")
        assert "buf" in fx.writes
        assert "index" in fx.reads and "index" not in fx.writes

    def test_helper_inlining_with_recursion(self):
        obj = self.obj_of(
            """
            class C:
                @entry
                def e(self):
                    self.helper()

                def helper(self):
                    self.depth += 1
                    self.helper()
            """
        )
        fx = entry_effects(obj, "e")
        assert "depth" in fx.writes

    def test_subscript_store_is_container_write(self):
        obj = self.obj_of(
            """
            class C:
                @entry
                def e(self, k, v):
                    self.table[k] = v
            """
        )
        fx = entry_effects(obj, "e")
        assert "table" in fx.writes


class TestInterference:
    def check(self, source: str):
        tree = ast.parse(textwrap.dedent(source))
        obj = extract_objects(tree, managed_only=False)[0]
        return check_interference(obj)

    def test_overlapping_writes_flagged(self):
        findings = self.check(
            """
            class C:
                @entry(compatible="g")
                def a(self):
                    self.x = 1

                @entry(compatible="g")
                def b(self):
                    self.x = 2
            """
        )
        assert codes(findings) == {"ALP121"}
        assert "self.x" in findings[0].message

    def test_read_write_overlap_flagged(self):
        findings = self.check(
            """
            class C:
                @entry(compatible="g")
                def a(self):
                    self.x = 1

                @entry(returns=1, compatible="g")
                def b(self):
                    return self.x
            """
        )
        assert codes(findings) == {"ALP121"}

    def test_disjoint_effects_clean(self):
        findings = self.check(
            """
            class C:
                @entry(compatible="g")
                def a(self):
                    self.x = 1

                @entry(compatible="g")
                def b(self):
                    self.y = 2
            """
        )
        assert findings == []

    def test_read_read_overlap_clean(self):
        findings = self.check(
            """
            class C:
                @entry(returns=1, compatible="g")
                def a(self):
                    return self.x

                @entry(returns=1, compatible="g")
                def b(self):
                    return self.x
            """
        )
        assert findings == []

    def test_different_groups_not_compared(self):
        findings = self.check(
            """
            class C:
                @entry(compatible="g1")
                def a(self):
                    self.x = 1

                @entry(compatible="g2")
                def b(self):
                    self.x = 2
            """
        )
        assert findings == []

    def test_unresolvable_annotation_skipped(self):
        # compatible=GROUPS is syntactically opaque: never-guess policy.
        findings = self.check(
            """
            class C:
                @entry(compatible=GROUPS)
                def a(self):
                    self.x = 1

                @entry(compatible="g")
                def b(self):
                    self.x = 2
            """
        )
        assert findings == []


class TestAnalyzePaths:
    def test_cross_file_cycle_found_only_when_merged(self, tmp_path):
        # The defining whole-program property: each module alone is
        # clean, the merged program has the cycle.
        (tmp_path / "a.py").write_text(
            textwrap.dedent(
                """
                class A:
                    @entry
                    def p(self):
                        yield self.peer.q()
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "b.py").write_text(
            textwrap.dedent(
                """
                class B:
                    @entry
                    def q(self):
                        yield self.peer.p()

                def build(kernel):
                    a = A(kernel)
                    b = B(kernel)
                    a.peer = b
                    b.peer = a
                """
            ),
            encoding="utf-8",
        )
        for single in ("a.py", "b.py"):
            findings = lint_module(
                (tmp_path / single).read_text(), path=single
            )
            assert findings == [], single
        _graph, findings = analyze_paths([tmp_path])
        assert "ALP120" in codes(findings)
