"""Live deadlock detection: cycles flagged before quiescence."""

import pytest

from repro.analysis import LiveDeadlockDetector
from repro.core import AlpsObject, entry, manager_process
from repro.errors import DeadlockError
from repro.kernel import Delay, Kernel


class Alpha(AlpsObject):
    @entry(returns=1)
    def ping(self):
        return "ping"

    @entry
    def nudge(self):
        pass

    @manager_process(intercepts=["ping", "nudge"])
    def mgr(self):
        call = yield self.accept("ping")
        yield self.peer.pong()
        yield from self.execute(call)


class Beta(AlpsObject):
    @entry(returns=1)
    def pong(self):
        return "pong"

    @manager_process(intercepts=["pong"])
    def mgr(self):
        call = yield self.accept("pong")
        yield self.peer.nudge()
        yield from self.execute(call)


def _wire(kernel):
    a = Alpha(kernel, name="A")
    b = Beta(kernel, name="B")
    a.peer, b.peer = b, a
    kernel.spawn(lambda: (yield a.ping()), name="client")
    return a, b


class TestLiveDetection:
    def test_cycle_flagged_before_quiescence(self, kernel):
        # A long-running bystander keeps the event queue non-empty, so
        # the quiescence check would not fire until t=10_000; the live
        # detector must raise orders of magnitude earlier.
        _wire(kernel)
        kernel.spawn(lambda: (yield Delay(10_000)), name="bystander")
        detector = LiveDeadlockDetector(kernel, interval=100)
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        assert kernel.clock.now < 1_000  # long before the bystander ends
        message = str(excinfo.value)
        assert "live deadlock" in message
        assert "A.manager" in message and "B.manager" in message
        assert excinfo.value.wait_for is not None
        assert detector.scans >= 1

    def test_record_only_mode(self, kernel):
        # raise_on_cycle=False records cycles and lets the run continue
        # to the ordinary quiescence deadlock report.
        _wire(kernel)
        kernel.spawn(lambda: (yield Delay(500)), name="bystander")
        detector = LiveDeadlockDetector(kernel, interval=100, raise_on_cycle=False)
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        assert kernel.clock.now >= 500  # quiescence, not the detector
        assert detector.cycles  # but the cycle was observed live
        assert "wait-for cycle" in str(excinfo.value)

    def test_timed_cycle_not_flagged(self, kernel):
        # The same topology with a timeout on the cross call is not a
        # definite cycle: the detector must stay silent and the timeout
        # must dissolve the wait.
        from repro.errors import RemoteCallError

        class Shy(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                yield Delay(400)
                call = yield self.accept("op")
                yield from self.execute(call)

        obj = Shy(kernel, name="S")

        def client():
            with pytest.raises(RemoteCallError):
                yield obj.op(timeout=300)

        kernel.spawn(client, name="client")
        LiveDeadlockDetector(kernel, interval=50)
        kernel.run()  # completes without DeadlockError

    def test_no_false_positive_on_healthy_pipeline(self, kernel):
        from repro.stdlib import BoundedBuffer

        buffer = BoundedBuffer(kernel, name="buf", size=2)

        def producer():
            for i in range(20):
                yield buffer.deposit(i)

        def consumer():
            for _ in range(20):
                yield buffer.remove()

        kernel.spawn(producer)
        kernel.spawn(consumer)
        LiveDeadlockDetector(kernel, interval=10)
        kernel.run()

    def test_stop(self, kernel):
        _wire(kernel)
        kernel.spawn(lambda: (yield Delay(1_000)), name="bystander")
        detector = LiveDeadlockDetector(kernel, interval=100)
        detector.stop()  # stopped before the first scan: never raises live
        with pytest.raises(DeadlockError):
            kernel.run()
        assert kernel.clock.now >= 1_000
        assert detector.scans == 0


class TestPoolExhaustion:
    def test_exhausted_hidden_array_reported(self, kernel):
        # One slot, a slow body holding it, and a queued second caller:
        # the detector surfaces the pressure without raising.
        class OneSlot(AlpsObject):
            @entry(array=1)
            def op(self, d):
                yield Delay(d)

            @manager_process(intercepts=["op"])
            def mgr(self):
                from repro.core import Finish, Start

                while True:
                    call = yield self.accept("op")
                    yield Start(call)
                    done = yield self.await_("op", call=call)
                    yield Finish(done)

        obj = OneSlot(kernel, name="P")
        kernel.spawn(lambda: (yield obj.op(300)), name="holder")
        kernel.spawn(lambda: (yield obj.op(10)), name="queued")
        detector = LiveDeadlockDetector(kernel, interval=50)
        kernel.run()
        report = detector.reports.get(("P", "op"))
        assert report is not None
        assert report.array_size == 1
        assert report.waiting >= 1
        assert report.holders
