"""Unit tests of the static ALPS protocol linter."""

import textwrap

import pytest

from repro.analysis import CATALOGUE, Severity, lint_class, lint_source
from repro.core import AlpsObject, entry, icpt, manager_process
from repro.errors import ProtocolError


def lint(src: str):
    return lint_source(PREAMBLE + textwrap.dedent(src))


def codes(findings) -> set:
    return {f.code for f in findings}


PREAMBLE = """
from repro.core import (
    AcceptGuard, AlpsObject, AwaitGuard, Finish, Select, Start,
    entry, icpt, manager_process,
)
"""


class TestBasics:
    def test_empty_module_is_clean(self):
        assert lint("x = 1") == []

    def test_class_without_manager_is_ignored(self):
        findings = lint(
            """
            class Plain(AlpsObject):
                @entry
                def op(self):
                    pass
            """
        )
        assert findings == []

    def test_never_accepted_entry(self):
        findings = lint(
            """
            class Bad(AlpsObject):
                @entry
                def a(self):
                    pass

                @entry
                def b(self):
                    pass

                @manager_process(intercepts=["a", "b"])
                def mgr(self):
                    while True:
                        call = yield self.accept("a")
                        yield from self.execute(call)
            """
        )
        assert codes(findings) == {"ALP101"}
        (finding,) = findings
        assert finding.entry == "b"
        assert finding.obj == "Bad"
        assert finding.severity is Severity.ERROR

    def test_findings_carry_position(self):
        findings = lint(
            """
            class Bad(AlpsObject):
                @entry
                def a(self):
                    pass

                @manager_process(intercepts=["a", "ghost"])
                def mgr(self):
                    while True:
                        call = yield self.accept("a")
                        yield from self.execute(call)
            """
        )
        assert codes(findings) == {"ALP112"}
        assert findings[0].line > 0


class TestDataflow:
    def test_select_result_value_tracks_candidates(self):
        # Start/Finish through `result.value` resolve to the select's
        # guard entries, so correct multi-entry managers stay clean.
        findings = lint(
            """
            class TwoPhase(AlpsObject):
                @entry
                def a(self):
                    pass

                @entry
                def b(self):
                    pass

                @manager_process(intercepts=["a", "b"])
                def mgr(self):
                    while True:
                        result = yield Select(
                            AcceptGuard(self, "a"),
                            AcceptGuard(self, "b"),
                            AwaitGuard(self, "a"),
                            AwaitGuard(self, "b"),
                        )
                        if isinstance(result.guard, AcceptGuard):
                            yield Start(result.value)
                        else:
                            yield Finish(result.value)
            """
        )
        assert findings == []

    def test_unknown_variable_falls_back_to_all_entries(self):
        # `Finish(queue.pop())` cannot be attributed, so it counts as
        # finish coverage for every intercepted entry: no ALP103 noise.
        findings = lint(
            """
            class Queued(AlpsObject):
                @entry
                def op(self):
                    pass

                @manager_process(intercepts=["op"])
                def mgr(self):
                    held = []
                    while True:
                        call = yield self.accept("op")
                        yield Start(call)
                        done = yield self.await_("op")
                        held.append(done)
                        yield Finish(held.pop())
            """
        )
        assert findings == []

    def test_nested_class_inside_function_is_linted(self):
        findings = lint(
            """
            def build():
                class Inner(AlpsObject):
                    @entry
                    def op(self):
                        pass

                    @manager_process(intercepts=["op"])
                    def mgr(self):
                        while True:
                            yield self.accept("op")
                return Inner
            """
        )
        # accept exists; no start/finish needed (call never completes is
        # not flagged — accept-only managers combine elsewhere); but the
        # accepted call is never executed/finished: that's not a check,
        # so the body is clean.
        assert findings == []

    def test_same_module_inheritance(self):
        findings = lint(
            """
            class Base(AlpsObject):
                @entry
                def op(self):
                    pass

            class Child(Base):
                @manager_process(intercepts=["op", "extra"])
                def mgr(self):
                    while True:
                        call = yield self.accept("op")
                        yield from self.execute(call)
            """
        )
        # `op` resolves through the base class; only `extra` is unknown.
        assert codes(findings) == {"ALP112"}
        assert findings[0].entry == "extra"


class TestArities:
    def test_combining_finish_accepts_returns_arity(self):
        findings = lint(
            """
            class Combiner(AlpsObject):
                @entry(returns=2)
                def op(self):
                    return (1, 2)

                @manager_process(intercepts=["op"])
                def mgr(self):
                    while True:
                        call = yield self.accept("op")
                        yield Finish(call, 1, 2)
            """
        )
        assert findings == []

    def test_awaited_finish_needs_icpt_results(self):
        findings = lint(
            """
            class Wrong(AlpsObject):
                @entry(returns=2)
                def op(self):
                    return (1, 2)

                @manager_process(intercepts={"op": icpt(results=1)})
                def mgr(self):
                    while True:
                        call = yield self.accept("op")
                        yield Start(call)
                        done = yield self.await_("op", call=call)
                        yield Finish(done, "a", "b", "c")
            """
        )
        assert codes(findings) == {"ALP107"}

    def test_starred_args_silence_arity_checks(self):
        findings = lint(
            """
            class Dynamic(AlpsObject):
                @entry(returns=1)
                def op(self):
                    return 1

                @manager_process(intercepts=["op"])
                def mgr(self):
                    while True:
                        call = yield self.accept("op")
                        results = (1,)
                        yield Finish(call, *results)
            """
        )
        assert findings == []


class TestReflectiveMode:
    def test_lint_class_clean(self):
        class Fine(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts={"op": icpt(results=1)})
            def mgr(self):
                while True:
                    call = yield self.accept("op")
                    yield from self.execute(call)

        assert lint_class(Fine) == []

    def test_lint_class_reports(self):
        class Starver(AlpsObject):
            @entry
            def op(self):
                pass

            @entry
            def starved(self):
                pass

            @manager_process(intercepts=["op", "starved"])
            def mgr(self):
                while True:
                    call = yield self.accept("op")
                    yield from self.execute(call)

        findings = lint_class(Starver)
        assert codes(findings) == {"ALP101"}
        assert findings[0].entry == "starved"


class TestStdlibAndExamplesClean:
    @pytest.mark.parametrize("tree", ["src/repro/stdlib", "examples", "src/repro"])
    def test_tree_is_clean(self, tree):
        import os

        from repro.analysis import lint_paths

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        findings = lint_paths([os.path.join(root, tree)])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestRuntimeCodeAlignment:
    """Runtime ProtocolError codes match the linter's finding codes."""

    def test_finish_without_await_raises_alp104(self, kernel):
        from repro.core import Finish, Start

        class Impatient(AlpsObject):
            @entry
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                call = yield self.accept("op")
                yield Start(call)
                yield Finish(call)

        obj = Impatient(kernel)
        kernel.spawn(lambda: (yield obj.op()))
        with pytest.raises(ProtocolError) as excinfo:
            kernel.run()
        assert excinfo.value.code == "ALP104"
        assert "[ALP104]" in str(excinfo.value)
        assert "ALP104" in CATALOGUE

    def test_start_hidden_arity_raises_alp108(self, kernel):
        from repro.core import Start

        class WrongHidden(AlpsObject):
            @entry(hidden_params=1)
            def op(self, device):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                call = yield self.accept("op")
                yield Start(call)  # missing the hidden device argument

        obj = WrongHidden(kernel)
        kernel.spawn(lambda: (yield obj.op()))
        with pytest.raises(ProtocolError) as excinfo:
            kernel.run()
        assert excinfo.value.code == "ALP108"

    def test_finish_result_arity_raises_alp107(self, kernel):
        from repro.core import Finish

        class OverGenerous(AlpsObject):
            @entry(returns=1)
            def op(self):
                return 1

            @manager_process(intercepts=["op"])
            def mgr(self):
                call = yield self.accept("op")
                yield Finish(call, 1, 2, 3)

        obj = OverGenerous(kernel)
        kernel.spawn(lambda: (yield obj.op()))
        with pytest.raises(ProtocolError) as excinfo:
            kernel.run()
        assert excinfo.value.code == "ALP107"

    def test_double_start_raises_alp201(self, kernel):
        from repro.core import Start

        class DoubleStart(AlpsObject):
            @entry
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                call = yield self.accept("op")
                yield Start(call)
                yield Start(call)

        obj = DoubleStart(kernel)
        kernel.spawn(lambda: (yield obj.op()))
        with pytest.raises(ProtocolError) as excinfo:
            kernel.run()
        assert excinfo.value.code == "ALP201"


class TestUnboundedRetry:
    """ALP114: retry() with max_attempts=None and no budget."""

    RETRY_PREAMBLE = "from repro.faults import FixedBackoff, retry\n"

    def lint_retry(self, src):
        return lint_source(self.RETRY_PREAMBLE + textwrap.dedent(src))

    def test_unbounded_retry_without_budget_flagged(self):
        findings = self.lint_retry(
            """
            def run(build):
                yield from retry(build, FixedBackoff(delay=5, max_attempts=None))
            """
        )
        assert codes(findings) == {"ALP114"}
        (finding,) = findings
        assert finding.severity is Severity.WARNING
        assert "budget" in finding.suggestion

    def test_budget_none_still_flagged(self):
        findings = self.lint_retry(
            """
            def run(build):
                yield from retry(
                    build, FixedBackoff(delay=5, max_attempts=None), budget=None
                )
            """
        )
        assert codes(findings) == {"ALP114"}

    def test_policy_keyword_form_flagged(self):
        findings = self.lint_retry(
            """
            def run(build):
                yield from retry(
                    build, policy=FixedBackoff(delay=5, max_attempts=None)
                )
            """
        )
        assert codes(findings) == {"ALP114"}

    def test_budgeted_retry_clean(self):
        findings = self.lint_retry(
            """
            def run(build, budget):
                yield from retry(
                    build,
                    FixedBackoff(delay=5, max_attempts=None),
                    budget=budget,
                )
            """
        )
        assert findings == []

    def test_bounded_policy_clean(self):
        findings = self.lint_retry(
            """
            def run(build):
                yield from retry(build, FixedBackoff(delay=5, max_attempts=3))
            """
        )
        assert findings == []

    def test_variable_held_policy_flagged(self):
        # Scope-aware: the unbounded policy is bound at module level and
        # the retry site in the nested scope sees the binding.
        findings = self.lint_retry(
            """
            POLICY = FixedBackoff(delay=5, max_attempts=None)

            def run(build):
                yield from retry(build, POLICY)
            """
        )
        assert codes(findings) == {"ALP114"}
        assert "'POLICY'" in findings[0].message

    def test_rebound_policy_clean(self):
        # Reassignment to a bounded constructor clears the binding.
        findings = self.lint_retry(
            """
            def run(build):
                policy = FixedBackoff(delay=5, max_attempts=None)
                policy = FixedBackoff(delay=5, max_attempts=3)
                yield from retry(build, policy)
            """
        )
        assert findings == []

    def test_method_site_variable_policy_flagged(self):
        findings = self.lint_retry(
            """
            class Reader:
                def read(self, build):
                    policy = ExponentialBackoff(base=2, max_attempts=None)
                    yield from retry(build, policy)
            """
        )
        assert codes(findings) == {"ALP114"}

    def test_nested_shadowing_is_local(self):
        # The inner bounded rebinding must not leak to the outer scope's
        # later retry site, and the outer binding still reaches it.
        findings = self.lint_retry(
            """
            def outer(build):
                policy = FixedBackoff(delay=5, max_attempts=None)

                def inner():
                    policy = FixedBackoff(delay=5, max_attempts=2)
                    yield from retry(build, policy)

                yield from retry(build, policy)
            """
        )
        assert codes(findings) == {"ALP114"}
        assert len(findings) == 1

    def test_unknown_binding_stays_silent(self):
        # A policy that arrives as a parameter or from a helper may be
        # bounded elsewhere; the linter does not guess.
        findings = self.lint_retry(
            """
            def run(build, policy):
                yield from retry(build, policy)

            def run2(build):
                policy = make_policy()
                yield from retry(build, policy)
            """
        )
        assert findings == []
