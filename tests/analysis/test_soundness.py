"""Soundness gate: static cycle prediction vs the live wait-for graph.

Every fixture in ``tests/fixtures/deadlock`` deadlocks at runtime with
at least one wait-for cycle.  The contract enforced here (and in CI) is
*zero false negatives on the corpus*: for every cycle the runtime graph
observes, the whole-program analyzer must statically predict a cycle
covering the same set of objects — the fixtures use default object
names, so runtime ``WaitEdge.obj`` labels equal class names and the two
sides compare directly.  The reverse direction (no false positives on
correct programs) is covered by the good-fixture corpus and by the
repo-wide ``--whole-program`` lint of ``src/repro`` + ``examples``.
"""

import glob
import importlib.util
import os

import pytest

from repro.analysis.wholeprogram import analyze_paths, cycle_class_sets
from repro.errors import DeadlockError
from repro.kernel import Kernel

CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "deadlock"
)


def corpus_files() -> list[str]:
    return sorted(glob.glob(os.path.join(CORPUS, "dl_*.py")))


def load_fixture(path: str):
    name = "dl_fixture_" + os.path.basename(path)[:-3]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def runtime_cycle_sets(path: str) -> list[set[str]]:
    """Object-name participant sets of every runtime wait-for cycle."""
    module = load_fixture(path)
    kernel = Kernel()
    module.build(kernel)
    with pytest.raises(DeadlockError) as excinfo:
        kernel.run()
    snapshot = excinfo.value.wait_for
    assert snapshot is not None
    return [
        {edge.obj for edge in cycle if edge.obj}
        for cycle in snapshot.cycles()
    ]


class TestSoundnessGate:
    def test_corpus_is_not_vacuous(self):
        assert len(corpus_files()) >= 4

    @pytest.mark.parametrize(
        "path", corpus_files(), ids=[os.path.basename(p) for p in corpus_files()]
    )
    def test_every_runtime_cycle_is_predicted(self, path):
        observed = runtime_cycle_sets(path)
        assert observed, (
            f"{os.path.basename(path)} deadlocked without a wait-for "
            f"cycle — fixture does not exercise the gate"
        )
        graph, findings = analyze_paths([path])
        predicted = cycle_class_sets(graph)
        assert predicted, f"{os.path.basename(path)}: no static prediction"
        for cycle_objs in observed:
            assert any(
                cycle_objs <= prediction for prediction in predicted
            ), (
                f"{os.path.basename(path)}: runtime cycle {cycle_objs} "
                f"not covered by any predicted cycle {predicted} "
                f"(FALSE NEGATIVE — the soundness contract is broken)"
            )

    @pytest.mark.parametrize(
        "path", corpus_files(), ids=[os.path.basename(p) for p in corpus_files()]
    )
    def test_prediction_carries_alp120_finding(self, path):
        _graph, findings = analyze_paths([path])
        codes = {f.code for f in findings}
        assert "ALP120" in codes
        cycle_findings = [f for f in findings if f.code == "ALP120"]
        # The finding names the full cycle in DeadlockError's notation.
        assert all("--[" in f.message for f in cycle_findings)
        assert all("predicted wait-for cycle" in f.message for f in cycle_findings)

    def test_clean_trees_stay_clean(self):
        # No false ALP120/ALP121 on the shipped library and examples —
        # the same invariant CI enforces with --whole-program.
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        _graph, findings = analyze_paths(
            [os.path.join(root, "src", "repro"), os.path.join(root, "examples")]
        )
        assert findings == [], "\n".join(f.render() for f in findings)
