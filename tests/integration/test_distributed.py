"""Distributed integration: objects spread over the §4 transputer grid."""

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.net import NetChannel, NetSend, transputer_grid
from repro.channels import Receive
from repro.stdlib import Barrier, BoundedBuffer, Dictionary


class TestDistributedPipeline:
    def test_three_stage_pipeline_across_nodes(self):
        # producer(t0_0) -> buffer(t1_1) -> transformer(t2_2) ->
        # buffer(t2_3) -> consumer(t3_3)
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4)
        stage1 = BoundedBuffer(kernel, size=4, name="stage1")
        stage2 = BoundedBuffer(kernel, size=4, name="stage2")
        net.node("t1_1").place(stage1)
        net.node("t2_3").place(stage2)

        def producer():
            for i in range(6):
                yield stage1.deposit(i)

        def transformer():
            for _ in range(6):
                value = yield stage1.remove()
                yield stage2.deposit(value * 10)

        def consumer():
            got = []
            for _ in range(6):
                got.append((yield stage2.remove()))
            return got

        net.node("t0_0").spawn(producer)
        net.node("t2_2").spawn(transformer)
        proc = net.node("t3_3").spawn(consumer)
        kernel.run()
        assert proc.result == [0, 10, 20, 30, 40, 50]
        assert net.traffic > 0

    def test_dictionary_shared_by_all_nodes(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 4, 4)
        dictionary = Dictionary(
            kernel, entries={"w": "meaning"}, search_max=16, search_work=10
        )
        net.node("t1_2").place(dictionary)
        procs = []
        for node in net.nodes():
            def client():
                return (yield dictionary.search("w"))

            procs.append(node.spawn(client))
        kernel.run()
        assert all(p.result == "meaning" for p in procs)
        # Concurrent identical searches from 16 nodes combine: far fewer
        # than 16 executions.
        assert dictionary.searches_executed < 16

    def test_barrier_synchronizes_grid(self):
        kernel = Kernel(costs=FREE)
        net = transputer_grid(kernel, 2, 2)
        barrier = Barrier(kernel, parties=4)
        net.node("t0_0").place(barrier)
        procs = []
        for node in net.nodes():
            def worker():
                rank, gen = yield barrier.arrive()
                return gen

            procs.append(node.spawn(worker))
        kernel.run()
        assert [p.result for p in procs] == [0, 0, 0, 0]


class TestMessagesToExecutingEntries:
    def test_caller_communicates_with_running_entry(self):
        # §2.2: "A user can also communicate with an executing entry
        # procedure using messages" — pass a channel as a parameter.
        from repro.core import AcceptGuard, AlpsObject, entry, manager_process
        from repro.kernel import Select
        from repro.channels import Channel, Send

        kernel = Kernel(costs=FREE)

        class Interactive(AlpsObject):
            @entry(returns=1, array=2)
            def session(self, inbox, outbox):
                yield Send(outbox, "ready")
                command = yield Receive(inbox)
                return f"did-{command}"

            @manager_process(intercepts=["session"])
            def mgr(self):
                from repro.core import AwaitGuard, Finish, Start

                while True:
                    result = yield Select(
                        AcceptGuard(self, "session"),
                        AwaitGuard(self, "session"),
                    )
                    if isinstance(result.guard, AcceptGuard):
                        yield Start(result.value)
                    else:
                        yield Finish(result.value)

        obj = Interactive(kernel)

        def client():
            inbox, outbox = Channel(), Channel()

            def call():
                return (yield obj.session(inbox, outbox))

            from repro.kernel import Spawn, Join

            call_proc = yield Spawn(call)
            status = yield Receive(outbox)
            assert status == "ready"
            yield Send(inbox, "work")
            return (yield Join(call_proc))

        assert kernel.run_process(client) == "did-work"
