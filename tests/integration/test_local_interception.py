"""§2.3: intercepting local procedures.

"If P and Q are two entry procedures of the object which call a common
local procedure R, then the manager can control the execution of P and Q
even after starting them by intercepting the calls to R.  This allows
programming the object so that the manager is solely responsible for the
scheduling."
"""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    local,
    manager_process,
)
from repro.kernel import Charge, Kernel, Par, Select
from repro.kernel.costs import FREE


class Store(AlpsObject):
    """Two concurrent entries funnel through one intercepted local
    critical section: the manager serializes `commit` while `p`/`q`
    bodies overlap freely."""

    def setup(self):
        self.log = []
        self.critical_active = 0
        self.critical_peak = 0

    @entry(returns=1, array=4)
    def p(self, n):
        yield Charge(10)                    # concurrent preamble
        result = yield self.call("commit", ("p", n))
        return result

    @entry(returns=1, array=4)
    def q(self, n):
        yield Charge(10)
        result = yield self.call("commit", ("q", n))
        return result

    @local(returns=1, array=4)
    def commit(self, item):
        # The critical section: must be mutually exclusive even though
        # p and q bodies run concurrently.
        self.critical_active += 1
        self.critical_peak = max(self.critical_peak, self.critical_active)
        yield Charge(5)
        self.log.append(item)
        self.critical_active -= 1
        return len(self.log)

    @manager_process(intercepts=["p", "q", "commit"])
    def mgr(self):
        committing = False
        while True:
            result = yield Select(
                AcceptGuard(self, "p"),
                AcceptGuard(self, "q"),
                # commit is admitted one at a time (mutual exclusion).
                AcceptGuard(self, "commit", when=lambda: not committing),
                AwaitGuard(self, "p"),
                AwaitGuard(self, "q"),
                AwaitGuard(self, "commit"),
            )
            call = result.value
            if isinstance(result.guard, AcceptGuard):
                if call.entry == "commit":
                    committing = True
                yield Start(call)
            else:
                if call.entry == "commit":
                    committing = False
                yield Finish(call)


class TestLocalInterception:
    def test_entries_overlap_but_critical_section_serializes(self):
        kernel = Kernel(costs=FREE)
        store = Store(kernel)

        def caller(kind, n):
            if kind == "p":
                return (yield store.p(n))
            return (yield store.q(n))

        def main():
            return (
                yield Par(
                    *[lambda i=i: caller("p", i) for i in range(3)],
                    *[lambda i=i: caller("q", i) for i in range(3)],
                )
            )

        results = kernel.run_process(main)
        assert sorted(results) == [1, 2, 3, 4, 5, 6]
        assert store.critical_peak == 1          # manager serialized R
        assert len(store.log) == 6
        # The 10-tick preambles overlapped: total well under serial.
        assert kernel.clock.now < 6 * (10 + 5)

    def test_local_proc_invisible_to_outsiders(self):
        from repro.errors import CallError

        kernel = Kernel(costs=FREE)
        store = Store(kernel)

        def intruder():
            yield store.call("commit", ("hack", 0))

        # self.call(..., from_inside=True) path is for the object itself;
        # outside callers have no descriptor for local procs and the
        # definition part does not export it.
        assert "commit" not in store.definition()

        def outside():
            from repro.core.primitives import EntryCall

            yield EntryCall(store, "commit", (("x", 1),))

        with pytest.raises(CallError):
            kernel.run_process(outside)

    def test_scheduling_policy_change_touches_only_manager(self):
        """The §1 modifiability claim: switching the commit policy from
        exclusive to 2-way concurrent is a manager-only edit."""

        class Store2(Store):
            @manager_process(intercepts=["p", "q", "commit"])
            def mgr(self):
                committing = 0
                while True:
                    result = yield Select(
                        AcceptGuard(self, "p"),
                        AcceptGuard(self, "q"),
                        AcceptGuard(self, "commit", when=lambda: committing < 2),
                        AwaitGuard(self, "p"),
                        AwaitGuard(self, "q"),
                        AwaitGuard(self, "commit"),
                    )
                    call = result.value
                    if isinstance(result.guard, AcceptGuard):
                        if call.entry == "commit":
                            committing += 1
                        yield Start(call)
                    else:
                        if call.entry == "commit":
                            committing -= 1
                        yield Finish(call)

        kernel = Kernel(costs=FREE)
        store = Store2(kernel)

        def caller(i):
            return (yield store.p(i))

        def main():
            return (yield Par(*[lambda i=i: caller(i) for i in range(6)]))

        kernel.run_process(main)
        assert store.critical_peak <= 2
        assert store.critical_peak >= 2  # the relaxed policy was used
