"""§2.3's nested-call scenario, both sides of the comparison.

"two objects X and Y can be programmed without deadlock such that an
entry procedure P in X calls a procedure Q in Y which in turn calls
another entry R in X ... Note that DP, Ada and SR suffer from the nested
calls problem."
"""

import pytest

from repro.baselines import AdaTask
from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.errors import DeadlockError
from repro.kernel import Kernel, Par, Select
from repro.kernel.costs import FREE


def make_async_object(kernel, name, entries):
    """Build an ALPS object whose manager starts everything eagerly."""

    namespace = {}
    for entry_name, body in entries.items():
        body.__name__ = entry_name
        namespace[entry_name] = entry(returns=1, array=4)(body)

    def mgr(self):
        while True:
            guards = []
            for entry_name in entries:
                guards.append(AcceptGuard(self, entry_name))
                guards.append(AwaitGuard(self, entry_name))
            result = yield Select(*guards)
            if isinstance(result.guard, AcceptGuard):
                yield Start(result.value)
            else:
                yield Finish(result.value)

    namespace["mgr"] = manager_process(intercepts=list(entries))(mgr)
    cls = type(name, (AlpsObject,), namespace)
    return cls(kernel, name=name)


class TestAlpsNestedCalls:
    def test_mutual_recursion_between_objects(self):
        kernel = Kernel(costs=FREE)
        holder = {}

        def p_body(self):
            value = yield holder["y"].q()
            return f"p<{value}>"

        def r_body(self):
            return "r"
            yield

        def q_body(self):
            value = yield holder["x"].r()
            return f"q<{value}>"

        holder["x"] = make_async_object(kernel, "X", {"p": p_body, "r": r_body})
        holder["y"] = make_async_object(kernel, "Y", {"q": q_body})

        def client():
            return (yield holder["x"].p())

        assert kernel.run_process(client) == "p<q<r>>"

    def test_deep_recursion_chain(self):
        # X.depth(n) -> Y.depth(n-1) -> X.depth(n-2) -> ... -> 0
        kernel = Kernel(costs=FREE)
        holder = {}

        def x_depth(self, n):
            if n <= 0:
                return 0
            value = yield holder["y"].depth(n - 1)
            return value + 1

        def y_depth(self, n):
            if n <= 0:
                return 0
            value = yield holder["x"].depth(n - 1)
            return value + 1

        holder["x"] = make_async_object(kernel, "X", {"depth": x_depth})
        holder["y"] = make_async_object(kernel, "Y", {"depth": y_depth})

        def client():
            return (yield holder["x"].depth(6))

        assert kernel.run_process(client) == 6

    def test_many_concurrent_nested_chains(self):
        kernel = Kernel(costs=FREE)
        holder = {}

        def p_body(self):
            value = yield holder["y"].q()
            return value

        def r_body(self):
            return 1
            yield

        def q_body(self):
            value = yield holder["x"].r()
            return value

        holder["x"] = make_async_object(kernel, "X", {"p": p_body, "r": r_body})
        holder["y"] = make_async_object(kernel, "Y", {"q": q_body})

        def client():
            return (yield holder["x"].p())

        def main():
            return (yield Par(*[lambda: client() for _ in range(4)]))

        assert kernel.run_process(main) == [1, 1, 1, 1]


class TestRendezvousNestedCalls:
    def test_same_shape_deadlocks(self):
        kernel = Kernel()

        def srv_x(x):
            while True:
                request = yield x.accept("p", "r")
                if request.entry == "p":
                    value = yield from tasks["y"].call("q")
                    yield x.reply(request, value)
                else:
                    yield x.reply(request, "r")

        def srv_y(y):
            while True:
                request = yield y.accept("q")
                value = yield from tasks["x"].call("r")
                yield y.reply(request, value)

        tasks = {
            "x": AdaTask(kernel, ["p", "r"], srv_x, name="X"),
            "y": AdaTask(kernel, ["q"], srv_y, name="Y"),
        }

        def client():
            return (yield from tasks["x"].call("p"))

        kernel.spawn(client)
        with pytest.raises(DeadlockError):
            kernel.run()
