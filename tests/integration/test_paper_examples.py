"""End-to-end runs of every worked example in the paper, asserting the
behavioural claims each section makes."""

import pytest

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import (
    Barrier,
    BoundedBuffer,
    Database,
    Dictionary,
    ParallelBuffer,
    Spooler,
)


class TestSection241BoundedBuffer:
    """§2.4.1: 'the basic synchronization possible in a manager'."""

    def test_producer_consumer_exchange(self):
        kernel = Kernel(costs=FREE)
        buffer = BoundedBuffer(kernel, size=4)

        def producer():
            for i in range(20):
                yield buffer.deposit(("msg", i))

        def consumer():
            got = []
            for _ in range(20):
                got.append((yield buffer.remove()))
            return got

        kernel.spawn(producer)
        consumer_proc = kernel.spawn(consumer)
        kernel.run()
        assert consumer_proc.result == [("msg", i) for i in range(20)]

    def test_no_parallel_execution_within_object(self):
        # §2.4.1 closes: "This first example ... does not illustrate
        # parallel execution within an object" — execute serializes.
        kernel = Kernel(costs=FREE)
        buffer = BoundedBuffer(kernel, size=4, work=10)

        def producer():
            for i in range(4):
                yield buffer.deposit(i)

        def consumer():
            for _ in range(4):
                yield buffer.remove()

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run()
        assert kernel.clock.now >= 8 * 10  # strictly serial bodies


class TestSection251ReadersWriters:
    """§2.5.1: hidden procedure array Read[1..ReadMax]."""

    def test_up_to_readmax_simultaneous_readers(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=4, read_work=100, initial={"k": 1})

        def reader(i):
            return (yield db.read("k"))

        def main():
            return (yield Par(*[lambda i=i: reader(i) for i in range(8)]))

        kernel.run_process(main)
        assert db.max_concurrent_readers == 4
        assert db.exclusion_violations == 0
        # 8 reads of 100 ticks with 4-way concurrency: ~2 waves.
        assert kernel.clock.now < 8 * 100

    def test_writers_exclusive(self):
        kernel = Kernel(costs=FREE)
        db = Database(kernel, read_max=4, initial={"k": 0})

        def writer(i):
            yield db.write("k", i)

        def reader(i):
            return (yield db.read("k"))

        def main():
            yield Par(
                *[lambda i=i: writer(i) for i in range(4)],
                *[lambda i=i: reader(i) for i in range(8)],
            )

        kernel.run_process(main)
        assert db.exclusion_violations == 0


class TestSection271Dictionary:
    """§2.7.1: 'it is wasteful to execute multiple Search processes that
    search for the meaning of the same word'."""

    def test_single_search_serves_all_duplicates(self):
        kernel = Kernel(costs=FREE)
        dictionary = Dictionary(
            kernel,
            entries={"alps": "a concurrent language"},
            search_max=8,
            search_work=200,
        )

        def query(i):
            return (yield dictionary.search("alps"))

        def main():
            return (yield Par(*[lambda i=i: query(i) for i in range(8)]))

        results = kernel.run_process(main)
        assert results == ["a concurrent language"] * 8
        assert dictionary.searches_executed == 1
        # One 200-tick search, not eight.
        assert kernel.stats.work_ticks == 200


class TestSection281Spooler:
    """§2.8.1: hidden parameter (printer) and hidden result (printer#)."""

    def test_printers_recycled_without_bookkeeping(self):
        kernel = Kernel(costs=FREE)
        spooler = Spooler(kernel, printers=2, speed=3, job_max=8)

        def job(i):
            yield spooler.print_file(f"job-{i}-{'#' * 24}")

        def main():
            yield Par(*[lambda i=i: job(i) for i in range(8)])

        kernel.run_process(main)
        total_jobs = sum(len(p.jobs) for p in spooler.printer_pool)
        assert total_jobs == 8
        # Both printers saw work (the pool cycled through hidden results).
        assert all(p.jobs for p in spooler.printer_pool)


class TestSection282ParallelBuffer:
    """§2.8.2: Free/Full slot lists, hidden Place parameter/result."""

    def test_parallel_copies_and_conservation(self):
        kernel = Kernel(costs=FREE)
        buffer = ParallelBuffer(
            kernel, size=6, producer_max=3, consumer_max=3, copy_work=50
        )
        received = []

        def producer(base):
            for i in range(4):
                yield buffer.deposit((base, i))

        def consumer():
            for _ in range(4):
                received.append((yield buffer.remove()))

        def main():
            yield Par(
                *[lambda b=b: producer(b) for b in range(3)],
                *[lambda: consumer() for _ in range(3)],
            )

        kernel.run_process(main)
        assert sorted(received) == [(b, i) for b in range(3) for i in range(4)]
        serial_estimate = 24 * 50  # 12 deposits + 12 removes, serial
        assert kernel.clock.now < serial_estimate / 2  # real overlap

    def test_slot_lists_return_to_initial_state(self):
        kernel = Kernel(costs=FREE)
        buffer = ParallelBuffer(kernel, size=4, copy_work=0)

        def main():
            for i in range(8):
                yield buffer.deposit(i)
                assert (yield buffer.remove()) == i

        kernel.run_process(main)


class TestManagerGeneralizesAbstractions:
    """§1: the same resource programmed four ways gives the same answers."""

    def test_buffer_semantics_identical_across_mechanisms(self):
        from repro.baselines import MonitorBuffer, PathBuffer, SemaphoreBuffer

        def run_manager():
            kernel = Kernel(costs=FREE)
            buf = BoundedBuffer(kernel, size=3)

            def producer():
                for i in range(9):
                    yield buf.deposit(i)

            def consumer():
                got = []
                for _ in range(9):
                    got.append((yield buf.remove()))
                return got

            kernel.spawn(producer)
            proc = kernel.spawn(consumer)
            kernel.run()
            return proc.result

        def run_baseline(cls):
            kernel = Kernel(costs=FREE)
            buf = cls(kernel, size=3)

            def producer():
                for i in range(9):
                    yield from buf.deposit(i)

            def consumer():
                got = []
                for _ in range(9):
                    got.append((yield from buf.remove()))
                return got

            kernel.spawn(producer)
            proc = kernel.spawn(consumer)
            kernel.run()
            return proc.result

        expected = list(range(9))
        assert run_manager() == expected
        for cls in (SemaphoreBuffer, MonitorBuffer, PathBuffer):
            assert run_baseline(cls) == expected
