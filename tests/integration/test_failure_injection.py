"""Failure injection: crashing bodies, guard exhaustion, misuse."""

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.errors import DeadlockError, GuardExhaustedError
from repro.kernel import Delay, Kernel, Par, Select
from repro.kernel.costs import FREE


class TestBodyFailures:
    def _crashy(self, kernel):
        class Crashy(AlpsObject):
            @entry(returns=1, array=2)
            def op(self, n):
                if n < 0:
                    raise ValueError(f"bad input {n}")
                return n

            @manager_process(intercepts=["op"])
            def mgr(self):
                while True:
                    result = yield Select(
                        AcceptGuard(self, "op"),
                        AwaitGuard(self, "op"),
                    )
                    if isinstance(result.guard, AcceptGuard):
                        yield Start(result.value)
                    else:
                        yield Finish(result.value)

        return Crashy(kernel)

    def test_body_exception_reaches_caller(self, kernel):
        obj = self._crashy(kernel)

        def main():
            return (yield obj.op(-1))

        with pytest.raises(ValueError, match="bad input"):
            kernel.run_process(main)

    def test_object_survives_body_failure(self, kernel):
        obj = self._crashy(kernel)

        def main():
            try:
                yield obj.op(-1)
            except ValueError:
                pass
            return (yield obj.op(5))  # slot was freed; object still works

        assert kernel.run_process(main) == 5

    def test_unmanaged_body_failure_reaches_caller(self, kernel):
        class Bare(AlpsObject):
            @entry(returns=1)
            def op(self):
                raise RuntimeError("bare failure")

        obj = Bare(kernel)

        def main():
            return (yield obj.op())

        with pytest.raises(RuntimeError, match="bare failure"):
            kernel.run_process(main)

    def test_sibling_calls_unaffected_by_failure(self):
        kernel = Kernel(costs=FREE)
        obj = self._crashy(kernel)
        outcomes = []

        def good(n):
            outcomes.append((yield obj.op(n)))

        def bad():
            try:
                yield obj.op(-1)
            except ValueError:
                outcomes.append("failed")

        def main():
            yield Par(lambda: good(1), lambda: bad(), lambda: good(2))

        kernel.run_process(main)
        assert sorted(str(o) for o in outcomes) == ["1", "2", "failed"]


class TestManagerFailures:
    def test_manager_guard_exhaustion_is_loud(self):
        kernel = Kernel()

        class BadManager(AlpsObject):
            @entry
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                from repro.core import WhenGuard

                yield Select(WhenGuard(False))  # can never fire

        BadManager(kernel)
        with pytest.raises(GuardExhaustedError):
            kernel.run()

    def test_dead_manager_leaves_callers_deadlocked(self):
        kernel = Kernel()

        class QuitterManager(AlpsObject):
            @entry
            def op(self):
                pass

            @manager_process(intercepts=["op"])
            def mgr(self):
                yield Delay(1)  # returns without ever accepting

        obj = QuitterManager(kernel)

        def main():
            yield obj.op()

        with pytest.raises(DeadlockError):
            kernel.run_process(main)


class TestInvariantUnderChaos:
    def test_buffer_conserves_messages_with_failing_consumers(self):
        from repro.stdlib import BoundedBuffer

        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=3)
        received = []

        def producer():
            for i in range(10):
                yield buf.deposit(i)

        def flaky_consumer(crash_after):
            for n in range(crash_after):
                received.append((yield buf.remove()))
            raise RuntimeError("consumer died")

        def reliable_consumer(count):
            for _ in range(count):
                received.append((yield buf.remove()))

        def main():
            yield Par(lambda: producer(), lambda: reliable_consumer(7))

        def crasher():
            try:
                yield from flaky_consumer(3)
            except RuntimeError:
                pass

        kernel.spawn(crasher)
        kernel.run_process(main)
        assert sorted(received) == list(range(10))
