"""Unit tests for counting semaphores."""

import pytest

from repro.baselines import P, Semaphore, V, p_all, v_all
from repro.errors import AlpsError, DeadlockError
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE


class TestSemaphore:
    def test_initial_value(self):
        assert Semaphore(3).value == 3

    def test_negative_initial_rejected(self):
        with pytest.raises(AlpsError):
            Semaphore(-1)

    def test_p_decrements(self, kernel):
        sem = Semaphore(2)

        def main():
            yield P(sem)
            return sem.value

        assert kernel.run_process(main) == 1

    def test_v_increments(self, kernel):
        sem = Semaphore(0)

        def main():
            yield V(sem)
            return sem.value

        assert kernel.run_process(main) == 1

    def test_p_blocks_at_zero(self):
        kernel = Kernel(costs=FREE)
        sem = Semaphore(0)

        def releaser():
            yield Delay(30)
            yield V(sem)

        def acquirer():
            yield P(sem)
            return kernel.clock.now

        kernel.spawn(releaser)
        proc = kernel.spawn(acquirer)
        kernel.run()
        assert proc.result == 30

    def test_blocked_p_deadlocks_without_v(self):
        kernel = Kernel()
        sem = Semaphore(0)

        def acquirer():
            yield P(sem)

        kernel.spawn(acquirer)
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_fifo_wakeup(self):
        kernel = Kernel(costs=FREE)
        sem = Semaphore(0)
        order = []

        def acquirer(tag, delay):
            yield Delay(delay)
            yield P(sem)
            order.append(tag)

        def releaser():
            yield Delay(50)
            for _ in range(3):
                yield V(sem)

        kernel.spawn(acquirer, "first", 1)
        kernel.spawn(acquirer, "second", 2)
        kernel.spawn(acquirer, "third", 3)
        kernel.spawn(releaser)
        kernel.run()
        assert order == ["first", "second", "third"]

    def test_mutex_excludes(self):
        kernel = Kernel(costs=FREE)
        mutex = Semaphore(1)
        active = {"count": 0, "peak": 0}

        def worker():
            yield P(mutex)
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield Delay(5)
            active["count"] -= 1
            yield V(mutex)

        def main():
            yield Par(*[lambda: worker() for _ in range(6)])

        kernel.run_process(main)
        assert active["peak"] == 1

    def test_counters(self, kernel):
        sem = Semaphore(1)

        def main():
            yield P(sem)
            yield V(sem)

        kernel.run_process(main)
        assert sem.total_p == 1
        assert sem.total_v == 1

    def test_p_all_v_all(self, kernel):
        a, b = Semaphore(1), Semaphore(1)

        def main():
            yield from p_all(a, b)
            held = (a.value, b.value)
            yield from v_all(a, b)
            return held

        assert kernel.run_process(main) == (0, 0)
        assert (a.value, b.value) == (1, 1)
