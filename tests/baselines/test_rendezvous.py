"""Tests for Ada-style rendezvous tasks and the nested-call problem."""

import pytest

from repro.baselines import AdaTask
from repro.errors import CallError, DeadlockError
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE


class TestRendezvous:
    def test_basic_call(self, kernel):
        def server(task):
            while True:
                req = yield task.accept("double")
                yield task.reply(req, req.args[0] * 2)

        task = AdaTask(kernel, ["double"], server)

        def client():
            return (yield from task.call("double", 21))

        assert kernel.run_process(client) == 42

    def test_unknown_entry_rejected(self, kernel):
        task = AdaTask(kernel, ["p"])

        def client():
            return (yield from task.call("q"))

        with pytest.raises(CallError):
            kernel.run_process(client)

    def test_selective_accept(self, kernel):
        log = []

        def server(task):
            for _ in range(2):
                req = yield task.accept("a", "b")
                log.append(req.entry)
                yield task.reply(req)

        task = AdaTask(kernel, ["a", "b"], server)

        def client():
            yield from task.call("b")
            yield from task.call("a")

        kernel.run_process(client)
        assert log == ["b", "a"]

    def test_pending_count(self):
        kernel = Kernel(costs=FREE)

        def server(task):
            yield Delay(50)
            counts.append(task.pending("p"))
            while True:
                req = yield task.accept("p")
                yield task.reply(req)

        counts = []
        task = AdaTask(kernel, ["p"], server)

        def client():
            yield from task.call("p")

        def main():
            yield Par(*[lambda: client() for _ in range(3)])

        kernel.run_process(main)
        assert counts == [3]

    def test_server_serves_one_call_at_a_time(self):
        kernel = Kernel(costs=FREE)
        active = {"count": 0, "peak": 0}

        def server(task):
            while True:
                req = yield task.accept("work")
                active["count"] += 1
                active["peak"] = max(active["peak"], active["count"])
                yield Delay(10)
                active["count"] -= 1
                yield task.reply(req)

        task = AdaTask(kernel, ["work"], server)

        def client():
            yield from task.call("work")

        def main():
            yield Par(*[lambda: client() for _ in range(4)])

        kernel.run_process(main)
        assert active["peak"] == 1  # rendezvous = serial service


class TestNestedCallProblem:
    """§2.3: 'DP, Ada and SR suffer from the nested calls problem.'"""

    def _build_tasks(self, kernel):
        def srv_x(x_task):
            while True:
                req = yield x_task.accept("p", "r")
                if req.entry == "p":
                    value = yield from y_task.call("q")
                    yield x_task.reply(req, value)
                else:
                    yield x_task.reply(req, "r-result")

        def srv_y(yt):
            while True:
                req = yield yt.accept("q")
                value = yield from x_task.call("r")  # calls back into X
                yield yt.reply(req, value)

        x_task = AdaTask(kernel, ["p", "r"], srv_x, name="X")
        y_task = AdaTask(kernel, ["q"], srv_y, name="Y")
        return x_task, y_task

    def test_rendezvous_deadlocks_on_nested_callback(self):
        kernel = Kernel()
        x_task, _y = self._build_tasks(kernel)

        def client():
            return (yield from x_task.call("p"))

        kernel.spawn(client)
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_alps_manager_survives_same_shape(self, kernel):
        # The manager version of the same X.P -> Y.Q -> X.R chain
        # completes because start is asynchronous (§2.3).
        from repro.core import AcceptGuard, AlpsObject, AwaitGuard, Finish, Start, entry, manager_process
        from repro.kernel import Select

        class X(AlpsObject):
            @entry(returns=1, array=2)
            def p(self):
                value = yield y_obj.q()
                return f"p({value})"

            @entry(returns=1, array=2)
            def r(self):
                return "r-result"

            @manager_process(intercepts=["p", "r"])
            def mgr(self):
                while True:
                    result = yield Select(
                        AcceptGuard(self, "p"),
                        AcceptGuard(self, "r"),
                        AwaitGuard(self, "p"),
                        AwaitGuard(self, "r"),
                    )
                    if isinstance(result.guard, AcceptGuard):
                        yield Start(result.value)
                    else:
                        yield Finish(result.value)

        class Y(AlpsObject):
            @entry(returns=1, array=2)
            def q(self):
                value = yield x_obj.r()
                return f"q({value})"

            @manager_process(intercepts=["q"])
            def mgr(self):
                while True:
                    result = yield Select(
                        AcceptGuard(self, "q"),
                        AwaitGuard(self, "q"),
                    )
                    if isinstance(result.guard, AcceptGuard):
                        yield Start(result.value)
                    else:
                        yield Finish(result.value)

        x_obj = X(kernel)
        y_obj = Y(kernel)

        def client():
            return (yield x_obj.p())

        assert kernel.run_process(client) == "p(q(r-result))"
