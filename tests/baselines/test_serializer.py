"""Unit tests for the serializer."""

import pytest

from repro.baselines import Serializer
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE


class TestPossession:
    def test_enter_leave(self, kernel):
        s = Serializer(kernel)

        def main():
            yield from s.enter()
            yield from s.leave()
            return "ok"

        assert kernel.run_process(main) == "ok"

    def test_possession_is_exclusive(self):
        kernel = Kernel(costs=FREE)
        s = Serializer(kernel)
        active = {"count": 0, "peak": 0}

        def worker():
            yield from s.enter()
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield Delay(5)
            active["count"] -= 1
            yield from s.leave()

        def main():
            yield Par(*[lambda: worker() for _ in range(4)])

        kernel.run_process(main)
        assert active["peak"] == 1


class TestCrowds:
    def test_crowd_releases_possession(self):
        kernel = Kernel(costs=FREE)
        s = Serializer(kernel)
        crowd = s.crowd("users")

        def member(tag):
            yield from s.enter()

            def body():
                yield Delay(20)
                return tag

            result = yield from s.join_crowd(crowd, body())
            yield from s.leave()
            return result

        def main():
            return (yield Par(lambda: member("a"), lambda: member("b")))

        assert kernel.run_process(main) == ["a", "b"]
        # Both were in the crowd simultaneously: total time ~one body.
        assert kernel.clock.now < 40
        assert crowd.peak == 2

    def test_crowd_counts(self, kernel):
        s = Serializer(kernel)
        crowd = s.crowd("c")

        def main():
            yield from s.enter()

            def body():
                yield Delay(1)

            yield from s.join_crowd(crowd, body())
            yield from s.leave()

        kernel.run_process(main)
        assert crowd.empty
        assert crowd.peak == 1


class TestQueues:
    def test_guard_blocks_until_open(self):
        kernel = Kernel(costs=FREE)
        s = Serializer(kernel)
        q = s.queue("q")
        gate = {"open": False}
        events = []

        def waiter():
            yield from s.enter()
            yield from s.enqueue(q, lambda: gate["open"])
            events.append(("through", kernel.clock.now))
            yield from s.leave()

        def opener():
            yield Delay(25)
            gate["open"] = True
            yield from s.enter()
            yield from s.leave()  # any serializer event re-evaluates heads

        kernel.spawn(waiter)
        kernel.spawn(opener)
        kernel.run()
        assert events and events[0][1] >= 25

    def test_open_guard_passes_straight_through(self, kernel):
        s = Serializer(kernel)
        q = s.queue("q")

        def main():
            yield from s.enter()
            yield from s.enqueue(q, lambda: True)
            yield from s.leave()
            return "passed"

        assert kernel.run_process(main) == "passed"

    def test_queue_priority_order(self):
        kernel = Kernel(costs=FREE)
        s = Serializer(kernel)
        high = s.queue("high", priority=0)
        low = s.queue("low", priority=1)
        gate = {"open": False}
        order = []

        def waiter(tag, q):
            yield from s.enter()
            yield from s.enqueue(q, lambda: gate["open"])
            order.append(tag)
            yield from s.leave()

        def opener():
            yield Delay(10)
            gate["open"] = True
            yield from s.enter()
            yield from s.leave()

        kernel.spawn(waiter, "low", low)
        kernel.spawn(waiter, "high", high)
        kernel.spawn(opener)
        kernel.run()
        assert order[0] == "high"
