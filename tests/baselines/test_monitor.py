"""Unit tests for Mesa monitors and condition variables."""

import pytest

from repro.baselines import Monitor
from repro.errors import AlpsError
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE


class TestMonitorLock:
    def test_acquire_release(self, kernel):
        monitor = Monitor(kernel)

        def main():
            yield from monitor.acquire()
            yield from monitor.release()
            return monitor.total_entries

        assert kernel.run_process(main) == 1

    def test_release_without_acquire_rejected(self, kernel):
        monitor = Monitor(kernel)

        def main():
            yield from monitor.release()

        with pytest.raises(AlpsError):
            kernel.run_process(main)

    def test_mutual_exclusion(self):
        kernel = Kernel(costs=FREE)
        monitor = Monitor(kernel)
        active = {"count": 0, "peak": 0}

        def worker():
            yield from monitor.acquire()
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield Delay(5)
            active["count"] -= 1
            yield from monitor.release()

        def main():
            yield Par(*[lambda: worker() for _ in range(5)])

        kernel.run_process(main)
        assert active["peak"] == 1

    def test_critical_helper(self, kernel):
        monitor = Monitor(kernel)

        def body():
            yield Delay(1)
            return "inside"

        def main():
            return (yield from monitor.critical(body()))

        assert kernel.run_process(main) == "inside"
        # Lock released afterwards.
        assert monitor._lock.value == 1


class TestConditions:
    def test_wait_signal_roundtrip(self):
        kernel = Kernel(costs=FREE)
        monitor = Monitor(kernel)
        cond = monitor.condition("c")
        events = []

        def waiter():
            yield from monitor.acquire()
            events.append("waiting")
            yield from cond.wait()
            events.append("woken")
            yield from monitor.release()

        def signaler():
            yield Delay(10)
            yield from monitor.acquire()
            events.append("signaling")
            yield from cond.signal()
            yield from monitor.release()

        kernel.spawn(waiter)
        kernel.spawn(signaler)
        kernel.run()
        assert events == ["waiting", "signaling", "woken"]

    def test_signal_with_no_waiters_is_noop(self, kernel):
        monitor = Monitor(kernel)
        cond = monitor.condition("c")

        def main():
            yield from monitor.acquire()
            yield from cond.signal()
            yield from monitor.release()
            return cond.total_signals

        assert kernel.run_process(main) == 1

    def test_broadcast_wakes_all(self):
        kernel = Kernel(costs=FREE)
        monitor = Monitor(kernel)
        cond = monitor.condition("c")
        woken = []

        def waiter(tag):
            yield from monitor.acquire()
            yield from cond.wait()
            woken.append(tag)
            yield from monitor.release()

        def broadcaster():
            yield Delay(10)
            yield from monitor.acquire()
            yield from cond.broadcast()
            yield from monitor.release()

        for tag in range(3):
            kernel.spawn(waiter, tag)
        kernel.spawn(broadcaster)
        kernel.run()
        assert sorted(woken) == [0, 1, 2]

    def test_mesa_semantics_require_retest(self):
        # Between signal and the waiter's re-acquisition, a third process
        # can sneak in and steal the state: the classic Mesa hazard.
        kernel = Kernel(costs=FREE)
        monitor = Monitor(kernel)
        cond = monitor.condition("item")
        state = {"items": 0, "stolen": 0, "consumed": 0}

        def consumer():
            yield from monitor.acquire()
            while state["items"] == 0:
                yield from cond.wait()
            state["items"] -= 1
            state["consumed"] += 1
            yield from monitor.release()

        def thief():
            yield Delay(11)
            yield from monitor.acquire()
            if state["items"] > 0:
                state["items"] -= 1
                state["stolen"] += 1
            yield from monitor.release()

        def producer():
            yield Delay(10)
            yield from monitor.acquire()
            state["items"] += 1
            yield from cond.signal()
            yield from monitor.release()
            yield Delay(10)
            yield from monitor.acquire()
            state["items"] += 1
            yield from cond.signal()
            yield from monitor.release()

        kernel.spawn(consumer)
        kernel.spawn(thief)
        kernel.spawn(producer)
        kernel.run()
        # Conservation: every produced unit is consumed, stolen, or still
        # there — the consumer's while-loop re-test prevented any phantom
        # consumption (which would make this sum exceed 2).
        assert state["consumed"] + state["stolen"] + state["items"] == 2
        assert state["consumed"] == 1
        assert state["items"] >= 0

    def test_named_conditions_are_cached(self, kernel):
        monitor = Monitor(kernel)
        assert monitor.condition("x") is monitor.condition("x")
        assert monitor.condition("x") is not monitor.condition("y")
