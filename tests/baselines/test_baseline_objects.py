"""Tests for the baseline buffer/readers-writers implementations."""

import pytest

from repro.baselines import (
    MonitorBuffer,
    MonitorReadersWriters,
    PathBuffer,
    PathReadersWriters,
    SemaphoreBuffer,
    SerializerReadersWriters,
)
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE

BUFFERS = [SemaphoreBuffer, MonitorBuffer, PathBuffer]
RW_CLASSES = [MonitorReadersWriters, SerializerReadersWriters, PathReadersWriters]


@pytest.mark.parametrize("buffer_cls", BUFFERS)
class TestBufferImplementations:
    def test_transfers_all_messages_in_order(self, buffer_cls):
        kernel = Kernel(costs=FREE)
        buf = buffer_cls(kernel, size=3)

        def producer():
            for i in range(12):
                yield from buf.deposit(i)

        def consumer():
            got = []
            for _ in range(12):
                got.append((yield from buf.remove()))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        assert proc.result == list(range(12))

    def test_producer_blocks_when_full(self, buffer_cls):
        kernel = Kernel(costs=FREE)
        buf = buffer_cls(kernel, size=2)
        deposited = []

        def producer():
            for i in range(5):
                yield from buf.deposit(i)
                deposited.append(i)

        def consumer():
            yield Delay(100)
            for _ in range(5):
                yield from buf.remove()

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run(until=50)
        assert len(deposited) == 2
        kernel.run()
        assert len(deposited) == 5

    def test_many_producers_consumers(self, buffer_cls):
        kernel = Kernel(costs=FREE)
        buf = buffer_cls(kernel, size=4)
        received = []

        def producer(base):
            for i in range(5):
                yield from buf.deposit(base + i)

        def consumer():
            for _ in range(5):
                received.append((yield from buf.remove()))

        def main():
            yield Par(
                lambda: producer(0),
                lambda: producer(100),
                lambda: consumer(),
                lambda: consumer(),
            )

        kernel.run_process(main)
        assert sorted(received) == sorted(list(range(5)) + list(range(100, 105)))


@pytest.mark.parametrize("rw_cls", RW_CLASSES)
class TestReadersWritersImplementations:
    def test_reads_and_writes_complete(self, rw_cls):
        kernel = Kernel(costs=FREE)
        db = rw_cls(kernel)
        db.data["k"] = "initial"

        def reader():
            return (yield from db.read("k"))

        def writer(value):
            yield from db.write("k", value)

        def main():
            return (
                yield Par(
                    *[lambda: reader() for _ in range(4)],
                    lambda: writer("new"),
                )
            )

        results = kernel.run_process(main)
        assert all(r in ("initial", "new") for r in results[:4])
        assert db.data["k"] == "new"

    def test_no_exclusion_violations(self, rw_cls):
        kernel = Kernel(costs=FREE)
        db = rw_cls(kernel)

        def reader(i):
            yield Delay(i % 3)
            yield from db.read(i)

        def writer(i):
            yield Delay(i % 5)
            yield from db.write(i, i)

        def main():
            yield Par(
                *[lambda i=i: reader(i) for i in range(8)],
                *[lambda i=i: writer(i) for i in range(4)],
            )

        kernel.run_process(main)
        violations = getattr(db, "exclusion_violations", 0)
        assert violations == 0


class TestMonitorRwConcurrency:
    def test_readers_overlap(self):
        kernel = Kernel(costs=FREE)
        db = MonitorReadersWriters(kernel, read_max=4, read_work=0)

        def reader(i):
            yield from db.read(i)

        def main():
            yield Par(*[lambda i=i: reader(i) for i in range(4)])

        kernel.run_process(main)
        assert db.max_concurrent_readers >= 2

    def test_read_max_respected(self):
        kernel = Kernel(costs=FREE)
        db = MonitorReadersWriters(kernel, read_max=2, read_work=0)

        def reader(i):
            yield from db.read(i)

        def main():
            yield Par(*[lambda i=i: reader(i) for i in range(8)])

        kernel.run_process(main)
        assert db.max_concurrent_readers <= 2
