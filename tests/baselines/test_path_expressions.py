"""Tests for the path-expression parser and semaphore translation."""

import pytest

from repro.baselines.path_expressions import (
    Burst,
    Name,
    Restriction,
    Selection,
    Sequence,
    compile_path,
    parse_path,
)
from repro.errors import DeadlockError, PathExpressionError
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE


class TestParser:
    def test_single_name(self):
        ast = parse_path("path read end")
        assert isinstance(ast, Name) and ast.name == "read"

    def test_sequence(self):
        ast = parse_path("path a; b; c end")
        assert isinstance(ast, Sequence)
        assert [n.name for n in ast.items] == ["a", "b", "c"]

    def test_selection(self):
        ast = parse_path("path a, b end")
        assert isinstance(ast, Selection)

    def test_selection_binds_tighter_than_sequence(self):
        ast = parse_path("path a, b; c end")
        assert isinstance(ast, Sequence)
        assert isinstance(ast.items[0], Selection)

    def test_restriction(self):
        ast = parse_path("path 3:(a; b) end")
        assert isinstance(ast, Restriction)
        assert ast.limit == 3

    def test_burst(self):
        ast = parse_path("path 1:([read], write) end")
        assert isinstance(ast, Restriction)
        selection = ast.body
        assert isinstance(selection, Selection)
        assert isinstance(selection.items[0], Burst)

    def test_parentheses(self):
        ast = parse_path("path (a) end")
        assert isinstance(ast, Name)

    def test_path_end_optional(self):
        assert isinstance(parse_path("a; b"), Sequence)

    def test_unbalanced_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("path 2:(a end")

    def test_garbage_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("path a ! b end")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("path a end extra")

    def test_zero_restriction_rejected(self):
        with pytest.raises(PathExpressionError):
            parse_path("path 0:(a) end")

    def test_duplicate_operation_rejected(self):
        with pytest.raises(PathExpressionError):
            compile_path("path a; a end")

    def test_empty_path_rejected(self):
        with pytest.raises(PathExpressionError):
            compile_path("path end")


class TestSequencing:
    def test_sequence_orders_executions(self):
        kernel = Kernel(costs=FREE)
        rt = compile_path("path first; second end")
        order = []

        def do(name, delay):
            yield Delay(delay)
            yield from rt.before(name)
            order.append(name)
            yield from rt.after(name)

        # "second" tries to run first but must wait for "first".
        kernel.spawn(do, "second", 1)
        kernel.spawn(do, "first", 10)
        kernel.run()
        assert order == ["first", "second"]

    def test_sequence_allows_pipelining(self):
        # a may run unboundedly ahead of b (only b waits for a).
        kernel = Kernel(costs=FREE)
        rt = compile_path("path a; b end")

        def many_a():
            for _ in range(5):
                yield from rt.before("a")
                yield from rt.after("a")
            return rt.counts["a"]

        assert kernel.run_process(many_a) == 5

    def test_unknown_operation_rejected(self, kernel):
        rt = compile_path("path a end")

        def main():
            yield from rt.before("zzz")

        with pytest.raises(PathExpressionError):
            kernel.run_process(main)


class TestRestriction:
    def test_mutual_exclusion(self):
        kernel = Kernel(costs=FREE)
        rt = compile_path("path 1:(op) end")
        active = {"count": 0, "peak": 0}

        def worker():
            yield from rt.before("op")
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield Delay(5)
            active["count"] -= 1
            yield from rt.after("op")

        def main():
            yield Par(*[lambda: worker() for _ in range(5)])

        kernel.run_process(main)
        assert active["peak"] == 1

    def test_restriction_width(self):
        kernel = Kernel(costs=FREE)
        rt = compile_path("path 3:(op) end")
        active = {"count": 0, "peak": 0}

        def worker():
            yield from rt.before("op")
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield Delay(5)
            active["count"] -= 1
            yield from rt.after("op")

        def main():
            yield Par(*[lambda: worker() for _ in range(9)])

        kernel.run_process(main)
        assert active["peak"] == 3

    def test_bounded_buffer_shape(self):
        # path N:(deposit; remove): deposits may lead removes by <= N.
        kernel = Kernel(costs=FREE)
        rt = compile_path("path 2:(deposit; remove) end")
        progress = []

        def depositor():
            for i in range(4):
                yield from rt.before("deposit")
                progress.append(f"d{i}")
                yield from rt.after("deposit")

        def remover():
            yield Delay(100)
            for i in range(4):
                yield from rt.before("remove")
                progress.append(f"r{i}")
                yield from rt.after("remove")

        kernel.spawn(depositor)
        kernel.spawn(remover)
        kernel.run(until=50)
        assert progress == ["d0", "d1"]  # third deposit blocked at N=2
        kernel.run()
        assert progress[-1] == "r3"


class TestBurst:
    def test_readers_share_writers_exclude(self):
        kernel = Kernel(costs=FREE)
        rt = compile_path("path 1:([read], write) end")
        state = {"readers": 0, "writers": 0, "peak_readers": 0, "violations": 0}

        def reader():
            yield from rt.before("read")
            state["readers"] += 1
            state["peak_readers"] = max(state["peak_readers"], state["readers"])
            if state["writers"]:
                state["violations"] += 1
            yield Delay(10)
            state["readers"] -= 1
            yield from rt.after("read")

        def writer():
            yield Delay(3)
            yield from rt.before("write")
            state["writers"] += 1
            if state["writers"] > 1 or state["readers"]:
                state["violations"] += 1
            yield Delay(10)
            state["writers"] -= 1
            yield from rt.after("write")

        def main():
            yield Par(
                *[lambda: reader() for _ in range(4)],
                *[lambda: writer() for _ in range(2)],
            )

        kernel.run_process(main)
        assert state["violations"] == 0
        assert state["peak_readers"] >= 2  # burst really does share

    def test_wrap_helper(self, kernel):
        rt = compile_path("path 1:(op) end")

        def body():
            yield Delay(1)
            return "wrapped"

        def main():
            return (yield from rt.wrap("op", body()))

        assert kernel.run_process(main) == "wrapped"

    def test_guard_fn_wraps_plain_functions(self, kernel):
        rt = compile_path("path 1:(op) end")
        wrapped = rt.guard_fn("op", lambda x: x + 1)

        def main():
            return (yield from wrapped(41))

        assert kernel.run_process(main) == 42
        assert rt.counts["op"] == 1
