"""Tests for channel composition helpers (arrays, matrix, mailboxes)."""

import pytest

from repro.channels import Channel, Mailbox, Receive, Send, broadcast, channel_array, channel_matrix
from repro.errors import ChannelError
from repro.kernel import Kernel, Par


class TestChannelArray:
    def test_creates_named_channels(self):
        chans = channel_array(3, name="c")
        assert [c.name for c in chans] == ["c[0]", "c[1]", "c[2]"]

    def test_types_propagate(self):
        chans = channel_array(2, types=(int,))
        assert chans[0].types == (int,)

    def test_negative_size_rejected(self):
        with pytest.raises(ChannelError):
            channel_array(-1)

    def test_channels_are_independent(self, kernel):
        chans = channel_array(2)

        def main():
            yield Send(chans[0], "zero")
            yield Send(chans[1], "one")
            return ((yield Receive(chans[1])), (yield Receive(chans[0])))

        assert kernel.run_process(main) == ("one", "zero")


class TestChannelMatrix:
    def test_shape(self):
        matrix = channel_matrix(2, 3)
        assert len(matrix) == 2
        assert len(matrix[0]) == 3
        assert matrix[1][2].name == "chan[1][2]"


class TestBroadcast:
    def test_sends_to_all(self, kernel):
        chans = channel_array(4)

        def main():
            yield from broadcast(chans, "hello")
            got = []
            for ch in chans:
                got.append((yield Receive(ch)))
            return got

        assert kernel.run_process(main) == ["hello"] * 4


class TestMailbox:
    def test_request_reply_roundtrip(self, kernel):
        box = Mailbox("rpc")

        def server():
            request = yield Receive(box.request)
            yield Send(box.reply, request * 2)

        def client():
            yield Send(box.request, 21)
            return (yield Receive(box.reply))

        def main():
            results = yield Par(lambda: server(), lambda: client())
            return results[1]

        assert kernel.run_process(main) == 42

    def test_channels_are_first_class(self, kernel):
        # §2.1.2: channels can be passed as message values.
        carrier = Channel()

        def sender():
            private = Channel(name="private")
            yield Send(carrier, private)
            return (yield Receive(private))

        def responder():
            private = yield Receive(carrier)
            yield Send(private, "via-private")

        def main():
            results = yield Par(lambda: sender(), lambda: responder())
            return results[0]

        assert kernel.run_process(main) == "via-private"

    def test_close_closes_both(self):
        box = Mailbox()
        box.close()
        assert box.request.closed and box.reply.closed
