"""Unit tests for asynchronous typed channels (§2.1.2)."""

import pytest

from repro.channels import Channel, Receive, ReceiveGuard, Send, TryReceive
from repro.errors import ChannelError, ChannelTypeError
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE


class TestTyping:
    def test_typed_send_accepts_matching(self, kernel):
        ch = Channel(types=(str, int))

        def main():
            yield Send(ch, "x", 1)
            return (yield Receive(ch))

        assert kernel.run_process(main) == ("x", 1)

    def test_arity_mismatch_rejected(self, kernel):
        ch = Channel(types=(str, int))

        def main():
            yield Send(ch, "only-one")

        with pytest.raises(ChannelTypeError):
            kernel.run_process(main)

    def test_type_mismatch_rejected(self, kernel):
        ch = Channel(types=(int,))

        def main():
            yield Send(ch, "not-an-int")

        with pytest.raises(ChannelTypeError):
            kernel.run_process(main)

    def test_none_type_slot_skips_check(self, kernel):
        ch = Channel(types=(None, int))

        def main():
            yield Send(ch, object(), 3)
            return True

        assert kernel.run_process(main)

    def test_untyped_channel_accepts_anything(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, 1, "two", [3])
            return (yield Receive(ch))

        assert kernel.run_process(main) == (1, "two", [3])

    def test_bool_is_not_int_confusion(self, kernel):
        # bool is a subclass of int: isinstance check admits it (documented).
        ch = Channel(types=(int,))

        def main():
            yield Send(ch, True)
            return (yield Receive(ch))

        assert kernel.run_process(main) is True


class TestAsynchrony:
    def test_send_does_not_block(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def main():
            for i in range(100):
                yield Send(ch, i)
            return kernel.clock.now

        assert kernel.run_process(main, daemon=False) == 0
        assert len(ch) == 100

    def test_fifo_order(self, kernel):
        ch = Channel()

        def main():
            for i in range(5):
                yield Send(ch, i)
            got = []
            for _ in range(5):
                got.append((yield Receive(ch)))
            return got

        assert kernel.run_process(main) == [0, 1, 2, 3, 4]

    def test_receive_blocks_until_send(self):
        kernel = Kernel(costs=FREE)
        ch = Channel()

        def sender():
            yield Delay(40)
            yield Send(ch, "eventually")

        def receiver():
            value = yield Receive(ch)
            return (value, kernel.clock.now)

        kernel.spawn(sender)
        proc = kernel.spawn(receiver)
        kernel.run()
        assert proc.result == ("eventually", 40)

    def test_single_element_unwrapped(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, "alone")
            return (yield Receive(ch))

        assert kernel.run_process(main) == "alone"

    def test_try_receive_default(self, kernel):
        ch = Channel()

        def main():
            empty = yield TryReceive(ch, default="nothing")
            yield Send(ch, 1)
            nonempty = yield TryReceive(ch, default="nothing")
            return (empty, nonempty)

        assert kernel.run_process(main) == ("nothing", 1)

    def test_receive_with_condition(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, 2)
            yield Send(ch, 8)
            big = yield Receive(ch, when=lambda v: v > 4)
            small = yield Receive(ch)
            return (big, small)

        assert kernel.run_process(main) == (8, 2)


class TestBoundedChannels:
    def test_send_blocks_when_full(self):
        kernel = Kernel(costs=FREE)
        ch = Channel(capacity=2)
        progress = []

        def sender():
            for i in range(4):
                yield Send(ch, i)
                progress.append(i)

        def receiver():
            yield Delay(10)
            got = []
            for _ in range(4):
                got.append((yield Receive(ch)))
            return got

        kernel.spawn(sender)
        proc = kernel.spawn(receiver)
        kernel.run(until=5)
        assert progress == [0, 1]  # third send is blocked
        kernel.run()
        assert proc.result == [0, 1, 2, 3]

    def test_capacity_validation(self):
        with pytest.raises(ChannelError):
            Channel(capacity=0)

    def test_blocked_senders_fifo(self):
        kernel = Kernel(costs=FREE)
        ch = Channel(capacity=1)

        def sender(tag):
            yield Send(ch, tag)

        def receiver():
            yield Delay(5)
            got = []
            for _ in range(3):
                got.append((yield Receive(ch)))
            return got

        for tag in ("a", "b", "c"):
            kernel.spawn(sender, tag)
        proc = kernel.spawn(receiver)
        kernel.run()
        assert proc.result == ["a", "b", "c"]


class TestClose:
    def test_send_on_closed_raises(self, kernel):
        ch = Channel()
        ch.close()

        def main():
            yield Send(ch, 1)

        with pytest.raises(ChannelError):
            kernel.run_process(main)

    def test_closed_channel_drains(self, kernel):
        ch = Channel()

        def main():
            yield Send(ch, 1)
            ch.close()
            return (yield Receive(ch))

        assert kernel.run_process(main) == 1

    def test_receive_guard_infeasible_after_drain(self, kernel):
        from repro.errors import GuardExhaustedError
        from repro.kernel import Select

        ch = Channel()
        ch.close()

        def main():
            yield Select(ReceiveGuard(ch))

        with pytest.raises(GuardExhaustedError):
            kernel.run_process(main)


class TestCounters:
    def test_total_sent_received(self, kernel):
        ch = Channel()

        def main():
            for i in range(3):
                yield Send(ch, i)
            yield Receive(ch)
            return None

        kernel.run_process(main)
        assert ch.total_sent == 3
        assert ch.total_received == 1
        assert len(ch) == 2

    def test_kernel_stats_sends_receives(self):
        kernel = Kernel()
        ch = Channel()

        def main():
            yield Send(ch, 1)
            yield Receive(ch)

        kernel.run_process(main)
        assert kernel.stats.sends == 1
        assert kernel.stats.receives == 1
