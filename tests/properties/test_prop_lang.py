"""Property test: compiled ALPS source is observationally equivalent to
the hand-written runtime objects, tick for tick."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Kernel
from repro.kernel.costs import FREE
from repro.lang import compile_program
from repro.stdlib import BoundedBuffer

BUFFER_SOURCE = """
object Buffer defines
  proc Deposit(Message);
  proc Remove() returns (Message);
end Buffer;

object Buffer implements
  var N: int := 4;
  var Buf := array(N);
  var InPtr: int := 0;
  var OutPtr: int := 0;
  proc Deposit(M);
  begin
    Buf[InPtr] := M;
    InPtr := (InPtr + 1) mod N;
  end Deposit;
  proc Remove() returns (1);
  begin
    return (Buf[OutPtr]);
  end Remove;
  manager
    intercepts Deposit, Remove;
    var Count: int := 0;
  begin
    loop
      accept Deposit when Count < N =>
        execute Deposit;
        Count := Count + 1;
    or
      accept Remove when Count > 0 =>
        execute Remove;
        OutPtr := (OutPtr + 1) mod N;
        Count := Count - 1;
    end loop;
  end manager;
end Buffer;
"""


def run_native(size: int, messages: list) -> tuple:
    kernel = Kernel(costs=FREE)
    buf = BoundedBuffer(kernel, size=size)

    def producer():
        for message in messages:
            yield buf.deposit(message)

    def consumer():
        got = []
        for _ in messages:
            got.append((yield buf.remove()))
        return got

    kernel.spawn(producer)
    proc = kernel.spawn(consumer)
    kernel.run()
    return proc.result, kernel.clock.now, kernel.stats.accepts


def run_compiled(size: int, messages: list) -> tuple:
    kernel = Kernel(costs=FREE)
    module = compile_program(BUFFER_SOURCE)
    buf = module.instantiate(kernel, "Buffer", N=size)

    def producer():
        for message in messages:
            yield buf.call("Deposit", message)

    def consumer():
        got = []
        for _ in messages:
            got.append((yield buf.call("Remove")))
        return got

    kernel.spawn(producer)
    proc = kernel.spawn(consumer)
    kernel.run()
    return proc.result, kernel.clock.now, kernel.stats.accepts


@given(
    size=st.integers(min_value=1, max_value=6),
    messages=st.lists(st.integers(), min_size=0, max_size=15),
)
@settings(max_examples=20, deadline=None)
def test_compiled_equals_native(size, messages):
    native = run_native(size, messages)
    compiled = run_compiled(size, messages)
    assert compiled[0] == native[0] == messages   # same delivery
    assert compiled[1] == native[1]               # same virtual time
    assert compiled[2] == native[2]               # same accept count
