"""Property-based tests on channels: FIFO order and conservation."""

from hypothesis import given, settings, strategies as st

from repro.channels import Channel, Receive, Send
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE

messages = st.lists(st.integers(), min_size=0, max_size=30)


@given(values=messages)
@settings(max_examples=40, deadline=None)
def test_single_channel_preserves_fifo(values):
    kernel = Kernel(costs=FREE)
    ch = Channel()

    def producer():
        for value in values:
            yield Send(ch, value)

    def consumer():
        got = []
        for _ in values:
            got.append((yield Receive(ch)))
        return got

    kernel.spawn(producer)
    proc = kernel.spawn(consumer)
    kernel.run()
    assert proc.result == values


@given(
    values=messages,
    capacity=st.integers(min_value=1, max_value=5),
    consumer_delay=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_bounded_channel_preserves_fifo_and_conserves(values, capacity, consumer_delay):
    kernel = Kernel(costs=FREE)
    ch = Channel(capacity=capacity)

    def producer():
        for value in values:
            yield Send(ch, value)

    def consumer():
        got = []
        for _ in values:
            if consumer_delay:
                yield Delay(consumer_delay)
            got.append((yield Receive(ch)))
        return got

    kernel.spawn(producer)
    proc = kernel.spawn(consumer)
    kernel.run()
    assert proc.result == values
    assert ch.total_sent == ch.total_received == len(values)


@given(
    producer_count=st.integers(min_value=1, max_value=4),
    per_producer=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_multi_producer_conservation(producer_count, per_producer):
    kernel = Kernel(costs=FREE)
    ch = Channel()
    total = producer_count * per_producer
    received = []

    def producer(base):
        for i in range(per_producer):
            yield Send(ch, (base, i))

    def consumer():
        for _ in range(total):
            received.append((yield Receive(ch)))

    def main():
        yield Par(
            *[lambda b=b: producer(b) for b in range(producer_count)],
            lambda: consumer(),
        )

    kernel.run_process(main)
    expected = [(b, i) for b in range(producer_count) for i in range(per_producer)]
    assert sorted(received) == sorted(expected)
    # Per-producer order preserved even under interleaving.
    for base in range(producer_count):
        mine = [i for (b, i) in received if b == base]
        assert mine == sorted(mine)
