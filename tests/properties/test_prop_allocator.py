"""Property-based safety for the resource allocator and combining."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Barrier, ResourceAllocator


@given(
    total=st.integers(min_value=1, max_value=10),
    requests=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_allocator_never_oversubscribes(total, requests, seed):
    # Only run requests that can individually be satisfied.
    requests = [min(r, total) for r in requests]
    kernel = Kernel(costs=FREE, seed=seed, arbitration="random")
    alloc = ResourceAllocator(kernel, total=total, request_max=len(requests) + 1)

    def user(n, i):
        yield Delay(i % 3)
        yield alloc.acquire(n)
        yield Delay(2)
        yield alloc.release(n)

    def main():
        yield Par(*[lambda n=n, i=i: user(n, i) for i, n in enumerate(requests)])

    kernel.run_process(main)
    assert all(avail >= 0 for _t, avail in alloc.history)
    assert alloc.available == total


@given(
    parties=st.integers(min_value=1, max_value=5),
    waves=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_barrier_ranks_complete_each_generation(parties, waves):
    kernel = Kernel(costs=FREE)
    barrier = Barrier(kernel, parties=parties)
    results = []

    def party():
        for _ in range(waves):
            results.append((yield barrier.arrive()))

    def main():
        yield Par(*[lambda: party() for _ in range(parties)])

    kernel.run_process(main)
    # Every generation hands out ranks 0..parties-1 exactly once.
    by_generation = {}
    for rank, generation in results:
        by_generation.setdefault(generation, []).append(rank)
    assert len(by_generation) == waves
    for generation, ranks in by_generation.items():
        assert sorted(ranks) == list(range(parties))
