"""Property-based tests on the bounded buffers: conservation, bounds,
and equivalence between the manager version and every baseline."""

from hypothesis import given, settings, strategies as st

from repro.baselines import MonitorBuffer, PathBuffer, SemaphoreBuffer
from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import BoundedBuffer, ParallelBuffer


@given(
    size=st.integers(min_value=1, max_value=6),
    message_count=st.integers(min_value=0, max_value=25),
)
@settings(max_examples=40, deadline=None)
def test_manager_buffer_fifo_any_size(size, message_count):
    kernel = Kernel(costs=FREE)
    buf = BoundedBuffer(kernel, size=size)

    def producer():
        for i in range(message_count):
            yield buf.deposit(i)

    def consumer():
        got = []
        for _ in range(message_count):
            got.append((yield buf.remove()))
        return got

    kernel.spawn(producer)
    proc = kernel.spawn(consumer)
    kernel.run()
    assert proc.result == list(range(message_count))


@given(
    size=st.integers(min_value=1, max_value=5),
    producers=st.integers(min_value=1, max_value=3),
    consumers=st.integers(min_value=1, max_value=3),
    per_producer=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_parallel_buffer_conserves_under_random_arbitration(
    size, producers, consumers, per_producer, seed
):
    total = producers * per_producer
    # Distribute removals over consumers exactly.
    quota = [total // consumers] * consumers
    for i in range(total % consumers):
        quota[i] += 1

    kernel = Kernel(costs=FREE, seed=seed, arbitration="random")
    buf = ParallelBuffer(
        kernel,
        size=size,
        producer_max=producers,
        consumer_max=consumers,
        copy_work=3,
    )
    received = []

    def producer(base):
        for i in range(per_producer):
            yield buf.deposit((base, i))

    def consumer(count):
        for _ in range(count):
            received.append((yield buf.remove()))

    def main():
        yield Par(
            *[lambda b=b: producer(b) for b in range(producers)],
            *[lambda q=q: consumer(q) for q in quota],
        )

    kernel.run_process(main)
    expected = [(b, i) for b in range(producers) for i in range(per_producer)]
    assert sorted(received) == sorted(expected)


@given(
    size=st.integers(min_value=1, max_value=5),
    message_count=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=20, deadline=None)
def test_all_implementations_agree(size, message_count):
    """Manager buffer and all three baselines deliver identical streams."""

    def run_manager():
        kernel = Kernel(costs=FREE)
        buf = BoundedBuffer(kernel, size=size)

        def producer():
            for i in range(message_count):
                yield buf.deposit(i)

        def consumer():
            got = []
            for _ in range(message_count):
                got.append((yield buf.remove()))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        return proc.result

    def run_baseline(cls):
        kernel = Kernel(costs=FREE)
        buf = cls(kernel, size=size)

        def producer():
            for i in range(message_count):
                yield from buf.deposit(i)

        def consumer():
            got = []
            for _ in range(message_count):
                got.append((yield from buf.remove()))
            return got

        kernel.spawn(producer)
        proc = kernel.spawn(consumer)
        kernel.run()
        return proc.result

    reference = run_manager()
    assert reference == list(range(message_count))
    for cls in (SemaphoreBuffer, MonitorBuffer, PathBuffer):
        assert run_baseline(cls) == reference
