"""Property-based tests on path-expression counter invariants."""

from hypothesis import given, settings, strategies as st

from repro.baselines import compile_path
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE


@given(
    limit=st.integers(min_value=1, max_value=4),
    workers=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_restriction_never_exceeded(limit, workers, seed):
    kernel = Kernel(costs=FREE, seed=seed, arbitration="random")
    rt = compile_path(f"path {limit}:(op) end")
    active = {"count": 0, "peak": 0}

    def worker(i):
        yield Delay(i % 3)
        yield from rt.before("op")
        active["count"] += 1
        active["peak"] = max(active["peak"], active["count"])
        yield Delay(5)
        active["count"] -= 1
        yield from rt.after("op")

    def main():
        yield Par(*[lambda i=i: worker(i) for i in range(workers)])

    kernel.run_process(main)
    assert active["peak"] <= limit
    assert active["count"] == 0
    assert rt.counts["op"] == workers


@given(
    n=st.integers(min_value=1, max_value=4),
    rounds=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_sequence_counts_never_invert(n, rounds):
    """In path N:(a; b), completed(b) <= completed(a) <= completed(b)+N
    at every instant (checked at operation boundaries)."""
    kernel = Kernel(costs=FREE)
    rt = compile_path(f"path {n}:(a; b) end")
    violations = []

    def check():
        a, b = rt.counts["a"], rt.counts["b"]
        if not (b <= a <= b + n):
            violations.append((a, b))

    def doer_a():
        for _ in range(rounds):
            yield from rt.before("a")
            check()
            yield from rt.after("a")
            check()

    def doer_b():
        for _ in range(rounds):
            yield from rt.before("b")
            check()
            yield from rt.after("b")
            check()

    kernel.spawn(doer_a)
    kernel.spawn(doer_b)
    kernel.run()
    assert violations == []
    assert rt.counts["a"] == rt.counts["b"] == rounds


@given(
    readers=st.integers(min_value=0, max_value=6),
    writers=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_burst_readers_writers_invariant(readers, writers, seed):
    kernel = Kernel(costs=FREE, seed=seed, arbitration="random")
    rt = compile_path("path 1:([read], write) end")
    state = {"r": 0, "w": 0, "bad": 0}

    def reader(i):
        yield Delay(i % 2)
        yield from rt.before("read")
        state["r"] += 1
        if state["w"]:
            state["bad"] += 1
        yield Delay(3)
        state["r"] -= 1
        yield from rt.after("read")

    def writer(i):
        yield Delay(i % 2)
        yield from rt.before("write")
        state["w"] += 1
        if state["w"] > 1 or state["r"]:
            state["bad"] += 1
        yield Delay(3)
        state["w"] -= 1
        yield from rt.after("write")

    def main():
        tasks = [lambda i=i: reader(i) for i in range(readers)]
        tasks += [lambda i=i: writer(i) for i in range(writers)]
        if tasks:
            yield Par(*tasks)
        else:
            yield Delay(0)

    kernel.run_process(main)
    assert state["bad"] == 0
