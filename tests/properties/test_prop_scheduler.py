"""Property-based tests on kernel scheduling invariants."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Charge, Delay, Kernel, Par
from repro.kernel.costs import FREE


@given(
    delays=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=10)
)
@settings(max_examples=40, deadline=None)
def test_parallel_delays_take_max(delays):
    kernel = Kernel(costs=FREE)

    def sleeper(n):
        yield Delay(n)

    def main():
        yield Par(*[lambda n=n: sleeper(n) for n in delays])

    kernel.run_process(main)
    assert kernel.clock.now == max(delays)


@given(
    work=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
    cpus=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_finite_cpu_time_bounds(work, cpus):
    """Makespan is bounded below by total/P and max, above by sum."""
    kernel = Kernel(costs=FREE, num_cpus=cpus)

    def worker(n):
        yield Charge(n)

    def main():
        yield Par(*[lambda n=n: worker(n) for n in work])

    kernel.run_process(main)
    total = sum(work)
    lower = max(max(work), -(-total // cpus))  # ceil div
    assert lower <= kernel.clock.now <= total


@given(
    priorities=st.lists(
        st.integers(min_value=0, max_value=5), min_size=2, max_size=8
    ),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_same_instant_dispatch_respects_priority(priorities, seed):
    kernel = Kernel(costs=FREE, seed=seed)
    order = []

    def proc(index, prio):
        order.append((prio, index))
        yield Delay(0)

    for index, prio in enumerate(priorities):
        kernel.spawn(proc, index, prio, priority=prio)
    kernel.run()
    # First dispatches follow priority; within a priority, FIFO.
    assert order == sorted(order, key=lambda pair: (pair[0], pair[1]))


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_deterministic_replay(seed):
    def run():
        kernel = Kernel(costs=FREE, seed=seed, arbitration="random")
        from repro.channels import Channel, Receive, Send

        ch = Channel()
        log = []

        def producer(tag):
            for i in range(3):
                yield Send(ch, (tag, i))
                yield Delay(1)

        def consumer():
            for _ in range(6):
                log.append((yield Receive(ch)))

        kernel.spawn(producer, "a")
        kernel.spawn(producer, "b")
        kernel.spawn(consumer)
        kernel.run()
        return log, kernel.clock.now, kernel.stats.snapshot()

    assert run() == run()
