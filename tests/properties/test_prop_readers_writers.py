"""Property-based exclusion invariants for readers-writers (§2.5.1)."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Database


@given(
    read_max=st.integers(min_value=1, max_value=5),
    readers=st.integers(min_value=0, max_value=10),
    writers=st.integers(min_value=0, max_value=5),
    read_work=st.integers(min_value=0, max_value=30),
    write_work=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_exclusion_invariants_hold(read_max, readers, writers, read_work, write_work, seed):
    kernel = Kernel(costs=FREE, seed=seed, arbitration="random")
    db = Database(
        kernel,
        read_max=read_max,
        read_work=read_work,
        write_work=write_work,
        initial={"k": 0},
    )

    def reader(i):
        yield Delay(i % 4)
        yield db.read("k")

    def writer(i):
        yield Delay(i % 3)
        yield db.write("k", i)

    def main():
        tasks = [lambda i=i: reader(i) for i in range(readers)]
        tasks += [lambda i=i: writer(i) for i in range(writers)]
        if tasks:
            yield Par(*tasks)
        else:
            yield Delay(0)

    kernel.run_process(main)
    # The §2.5.1 invariants, checked by the bodies themselves:
    assert db.exclusion_violations == 0
    assert db.max_concurrent_readers <= read_max
    assert db.active_readers == 0
    assert db.active_writers == 0


@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers()),
        min_size=0,
        max_size=10,
    )
)
@settings(max_examples=30, deadline=None)
def test_sequential_write_read_consistency(writes):
    kernel = Kernel(costs=FREE)
    db = Database(kernel, read_max=2, read_work=0, write_work=0)

    def main():
        expected = {}
        for key, value in writes:
            yield db.write(key, value)
            expected[key] = value
        for key, value in expected.items():
            got = yield db.read(key)
            assert got == value

    kernel.run_process(main)
