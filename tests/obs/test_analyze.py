"""Critical-path analysis: exact phase attribution over recorded spans."""

import json

import pytest

from repro.core import AcceptGuard, AlpsObject, entry, icpt, manager_process
from repro.kernel import Delay, Kernel, Select
from repro.obs import ChromeTraceSink, JsonlSink, MemorySink
from repro.obs.analyze import (
    Recording,
    critical_path,
    from_chrome,
    from_spans,
    load,
    main,
    profile_calls,
    render_report,
    report_json,
)


class Echo(AlpsObject):
    @entry(returns=1)
    def echo(self, x):
        return x

    @manager_process(intercepts={"echo": icpt(params=1, results=1)})
    def mgr(self):
        while True:
            result = yield Select(AcceptGuard(self, "echo"))
            yield from self.execute(result.value)


def _echo_recording(calls=3):
    kernel = Kernel(spans=True)
    obj = Echo(kernel, name="echo")

    def main_proc():
        for i in range(calls):
            yield obj.echo(i)
            yield Delay(3)

    kernel.run_process(main_proc, name="client")
    return kernel, from_spans(kernel.obs.spans)


class TestExactAttribution:
    def test_phase_sums_equal_end_to_end_latency(self):
        _, rec = _echo_recording()
        profiles = profile_calls(rec)
        assert len(profiles) == 3
        for prof in profiles:
            assert sum(prof.phases.values()) == prof.total
            assert prof.total == prof.end - prof.start

    def test_unattributed_bucket_absorbs_uncovered_ticks(self):
        # A synthetic root with one gap: 10 ticks total, a single body
        # phase covering 4 — the remaining 6 must land in unattributed,
        # keeping the sum exact.
        rec = Recording(
            from_spans(
                [
                    {"type": "span", "id": 1, "kind": "call", "name": "o.e",
                     "process": "p", "start": 0, "end": 10, "call_id": 7,
                     "attrs": {"seq": 0}},
                    {"type": "span", "id": 2, "parent": 1, "kind": "body",
                     "name": "o.e.body", "process": "m", "start": 3, "end": 7,
                     "call_id": 7},
                ]
            ).spans
        )
        (prof,) = profile_calls(rec)
        assert prof.phases == {"body": 4, "unattributed": 6}
        assert sum(prof.phases.values()) == prof.total == 10

    def test_nested_calls_profile_separately(self):
        kernel = Kernel(spans=True)
        inner = Echo(kernel, name="inner")

        class Outer(AlpsObject):
            @entry(returns=1)
            def relay(self, x):
                return (yield inner.echo(x))

        outer = Outer(kernel, name="outer")
        kernel.run_process(lambda: (yield outer.relay("x")), name="client")
        rec = from_spans(kernel.obs.spans)
        profiles = {p.name: p for p in profile_calls(rec)}
        # Only the non-nested call is a profile root: the inner call's
        # ticks are already inside the outer body phase, and profiling
        # both would double-count them in the phase totals.
        assert set(profiles) == {"outer.relay"}
        prof = profiles["outer.relay"]
        assert sum(prof.phases.values()) == prof.total
        # The inner call is still in the recording, as a child subtree.
        inner = [s for s in rec.spans if s.name == "inner.echo"]
        assert inner and inner[0].parent is not None

    def test_seq_is_program_order_per_process_and_entry(self):
        _, rec = _echo_recording(calls=4)
        keys = sorted(p.key for p in profile_calls(rec))
        assert keys == [("client", "echo.echo", i) for i in range(4)]


class TestCriticalPath:
    def test_self_times_telescope_to_root_duration(self):
        _, rec = _echo_recording()
        chain = critical_path(rec)
        assert chain
        assert sum(link.self_ticks for link in chain) == chain[0].span.duration
        # Each link is a child of the previous one.
        for parent, child in zip(chain, chain[1:]):
            assert child.span.parent == parent.span.id

    def test_descends_into_longest_child(self):
        rec = from_spans(
            [
                {"type": "span", "id": 1, "kind": "call", "name": "o.e",
                 "process": "p", "start": 0, "end": 100},
                {"type": "span", "id": 2, "parent": 1, "kind": "manager",
                 "name": "o.e.accept", "process": "m", "start": 0, "end": 30},
                {"type": "span", "id": 3, "parent": 1, "kind": "body",
                 "name": "o.e.body", "process": "m", "start": 30, "end": 95},
            ]
        )
        chain = critical_path(rec)
        assert [link.span.id for link in chain] == [1, 3]
        assert [link.self_ticks for link in chain] == [35, 65]

    def test_empty_recording_has_empty_chain(self):
        assert critical_path(from_spans([])) == []


class TestLoaders:
    def test_chrome_round_trip_matches_live_spans(self, tmp_path):
        kernel = Kernel(spans=True)
        path = tmp_path / "trace.json"
        kernel.obs.add_sink(ChromeTraceSink(str(path)))
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo("hi")), name="client")
        kernel.obs.close()

        live = from_spans(kernel.obs.spans)
        loaded = load(str(path))
        assert len(loaded.spans) == len(live.spans)
        assert {(s.kind, s.name, s.start, s.end) for s in loaded.spans} == {
            (s.kind, s.name, s.start, s.end) for s in live.spans
        }
        # Same profiles either way: the sink preserved attribution.
        prof_live = {p.key: p.phases for p in profile_calls(live)}
        prof_file = {p.key: p.phases for p in profile_calls(loaded)}
        assert prof_live == prof_file

    def test_jsonl_round_trip(self, tmp_path):
        kernel = Kernel(spans=True)
        path = tmp_path / "trace.jsonl"
        kernel.obs.add_sink(JsonlSink(str(path)))
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo("hi")), name="client")
        kernel.obs.close()
        loaded = load(str(path))
        assert profile_calls(loaded)
        for prof in profile_calls(loaded):
            assert sum(prof.phases.values()) == prof.total

    def test_memory_sink_records_load_directly(self):
        kernel = Kernel(spans=True)
        sink = kernel.obs.add_sink(MemorySink())
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo("hi")), name="client")
        rec = from_spans(sink.records)
        assert profile_calls(rec)

    def test_chrome_instants_resolve_process_names(self):
        payload = {
            "traceEvents": [
                {"ph": "i", "ts": 5, "tid": 2, "name": "slot.queue.enter",
                 "args": {"slot": 0}},
                # thread_name metadata arrives after the instant.
                {"ph": "M", "name": "thread_name", "tid": 2,
                 "args": {"name": "client"}},
            ]
        }
        rec = from_chrome(payload)
        assert rec.instants == [
            {"type": "event", "time": 5, "kind": "slot.queue.enter",
             "detail": {"slot": 0}, "process": "client"}
        ]

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"rows": []}\n')
        with pytest.raises(ValueError):
            load(str(path))


class TestReportAndCli:
    def test_report_mentions_every_phase_present(self):
        _, rec = _echo_recording()
        text = render_report(rec)
        for token in ("Phase attribution", "Per-entry breakdown",
                      "Longest blocking chain", "echo.echo"):
            assert token in text

    def test_report_json_is_serializable_and_exact(self):
        _, rec = _echo_recording()
        data = json.loads(json.dumps(report_json(rec)))
        assert data["calls"] == 3
        for prof in data["profiles"]:
            assert sum(prof["phases"].values()) == prof["total"]

    def test_cli_text_and_json(self, tmp_path, capsys):
        kernel = Kernel(spans=True)
        path = tmp_path / "t.jsonl"
        kernel.obs.add_sink(JsonlSink(str(path)))
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo("hi")), name="client")
        kernel.obs.close()

        assert main([str(path)]) == 0
        assert "Critical-path profile" in capsys.readouterr().out
        assert main([str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["calls"] == 1

    def test_cli_out_file_and_missing_input(self, tmp_path, capsys):
        kernel = Kernel(spans=True)
        trace = tmp_path / "t.jsonl"
        kernel.obs.add_sink(JsonlSink(str(trace)))
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo("hi")), name="client")
        kernel.obs.close()
        out = tmp_path / "report.txt"
        assert main([str(trace), "--out", str(out)]) == 0
        assert "Critical-path profile" in out.read_text()
        assert main([str(tmp_path / "missing.json")]) == 2

    def test_cli_waitgraph_appends_dot(self, tmp_path, capsys):
        kernel = Kernel(spans=True)
        trace = tmp_path / "t.jsonl"
        kernel.obs.add_sink(JsonlSink(str(trace)))
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo("hi")), name="client")
        kernel.obs.close()
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({
            "type": "wait_for", "time": 7,
            "processes": ["a", "b"],
            "edges": [{"src": "a", "dst": "b", "label": "call b.x[0]",
                       "definite": True}],
            "pools": [], "cycles": [],
        }))
        assert main([str(trace), "--waitgraph", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "## Wait-for graph (DOT)" in out
        assert "digraph wait_for" in out
