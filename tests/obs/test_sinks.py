"""Pluggable sinks: JSONL lines, Chrome trace_event, trace forwarding."""

import io
import json

from repro.kernel import Kernel
from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    validate_chrome_trace,
)
from repro.stdlib import KVStore


def run_workload(kernel):
    store = KVStore(kernel, name="kv")

    def main():
        yield store.put("a", 1)
        yield store.get("a")

    kernel.run_process(main, name="client")


class TestMemorySink:
    def test_records_spans(self):
        kernel = Kernel()
        sink = kernel.obs.add_sink(MemorySink())
        run_workload(kernel)
        spans = sink.spans()
        assert spans
        names = {s["name"] for s in spans}
        assert "kv.put" in names and "kv.get" in names
        for record in spans:
            assert record["end"] >= record["start"]

    def test_add_sink_enables_the_layer(self):
        kernel = Kernel()
        assert not kernel.obs.enabled
        kernel.obs.add_sink(MemorySink())
        assert kernel.obs.enabled


class TestJsonlSink:
    def test_one_json_object_per_line(self):
        kernel = Kernel()
        buffer = io.StringIO()
        sink = kernel.obs.add_sink(JsonlSink(buffer))
        run_workload(kernel)
        kernel.obs.close()
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == sink.lines > 0
        records = [json.loads(line) for line in lines]
        assert {"span", "event"} >= {r["type"] for r in records}
        assert any(r["type"] == "span" and r["name"] == "kv.put"
                   for r in records)

    def test_path_target(self, tmp_path):
        kernel = Kernel()
        path = tmp_path / "trace.jsonl"
        kernel.obs.add_sink(JsonlSink(str(path)))
        run_workload(kernel)
        kernel.obs.close()
        assert path.stat().st_size > 0


class TestChromeTraceSink:
    def test_valid_balanced_payload(self, tmp_path):
        kernel = Kernel(trace=True)
        path = tmp_path / "run.json"
        kernel.obs.add_sink(ChromeTraceSink(str(path)))
        run_workload(kernel)
        kernel.obs.close()
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        # Per-process thread-name metadata present, spans + instants too.
        assert any(e.get("ph") == "M" for e in events)
        assert any(e.get("ph") == "b" for e in events)
        assert any(e.get("ph") == "i" for e in events)
        # Parent links ride in args so viewers can reconstruct the tree.
        assert any(
            e.get("ph") == "b" and "parent" in e.get("args", {})
            for e in events
        )

    def test_close_is_idempotent(self, tmp_path):
        kernel = Kernel()
        path = tmp_path / "run.json"
        kernel.obs.add_sink(ChromeTraceSink(str(path)))
        run_workload(kernel)
        kernel.obs.close()
        kernel.obs.close()
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestValidator:
    def test_rejects_malformed_payloads(self):
        assert validate_chrome_trace(None)
        assert validate_chrome_trace({})
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace({"traceEvents": []})  # empty

    def test_detects_unbalanced_spans(self):
        begin = {"ph": "b", "cat": "c", "name": "n", "id": 1, "ts": 0}
        end = {"ph": "e", "cat": "c", "name": "n", "id": 1, "ts": 5}
        assert validate_chrome_trace({"traceEvents": [begin]})
        assert validate_chrome_trace({"traceEvents": [end]})
        assert validate_chrome_trace({"traceEvents": [begin, end]}) == []
        backwards = dict(end, ts=-1)
        assert validate_chrome_trace({"traceEvents": [begin, backwards]})


class TestTraceForwarding:
    def test_sink_sees_events_with_retention_off(self):
        # Kernel trace retention disabled: the in-memory log stays empty,
        # but subscribed sinks still receive every event as an instant.
        kernel = Kernel(trace=False)
        sink = kernel.obs.add_sink(MemorySink())
        run_workload(kernel)
        assert len(kernel.trace) == 0
        events = [r for r in sink.records if r["type"] == "event"]
        assert {"spawn", "exit"} <= {e["kind"] for e in events}

    def test_forwarding_can_be_declined(self):
        kernel = Kernel(trace=True)
        sink = MemorySink()
        kernel.obs.add_sink(sink, forward_trace=False)
        run_workload(kernel)
        assert [r for r in sink.records if r["type"] == "event"] == []
        assert sink.spans()
