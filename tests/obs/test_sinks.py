"""Pluggable sinks: JSONL lines, Chrome trace_event, trace forwarding."""

import io
import json

from repro.kernel import Kernel
from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    validate_chrome_trace,
)
from repro.stdlib import KVStore


def run_workload(kernel):
    store = KVStore(kernel, name="kv")

    def main():
        yield store.put("a", 1)
        yield store.get("a")

    kernel.run_process(main, name="client")


class TestMemorySink:
    def test_records_spans(self):
        kernel = Kernel()
        sink = kernel.obs.add_sink(MemorySink())
        run_workload(kernel)
        spans = sink.spans()
        assert spans
        names = {s["name"] for s in spans}
        assert "kv.put" in names and "kv.get" in names
        for record in spans:
            assert record["end"] >= record["start"]

    def test_add_sink_enables_the_layer(self):
        kernel = Kernel()
        assert not kernel.obs.enabled
        kernel.obs.add_sink(MemorySink())
        assert kernel.obs.enabled


class TestJsonlSink:
    def test_one_json_object_per_line(self):
        kernel = Kernel()
        buffer = io.StringIO()
        sink = kernel.obs.add_sink(JsonlSink(buffer))
        run_workload(kernel)
        kernel.obs.close()
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == sink.lines > 0
        records = [json.loads(line) for line in lines]
        assert {"span", "event"} >= {r["type"] for r in records}
        assert any(r["type"] == "span" and r["name"] == "kv.put"
                   for r in records)

    def test_path_target(self, tmp_path):
        kernel = Kernel()
        path = tmp_path / "trace.jsonl"
        kernel.obs.add_sink(JsonlSink(str(path)))
        run_workload(kernel)
        kernel.obs.close()
        assert path.stat().st_size > 0


class TestChromeTraceSink:
    def test_valid_balanced_payload(self, tmp_path):
        kernel = Kernel(trace=True)
        path = tmp_path / "run.json"
        kernel.obs.add_sink(ChromeTraceSink(str(path)))
        run_workload(kernel)
        kernel.obs.close()
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        # Per-process thread-name metadata present, spans + instants too.
        assert any(e.get("ph") == "M" for e in events)
        assert any(e.get("ph") == "b" for e in events)
        assert any(e.get("ph") == "i" for e in events)
        # Parent links ride in args so viewers can reconstruct the tree.
        assert any(
            e.get("ph") == "b" and "parent" in e.get("args", {})
            for e in events
        )

    def test_close_is_idempotent(self, tmp_path):
        kernel = Kernel()
        path = tmp_path / "run.json"
        kernel.obs.add_sink(ChromeTraceSink(str(path)))
        run_workload(kernel)
        kernel.obs.close()
        kernel.obs.close()
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestValidator:
    def test_rejects_malformed_payloads(self):
        assert validate_chrome_trace(None)
        assert validate_chrome_trace({})
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace({"traceEvents": []})  # empty

    def test_detects_unbalanced_spans(self):
        begin = {"ph": "b", "cat": "c", "name": "n", "id": 1, "ts": 0}
        end = {"ph": "e", "cat": "c", "name": "n", "id": 1, "ts": 5}
        assert validate_chrome_trace({"traceEvents": [begin]})
        assert validate_chrome_trace({"traceEvents": [end]})
        assert validate_chrome_trace({"traceEvents": [begin, end]}) == []
        backwards = dict(end, ts=-1)
        assert validate_chrome_trace({"traceEvents": [begin, backwards]})


class TestTraceForwarding:
    def test_sink_sees_events_with_retention_off(self):
        # Kernel trace retention disabled: the in-memory log stays empty,
        # but subscribed sinks still receive every event as an instant.
        kernel = Kernel(trace=False)
        sink = kernel.obs.add_sink(MemorySink())
        run_workload(kernel)
        assert len(kernel.trace) == 0
        events = [r for r in sink.records if r["type"] == "event"]
        assert {"spawn", "exit"} <= {e["kind"] for e in events}

    def test_forwarding_can_be_declined(self):
        kernel = Kernel(trace=True)
        sink = MemorySink()
        kernel.obs.add_sink(sink, forward_trace=False)
        run_workload(kernel)
        assert [r for r in sink.records if r["type"] == "event"] == []
        assert sink.spans()


def _live_run(sink_a, sink_b):
    """One seeded run feeding two sinks the same live-plane instants."""
    kernel = Kernel(seed=4)
    kernel.obs.add_sink(sink_a, forward_trace=False)
    kernel.obs.add_sink(sink_b, forward_trace=False)
    plane = kernel.obs.live
    slo = plane.monitor("svc", objective=0.9, fast=200, slow=1000)
    plane.stream_snapshots(every=3)
    for t in range(0, 2400, 20):
        kernel.clock.advance_to(t)
        slo.record(not 300 < t < 700)
    kernel.clock.advance_to(3000)
    kernel.obs.close()
    return kernel


class TestLiveInstantOrdering:
    def test_jsonl_and_chrome_serialize_in_boundary_order(self, tmp_path):
        from repro.obs.sinks import validate_live_jsonl

        buf = io.StringIO()
        chrome_path = tmp_path / "live.json"
        _live_run(JsonlSink(buf), ChromeTraceSink(str(chrome_path)))

        # JSONL: live events in non-decreasing time order, alerts
        # alternating -- the validator encodes the contract.
        lines = buf.getvalue().splitlines()
        assert validate_live_jsonl(lines) == []
        times = [
            json.loads(line)["time"]
            for line in lines
            if '"kind": "live.' in line
        ]
        assert times == sorted(times)
        assert len(times) > 10

        # Chrome: the same instants pass the live checks there too.
        payload = json.loads(chrome_path.read_text())
        assert validate_chrome_trace(payload) == []
        live_ts = [
            e["ts"] for e in payload["traceEvents"]
            if str(e.get("cat", "")).startswith("live.")
        ]
        assert live_ts == sorted(live_ts)
        assert len(live_ts) == len(times)

    def test_burst_of_boundaries_stays_ordered(self):
        # A single clock jump crossing many boundaries must serialize one
        # instant per boundary, in boundary order (not one at jump time).
        kernel = Kernel(seed=1)
        sink = MemorySink()
        kernel.obs.add_sink(sink, forward_trace=False)
        plane = kernel.obs.live
        plane.stream_snapshots(every=1)
        kernel.clock.advance_to(777)
        kernel.clock.advance_to(2345)
        times = [r["time"] for r in sink.records
                 if r.get("kind") == "live.snapshot"]
        assert times == [plane.step * i for i in range(1, 24)]

    def test_validator_flags_out_of_order_and_bad_alternation(self):
        from repro.obs.sinks import validate_live_jsonl

        record = (
            '{"type": "event", "time": %d, "kind": "live.alert", '
            '"process": "live", "detail": {"monitor": "m", "state": "%s", '
            '"fast_burn": 3.0, "slow_burn": 2.1, "bad": 1, "total": 2}}'
        )
        # firing twice without a resolve
        problems = validate_live_jsonl(
            [record % (100, "firing"), record % (200, "firing")]
        )
        assert any("alternate" in p for p in problems)
        # time going backwards
        problems = validate_live_jsonl(
            [record % (200, "firing"), record % (100, "resolved")]
        )
        assert any("out of order" in p for p in problems)
        # well-formed pair passes
        assert validate_live_jsonl(
            [record % (100, "firing"), record % (200, "resolved")]
        ) == []

    def test_chrome_validator_flags_bad_live_alerts(self):
        def alert(ts, state):
            return {
                "ph": "i", "cat": "live.alert", "name": "live.alert",
                "ts": ts, "pid": 1, "tid": 1, "s": "t",
                "args": {"monitor": "'m'", "state": f"'{state}'",
                         "fast_burn": "3.0", "slow_burn": "2.1"},
            }

        span = [
            {"ph": "b", "cat": "c", "name": "n", "id": 1, "ts": 0},
            {"ph": "e", "cat": "c", "name": "n", "id": 1, "ts": 5},
        ]
        good = span + [alert(100, "firing"), alert(200, "resolved")]
        assert validate_chrome_trace({"traceEvents": good}) == []
        double = span + [alert(100, "firing"), alert(200, "firing")]
        assert any(
            "alternate" in p
            for p in validate_chrome_trace({"traceEvents": double})
        )
        missing = span + [{
            "ph": "i", "cat": "live.alert", "name": "live.alert", "ts": 50,
            "pid": 1, "tid": 1, "s": "t", "args": {},
        }]
        assert any(
            "missing" in p
            for p in validate_chrome_trace({"traceEvents": missing})
        )
