"""Folded-stack export: exactness contract and round trip."""

from repro.core import AcceptGuard, AlpsObject, entry, icpt, manager_process
from repro.kernel import Delay, Kernel, Select
from repro.obs.analyze import (
    folded_stacks,
    from_spans,
    main,
    parse_folded,
)


class Echo(AlpsObject):
    @entry(returns=1)
    def echo(self, x):
        yield Delay(2)
        return x

    @manager_process(intercepts={"echo": icpt(params=1, results=1)})
    def mgr(self):
        while True:
            result = yield Select(AcceptGuard(self, "echo"))
            yield from self.execute(result.value)


def recording(calls=3):
    kernel = Kernel(spans=True)
    obj = Echo(kernel, name="echo")

    def main_proc():
        for i in range(calls):
            yield obj.echo(i)
            yield Delay(3)

    kernel.run_process(main_proc, name="client")
    return from_spans(kernel.obs.spans)


class TestFoldedStacks:
    def test_values_sum_to_top_level_durations(self):
        rec = recording()
        folded = parse_folded(folded_stacks(rec))
        total = sum(span.duration for span in rec.top_level())
        assert sum(folded.values()) == total

    def test_frames_are_kind_name_with_process_root(self):
        rec = recording(calls=1)
        folded = parse_folded(folded_stacks(rec))
        assert folded
        for path in folded:
            # Root frame is the owning process; inner frames kind:name.
            assert ":" in path[-1]
        roots = {path[0] for path in folded}
        assert roots <= {span.process for span in rec.top_level()}

    def test_round_trip_lossless(self):
        rec = recording()
        lines = folded_stacks(rec)
        assert parse_folded(lines) == parse_folded(folded_stacks(rec))
        # Values parse back as written, including any zero-value leaves.
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            int(value)

    def test_synthetic_self_time(self):
        # Root 0..10 with one child 3..7: self time splits 6 / 4.
        rec = from_spans(
            [
                {"type": "span", "id": 1, "kind": "call", "name": "o.e",
                 "process": "p", "start": 0, "end": 10},
                {"type": "span", "id": 2, "parent": 1, "kind": "body",
                 "name": "o.e.body", "process": "m", "start": 3, "end": 7},
            ]
        )
        folded = parse_folded(folded_stacks(rec))
        assert folded == {
            ("p", "call:o.e"): 6,
            ("p", "call:o.e", "body:o.e.body"): 4,
        }

    def test_zero_duration_leaf_preserved(self):
        rec = from_spans(
            [
                {"type": "span", "id": 1, "kind": "call", "name": "o.e",
                 "process": "p", "start": 5, "end": 5},
            ]
        )
        folded = parse_folded(folded_stacks(rec))
        assert folded == {("p", "call:o.e"): 0}


class TestFoldedCli:
    def write_trace(self, tmp_path):
        kernel = Kernel(spans=True)
        obj = Echo(kernel, name="echo")
        kernel.run_process(lambda: (yield obj.echo(1)), name="client")
        path = tmp_path / "trace.jsonl"
        import json

        with open(path, "w", encoding="utf-8") as fh:
            for span in kernel.obs.spans:
                fh.write(json.dumps(span.to_record()) + "\n")
        return path

    def test_folded_to_file(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        out = tmp_path / "folded.txt"
        assert main([str(trace), "--folded", str(out)]) == 0
        folded = parse_folded(out.read_text().splitlines())
        assert folded
        assert all(isinstance(v, int) for v in folded.values())

    def test_folded_to_stdout(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        assert main([str(trace), "--folded", "-"]) == 0
        out = capsys.readouterr().out
        folded = parse_folded(out.splitlines())
        assert folded


class TestSvgFlameGraph:
    def folded(self):
        from repro.obs.analyze import folded_stacks

        return __import__("repro.obs.analyze", fromlist=["parse_folded"]).parse_folded(
            folded_stacks(recording())
        )

    def test_renders_well_formed_svg(self):
        import xml.etree.ElementTree as ET

        from repro.obs.analyze import render_svg

        svg = render_svg(self.folded(), title="test")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert rects  # one per icicle frame (plus the synthetic root)

    def test_rendering_is_deterministic(self):
        from repro.obs.analyze import render_svg

        folded = self.folded()
        assert render_svg(folded) == render_svg(folded)

    def test_root_reports_exact_total(self):
        # The synthetic root's tooltip carries the sum of all self
        # times — the same exactness contract as the folded export.
        from repro.obs.analyze import render_svg

        folded = self.folded()
        svg = render_svg(folded)
        assert f"all: {sum(folded.values())} ticks (100.0%)" in svg

    def test_frame_names_are_escaped(self):
        import xml.etree.ElementTree as ET

        from repro.obs.analyze import render_svg

        svg = render_svg({("<p>", "call:a&b"): 7})
        ET.fromstring(svg)  # parses despite markup-hostile frame names
        assert "&lt;p&gt;" in svg and "a&amp;b" in svg

    def test_zero_total_recording_renders(self):
        import xml.etree.ElementTree as ET

        from repro.obs.analyze import render_svg

        svg = render_svg({("p", "call:o.e"): 0})
        ET.fromstring(svg)
        assert "0 ticks" in svg

    def test_width_validation(self):
        import pytest

        from repro.obs.analyze import render_svg

        with pytest.raises(ValueError, match="width"):
            render_svg({}, width=10)

    def test_cli_writes_svg_file(self, tmp_path, capsys):
        trace = TestFoldedCli().write_trace(tmp_path)
        out = tmp_path / "flame.svg"
        assert main([str(trace), "--svg", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<svg ") and text.rstrip().endswith("</svg>")

    def test_cli_svg_to_stdout(self, tmp_path, capsys):
        trace = TestFoldedCli().write_trace(tmp_path)
        assert main([str(trace), "--svg", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<svg ")
