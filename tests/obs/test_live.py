"""The live telemetry plane: primitives, sketches, burn rates, the plane.

Window semantics under test are the ISSUE's explicit edge cases: empty
window, single sample, and a sample landing exactly on the window
boundary tick (half-open ``(now - W, now]`` — the boundary sample has
aged out).  The percentile tests pin the nearest-rank float bug the PR
fixes: ``ceil`` computed as ``-(-p * n // 100)`` overshoots whenever
the exact product ``p·n`` is a whole number the binary float rounds
past — ``p=16.1, n=1000`` picks rank 162 instead of 161.
"""

import json

import pytest

from repro.kernel import Delay, Kernel
from repro.obs import MemorySink, parse_openmetrics, render_openmetrics
from repro.obs.live import LivePlane
from repro.obs.live.burnrate import BurnRateMonitor
from repro.obs.live.sketch import HotKeyReport, SpaceSaving
from repro.obs.live.stream import (
    Ewma,
    WindowedCount,
    WindowedHistogram,
    WindowedRate,
    nearest_rank,
)


class TestNearestRank:
    def test_empty_returns_none(self):
        assert nearest_rank([], 50) is None
        assert nearest_rank([], 99.9) is None

    def test_single_sample_is_every_percentile(self):
        for p in (0, 1, 50, 99, 99.9, 100):
            assert nearest_rank([7], p) == 7

    def test_zero_is_min_hundred_is_max(self):
        values = [5, 1, 9, 3]
        assert nearest_rank(values, 0) == 1
        assert nearest_rank(values, 100) == 9

    def test_small_set_ranks(self):
        values = [10, 20, 30, 40]
        # ceil(50*4/100) = 2 -> 2nd smallest.
        assert nearest_rank(values, 50) == 20
        # ceil(99*4/100) = 4 -> max.
        assert nearest_rank(values, 99) == 40
        # ceil(25*4/100) = 1 -> min.
        assert nearest_rank(values, 25) == 10

    def test_float_ceiling_regression(self):
        # 16.1 * 1000 / 100 is exactly 161, but the binary float product
        # is 16100.000000000002, so the old float ceil picked rank 162.
        values = list(range(1000))
        assert nearest_rank(values, 16.1) == 160  # rank 161, 1-indexed
        assert -(-16.1 * len(values) // 100) == 162
        # Decimal percentile specs behave as written at the tail too.
        assert nearest_rank(list(range(8000)), 99.9) == 7991

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank([1], -1)
        with pytest.raises(ValueError):
            nearest_rank([1], 100.1)


class TestEwma:
    def test_none_until_first_sample(self):
        e = Ewma(0.2)
        assert e.value is None and e.count == 0

    def test_exact_arithmetic(self):
        e = Ewma(0.2)
        assert e.update(10) == 10.0
        # 10 + 0.2 * (20 - 10)
        assert e.update(20) == pytest.approx(12.0)
        assert e.count == 2

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            Ewma(0)
        with pytest.raises(ValueError):
            Ewma(1.5)


class TestWindowedHistogram:
    def test_empty_window(self):
        h = WindowedHistogram(100, 10)
        assert h.percentile(99, 0) is None
        assert h.mean(50) is None
        assert h.count(50) == 0
        state = h.state(50)
        assert state["count"] == 0 and state["p99"] is None

    def test_single_sample(self):
        h = WindowedHistogram(100, 10)
        h.observe(42, at=5)
        for p in (0, 50, 99, 99.9, 100):
            assert h.percentile(p, 5) == 42
        assert h.mean(5) == 42

    def test_boundary_tick_is_exclusive(self):
        h = WindowedHistogram(100, 10)
        h.observe(1, at=0)
        h.observe(2, at=1)
        # At now=100: horizon is 0; sample at t=0 excluded, t=1 included.
        assert h.samples(100) == [2]
        # At now=99 both are live; at now=101 even t=1 sits exactly on
        # the boundary and has aged out.
        assert sorted(h.samples(99)) == [1, 2]
        assert h.samples(101) == []

    def test_exact_filter_inside_surviving_bucket(self):
        # Expiry is bucket-granular, but queries filter exact times: a
        # bucket kept alive by a late sample must not leak its early one.
        h = WindowedHistogram(100, 10)
        h.observe(1, at=10)
        h.observe(2, at=19)  # same bucket [10, 20)
        assert sorted(h.samples(109)) == [1, 2]
        assert h.samples(111) == [2]  # 10 <= 111-100, aged; 19 still live

    def test_window_must_be_multiple_of_step(self):
        with pytest.raises(ValueError):
            WindowedHistogram(105, 10)


class TestWindowedCount:
    def test_total_and_subwindow(self):
        c = WindowedCount(100, 10)
        c.mark(5)
        c.mark(55)
        c.mark(55)
        assert c.total(60) == 3
        # Trailing 20 ticks at now=60: only the bucket holding t=55.
        assert c.total(60, 20) == 2

    def test_bucket_granular_expiry(self):
        c = WindowedCount(100, 10)
        c.mark(0)
        # Bucket [0,10) dies once 10 <= now-100, i.e. now >= 110.
        assert c.total(109) == 1
        assert c.total(110) == 0

    def test_per_ktick(self):
        c = WindowedCount(1000, 100)
        for t in range(0, 500, 10):
            c.mark(t)
        assert c.per_ktick(500) == 50.0


class TestWindowedRate:
    def test_ewma_folds_per_step_rate(self):
        r = WindowedRate(100, 10, alpha=0.5)
        r.mark(3)
        r.mark(7)
        r.roll(10)   # 2 marks in a 10-tick step -> 200/ktick
        assert r.ewma.value == pytest.approx(200.0)
        r.roll(20)   # empty step decays toward 0
        assert r.ewma.value == pytest.approx(100.0)


class TestSpaceSaving:
    def test_eviction_inherits_count_as_error(self):
        s = SpaceSaving(capacity=2)
        s.offer("a")
        s.offer("a")
        s.offer("b")
        s.offer("c")  # evicts b (count 1) -> c: count 2, error 1
        top = s.top()
        assert top[0] == ("a", 2, 0)
        assert top[1] == ("c", 2, 1)
        assert s.guaranteed("c") == 1
        assert s.guaranteed("a") == 2
        assert s.guaranteed("b") == 0

    def test_deterministic_across_replays(self):
        stream = [f"k{i % 7}" for i in range(200)] + ["hot"] * 50
        s1, s2 = SpaceSaving(4), SpaceSaving(4)
        for key in stream:
            s1.offer(key)
        for key in stream:
            s2.offer(key)
        assert s1.state() == s2.state()
        assert json.dumps(s1.state(), sort_keys=True) == json.dumps(
            s2.state(), sort_keys=True
        )

    def test_heavy_key_always_present(self):
        # Space-Saving guarantee: true count > total/capacity => monitored.
        s = SpaceSaving(capacity=4)
        for i in range(300):
            s.offer(f"noise{i}")
            if i % 2 == 0:
                s.offer("hot")
        assert any(key == "hot" for key, _, _ in s.top())

    def test_keys_coerced_to_str(self):
        s = SpaceSaving(4)
        s.offer(7)
        s.offer("7")
        assert s.top()[0] == ("7", 2, 0)


class TestHotKeyReport:
    def test_share_and_candidates_use_guarantees(self):
        report = HotKeyReport(
            "kv.keys", as_of=500, total=100,
            entries=[("hot", 40, 0), ("inherited", 30, 25), ("warm", 12, 0)],
        )
        assert report.share("hot") == pytest.approx(0.4)
        assert report.share("absent") == 0.0
        # "inherited" has guaranteed count 5 -> below the 10% bar.
        assert report.candidates(0.1) == ["hot", "warm"]

    def test_empty_report(self):
        report = HotKeyReport("x", 0, 0, [])
        assert report.share("a") == 0.0
        assert report.candidates() == []


class TestBurnRateMonitor:
    def _feed(self, monitor, start, end, step, bad_every):
        for t in range(start, end, step):
            monitor.record(t % bad_every == 0, at=t)

    def test_fires_only_when_both_windows_burn(self):
        m = BurnRateMonitor("slo", 0.9, fast=100, slow=500, step=50)
        # Errors only in the last 50 ticks: the fast window burns (5x),
        # the slow window's share stays at the budget (1x) -> no alert.
        for t in range(0, 450, 10):
            m.record(True, at=t)
        for t in range(450, 500, 10):
            m.record(False, at=t)
        assert m.roll(500) is None
        assert m.state == "ok"

    def test_fire_and_resolve_with_hysteresis(self):
        m = BurnRateMonitor("slo", 0.9, fast=100, slow=200, step=50,
                            threshold=2.0, clear=1.0)
        for t in range(0, 200, 10):
            m.record(False, at=t)
        event = m.roll(200)
        assert event is not None and event.state == "firing"
        assert m.state == "firing"
        # Recovery: all-ok traffic; resolve only after both burns < clear.
        resolved = []
        for t in range(200, 600, 10):
            m.record(True, at=t)
            if t % 50 == 40:
                e = m.roll(t + 10)
                if e is not None:
                    resolved.append(e)
        assert [e.state for e in resolved] == ["resolved"]
        assert m.state == "ok"
        assert [e.state for e in m.events] == ["firing", "resolved"]

    def test_idle_window_burns_zero(self):
        m = BurnRateMonitor("slo", 0.99, fast=100, slow=500, step=50)
        assert m.burn(1000, 100) == 0.0
        assert m.roll(1000) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateMonitor("x", 1.5, 100, 500, 50)
        with pytest.raises(ValueError):
            BurnRateMonitor("x", 0.9, 500, 100, 50)
        with pytest.raises(ValueError):
            BurnRateMonitor("x", 0.9, 100, 500, 50, threshold=1.0, clear=2.0)


def _plane(step=100):
    kernel = Kernel(seed=5)
    return kernel, LivePlane(kernel.obs, step=step)


class TestLivePlane:
    def test_big_jump_rolls_every_boundary_in_order(self):
        kernel, plane = _plane(step=100)
        sink = MemorySink()
        kernel.obs.add_sink(sink, forward_trace=False)
        plane.stream_snapshots(every=1)
        kernel.clock.advance_to(1000)  # one jump across 10 boundaries
        times = [r["time"] for r in sink.records
                 if r.get("kind") == "live.snapshot"]
        assert times == [100 * i for i in range(1, 11)]

    def test_alert_instants_at_their_boundaries(self):
        kernel, plane = _plane(step=100)
        sink = MemorySink()
        kernel.obs.add_sink(sink, forward_trace=False)
        slo = plane.monitor("svc", objective=0.9, fast=200, slow=1000)
        for t in range(0, 1000, 20):
            kernel.clock.advance_to(t)
            slo.record(False)
        kernel.clock.advance_to(2600)
        alerts = [r for r in sink.records if r.get("kind") == "live.alert"]
        assert [a["detail"]["state"] for a in alerts] == ["firing", "resolved"]
        assert alerts[0]["time"] < alerts[1]["time"]
        assert plane.alert_log() == [a["detail"] for a in alerts]

    def test_metric_rate_from_kernel_stats_field(self):
        kernel, plane = _plane(step=100)
        plane.metric_rate("sends", window=1000)
        kernel.stats.sends += 30
        kernel.clock.advance_to(100)   # boundary samples the delta
        snap = plane.snapshot()
        assert snap["metric_rates"]["sends"]["per_ktick"] == pytest.approx(30.0)

    def test_metric_rate_unknown_name_rejected(self):
        _, plane = _plane()
        with pytest.raises(ValueError):
            plane.metric_rate("no.such.metric")

    def test_window_must_align_with_plane_step(self):
        _, plane = _plane(step=100)
        with pytest.raises(ValueError):
            plane.histogram("h", window=150)

    def test_declaration_is_idempotent(self):
        _, plane = _plane()
        assert plane.histogram("h") is plane.histogram("h")
        assert plane.sketch("s") is plane.sketch("s")
        assert plane.monitor("m") is plane.monitor("m")

    def test_snapshot_json_round_trip_is_identity(self):
        kernel, plane = _plane(step=100)
        h = plane.histogram("lat", window=1000)
        r = plane.rate("req", window=1000)
        plane.offer("keys", "a")
        plane.monitor("slo", objective=0.99)
        for t in range(0, 600, 30):
            kernel.clock.advance_to(t)
            h.observe(t % 17)
            r.mark()
        snap = plane.snapshot()
        assert json.loads(json.dumps(snap, sort_keys=True)) == snap

    def test_register_gauges_exports_window_state(self):
        kernel, plane = _plane(step=100)
        h = plane.histogram("lat", window=1000)
        plane.monitor("slo", objective=0.99)
        kernel.clock.advance_to(90)
        h.observe(25)
        plane.register_gauges()
        text = render_openmetrics(kernel.metrics)
        parsed = parse_openmetrics(text)
        assert parsed["live.lat.p99"]["value"] == 25.0
        assert parsed["live.lat.count"]["value"] == 1
        assert parsed["live.slo.alerts"]["value"] == 0


class TestWatchCalls:
    def _run(self):
        from repro.core import AlpsObject, entry, manager_process

        class Slow(AlpsObject):
            @entry(returns=1)
            def work(self, x):
                return x

            @manager_process(intercepts=["work"])
            def mgr(self):
                while True:
                    call = yield self.accept("work")
                    yield Delay(5)
                    yield from self.execute(call)

        kernel = Kernel(seed=2)
        plane = kernel.obs.live
        plane.watch_calls(window=1000, objective=0.9)
        obj = Slow(kernel, name="slow")

        def caller(tag):
            def body():
                for _ in range(3):
                    yield obj.work(tag)

            return body

        for tag in range(3):
            kernel.spawn(caller(tag), name=f"c{tag}")
        kernel.run()
        return kernel, plane

    def test_latency_and_sketches_fill(self):
        kernel, plane = self._run()
        hist = plane.histogram("calls.work")
        assert hist.count() == 9
        assert hist.percentile(50) is not None
        report = plane.hot_keys("calls.entries")
        assert report.entries[0][0] == "work"
        callers = {key for key, _, _ in plane.hot_keys("calls.callers").entries}
        assert callers == {"work|c0", "work|c1", "work|c2"}
        # All calls served: the SLO monitor saw only good events.
        assert plane.monitors["calls.slo"].events == []

    def test_service_ewma_query_matches_runtime(self):
        kernel, plane = self._run()
        obj = kernel._alps_objects[0]
        assert plane.service_ewma("slow", "work") == (
            obj._entry_runtime("work").service_ewma
        )
        assert plane.service_ewma("slow", "work") is not None
        assert plane.service_ewma("absent", "work") is None
