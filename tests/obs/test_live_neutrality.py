"""The live plane's determinism contract.

Two halves, extending PR 3's zero-cost contract:

* **schedule neutrality** — a run with the plane aggregating (clock
  observers firing, windows rolling, sketches filling, monitors
  alerting into sinks) is tick-identical to the same seeded run without
  it: same outcomes, same final clock, same kernel counters, same
  trace.  The plane posts no kernel events and issues no syscalls, so
  it *cannot* perturb arbitration;
* **replay identity** — two identical runs produce byte-identical
  alert-log JSONL, byte-identical dashboard text, and byte-identical
  live JSONL sink lines; and rendering the dashboard from the JSONL
  round-trip equals rendering from in-process state (the CI replay
  gate in miniature).
"""

import io
import json

from repro.kernel import Delay, Kernel
from repro.obs import JsonlSink, MemorySink
from repro.obs.live.dashboard import load_snapshots, render, snapshot_at
from repro.obs.sinks import validate_live_jsonl
from repro.stdlib import GatedKVStore
from repro.workloads import Poisson, TrafficEngine, watch_traffic


def _kv_request(kv):
    def build(req):
        key = f"k{req.caller % 8}"
        if req.index % 3 == 0:
            return kv.put(key, req.index)
        return kv.get(key)

    return build


def _drive(live: bool, sink=None, snapshot_every: int = 0):
    kernel = Kernel(seed=11)
    kv = GatedKVStore(kernel, read_work=1, write_work=3, request_max=4,
                      queue_cap=4)
    engine = TrafficEngine(
        kernel,
        Poisson(3, seed=7),
        120,
        _kv_request(kv),
        callers=1000,
        engines=4,
        clients=6,
        seed=7,
        deadline=400,
    )
    wire = None
    if live:
        plane = kernel.obs.live
        if sink is not None:
            kernel.obs.add_sink(sink, forward_trace=False)
        wire = watch_traffic(
            plane, engine, objective=0.95, window=500, fast=500, slow=2500,
            key=lambda o: f"k{o.request.caller % 8}",
        )
        if snapshot_every:
            plane.stream_snapshots(snapshot_every)
    result = engine.run()
    return kernel, result, wire


def _outcome_log(result):
    return [
        (o.request.index, o.status, o.issued_at, o.finished_at, o.retries)
        for o in result.outcomes
    ]


class TestScheduleNeutrality:
    def test_traffic_run_is_tick_identical_with_plane_on(self):
        k_off, r_off, _ = _drive(live=False)
        k_on, r_on, wire = _drive(live=True, sink=MemorySink(),
                                  snapshot_every=2)

        assert _outcome_log(r_on) == _outcome_log(r_off)
        assert k_on.clock.now == k_off.clock.now
        assert k_on.stats.context_switches == k_off.stats.context_switches
        assert k_on.stats.calls_issued == k_off.stats.calls_issued
        assert k_on.stats.snapshot() == k_off.stats.snapshot()

        # Non-vacuous: the plane really aggregated the run.
        assert wire["latency"].count() >= 0
        assert wire["load"].prim.counts.total(k_on.clock.now, None) >= 0
        plane = k_on.obs.live
        assert plane.sketches["traffic.traffic.callers"].total == sum(
            1 for o in r_on.outcomes
        )

    def test_touching_obs_live_alone_changes_nothing(self):
        k_off, r_off, _ = _drive(live=False)

        kernel = Kernel(seed=11)
        kv = GatedKVStore(kernel, read_work=1, write_work=3, request_max=4,
                          queue_cap=4)
        engine = TrafficEngine(
            kernel, Poisson(3, seed=7), 120, _kv_request(kv), callers=1000,
            engines=4, clients=6, seed=7, deadline=400,
        )
        kernel.obs.live  # create the plane, declare nothing
        result = engine.run()
        assert _outcome_log(result) == _outcome_log(r_off)
        assert kernel.clock.now == k_off.clock.now
        assert kernel.stats.snapshot() == k_off.stats.snapshot()


class TestReplayIdentity:
    def test_alert_log_and_dashboard_are_byte_identical(self, tmp_path):
        paths = []
        dashboards = []
        for run in ("a", "b"):
            buf = io.StringIO()
            sink = JsonlSink(buf)
            kernel, _, _ = _drive(live=True, sink=sink, snapshot_every=4)
            log_path = tmp_path / f"alerts_{run}.jsonl"
            kernel.obs.live.write_alert_log(str(log_path))
            paths.append((log_path.read_bytes(), buf.getvalue()))
            dashboards.append(kernel.obs.live.render())
        assert paths[0][0] == paths[1][0]          # alert log bytes
        assert paths[0][1] == paths[1][1]          # full JSONL sink bytes
        assert dashboards[0] == dashboards[1]      # dashboard text

    def test_dashboard_from_jsonl_round_trip_matches_in_process(self):
        # Run once through a JSONL sink, replay through a MemorySink:
        # the serialized-and-parsed snapshots must equal the replay's
        # in-memory snapshot dicts exactly, and render identical text.
        buf = io.StringIO()
        _drive(live=True, sink=JsonlSink(buf), snapshot_every=1)
        from_jsonl = load_snapshots(buf.getvalue().splitlines())
        assert from_jsonl, "run emitted no live.snapshot instants"

        memory = MemorySink()
        _drive(live=True, sink=memory, snapshot_every=1)
        in_process = [r["detail"] for r in memory.records
                      if r.get("kind") == "live.snapshot"]

        assert from_jsonl == json.loads(
            json.dumps(in_process, sort_keys=True)
        )
        assert [render(s) for s in from_jsonl] == [
            render(s) for s in in_process
        ]
        # snapshot_at picks by time deterministically.
        last = from_jsonl[-1]
        assert snapshot_at(from_jsonl, last["time"]) == last
        assert snapshot_at(from_jsonl, None) == last

    def test_live_jsonl_validates(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        _drive(live=True, sink=sink, snapshot_every=2)
        problems = validate_live_jsonl(buf.getvalue().splitlines())
        assert problems == []


class TestClockObserverSemantics:
    def test_observer_fires_once_per_actual_advance(self):
        kernel = Kernel(seed=1)
        seen = []
        kernel.clock.subscribe(seen.append)
        kernel.clock.advance_to(5)
        kernel.clock.advance_to(5)   # no motion, no callback
        kernel.clock.advance(0)      # no motion, no callback
        kernel.clock.advance(3)
        assert seen == [5, 8]

    def test_delay_driven_run_notifies_boundaries(self):
        kernel = Kernel(seed=1)
        plane = kernel.obs.live
        sink = MemorySink()
        kernel.obs.add_sink(sink, forward_trace=False)
        plane.stream_snapshots(every=1)

        def sleeper():
            yield Delay(950)

        kernel.run_process(sleeper)
        times = [r["time"] for r in sink.records
                 if r.get("kind") == "live.snapshot"]
        # Every crossed step boundary rolled, in order, no duplicates.
        assert times == sorted(set(times))
        assert times and times[0] >= plane.step
