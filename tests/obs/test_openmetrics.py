"""OpenMetrics text exposition: render + round-trip parse."""

import pytest

from repro.obs import parse_openmetrics, render_openmetrics
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("faults.dropped_requests", "Requests dropped by faults").inc(7)
    registry.counter("rpc.messages").inc(41)
    gauge = registry.gauge("replication.primary_epoch", "Current primary epoch")
    gauge.set(3)
    registry.gauge("pool.live", fn=lambda: 12)
    hist = registry.histogram("calls.response_time", "Call response times")
    for value in (5, 30, 10):
        hist.observe(value)
    registry.histogram("calls.empty", "Never observed")
    return registry


class TestRender:
    def test_counter_exposition(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE faults_dropped_requests counter" in text
        assert "faults_dropped_requests_total 7" in text

    def test_histogram_becomes_summary_with_min_max(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE calls_response_time summary" in text
        assert "calls_response_time_count 3" in text
        assert "calls_response_time_sum 45" in text
        assert "calls_response_time_min 5" in text
        assert "calls_response_time_max 30" in text

    def test_callback_gauge_sampled_at_render_time(self):
        text = render_openmetrics(populated_registry())
        assert "pool_live 12" in text

    def test_ends_with_eof(self):
        assert render_openmetrics(populated_registry()).endswith("# EOF\n")

    def test_empty_histogram_has_no_min_max(self):
        text = render_openmetrics(populated_registry())
        assert "calls_empty_count 0" in text
        assert "calls_empty_min" not in text


class TestRoundTrip:
    def test_every_metric_survives(self):
        registry = populated_registry()
        parsed = parse_openmetrics(render_openmetrics(registry))
        assert parsed["faults.dropped_requests"]["type"] == "counter"
        assert parsed["faults.dropped_requests"]["value"] == 7
        assert (
            parsed["faults.dropped_requests"]["help"]
            == "Requests dropped by faults"
        )
        assert parsed["rpc.messages"]["value"] == 41
        assert parsed["replication.primary_epoch"]["type"] == "gauge"
        assert parsed["replication.primary_epoch"]["value"] == 3
        assert parsed["pool.live"]["value"] == 12
        summary = parsed["calls.response_time"]
        assert summary["type"] == "summary"
        assert summary["count"] == 3
        assert summary["sum"] == 45
        assert summary["min"] == 5
        assert summary["max"] == 30

    def test_round_trip_matches_snapshot_values(self):
        # The parse of the render agrees with the registry's own
        # snapshot for every counter and gauge.
        registry = populated_registry()
        parsed = parse_openmetrics(render_openmetrics(registry))
        snapshot = registry.snapshot()
        for name, value in snapshot.items():
            if name in parsed:  # counters and gauges keep their name
                assert parsed[name]["value"] == value

    def test_float_values_survive(self):
        registry = MetricsRegistry()
        registry.gauge("load.average").set(0.75)
        parsed = parse_openmetrics(render_openmetrics(registry))
        assert parsed["load.average"]["value"] == pytest.approx(0.75)

    def test_missing_eof_rejected(self):
        registry = populated_registry()
        text = render_openmetrics(registry).replace("# EOF\n", "")
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics(text)

    def test_unknown_sample_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_openmetrics("mystery_total 3\n# EOF\n")

    def test_kernel_registry_renders(self, kernel):
        # The per-kernel registry (with its pre-declared metrics) renders
        # and parses without error even before any workload runs.
        text = render_openmetrics(kernel.metrics)
        parsed = parse_openmetrics(text)
        assert isinstance(parsed, dict)
