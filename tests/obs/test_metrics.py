"""The typed metrics registry: declaration, values, legacy mirroring."""

import pytest

from repro.kernel import Kernel
from repro.obs import Counter, Gauge, Histogram, MetricError, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("layer.events", "help text")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert reg.value("layer.events") == 4
        assert reg.snapshot() == {"layer.events": 4}

    def test_cannot_decrease(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_declaration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("same.name", "first")
        b = reg.counter("same.name", "second")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")


class TestGauge:
    def test_set_and_value(self):
        g = MetricsRegistry().gauge("g")
        assert g.value == 0
        g.set(17)
        assert g.value == 17

    def test_callback_backed(self):
        state = {"n": 0}
        reg = MetricsRegistry()
        g = reg.gauge("net.traffic", fn=lambda: state["n"])
        state["n"] = 42
        assert g.value == 42
        assert reg.snapshot() == {"net.traffic": 42}
        with pytest.raises(MetricError):
            g.set(1)


class TestHistogram:
    def test_moments(self):
        h = MetricsRegistry().histogram("lat")
        assert h.sample() == {"lat.count": 0}
        for v in (10, 30, 20):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 60, 10, 30)
        assert h.mean == 20.0
        assert h.sample()["lat.mean"] == 20.0

    def test_registry_value_is_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(5)
        assert reg.value("lat") == 1


class TestLegacyMirror:
    def test_counter_mirrors_into_kernel_custom(self):
        kernel = Kernel()
        c = kernel.metrics.counter("faults.things", legacy="things")
        c.inc(2)
        assert kernel.stats.custom["things"] == 2
        assert kernel.metrics.value("faults.things") == 2
        assert "things" in kernel.metrics.legacy_keys

    def test_unmirrored_counter_leaves_custom_alone(self):
        kernel = Kernel()
        kernel.metrics.counter("new.style").inc()
        assert kernel.stats.custom == {}

    def test_registry_types(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("a"), Counter)
        assert isinstance(reg.gauge("b"), Gauge)
        assert isinstance(reg.histogram("c"), Histogram)
        assert reg.names() == ["a", "b", "c"]
        assert reg.get("missing") is None
        assert reg.value("missing", default=-1) == -1


class TestKernelStatsSnapshot:
    def test_snapshot_derives_from_dataclass_fields(self):
        from dataclasses import fields

        from repro.kernel.stats import KernelStats

        stats = KernelStats()
        snap = stats.snapshot()
        # ``custom`` and ``cpu`` are dict fields flattened with their own
        # prefixes instead of appearing as single keys.
        expected = {f.name for f in fields(KernelStats)} - {"custom", "cpu"}
        assert set(snap) == expected
        stats.cpu["cpu0"] = 7
        assert stats.snapshot()["cpu.cpu0"] == 7

    def test_snapshot_prefixes_custom(self):
        from repro.kernel.stats import KernelStats

        stats = KernelStats()
        stats.custom["weird"] = 1
        assert stats.snapshot()["custom.weird"] == 1

    def test_diff_keeps_earlier_only_keys(self):
        from repro.kernel.stats import KernelStats

        stats = KernelStats()
        stats.custom["once"] = 1
        earlier = stats.snapshot()
        stats.custom.clear()
        stats.sends += 2
        delta = stats.diff(earlier)
        # The custom key bumped only before the baseline still appears,
        # as a negative delta (previously it was silently dropped).
        assert delta["custom.once"] == -1
        assert delta["sends"] == 2
