"""Benchmark trajectory recording and the perf-regression gate."""

import json

from repro.obs.regress import (
    Metric,
    check,
    flatten,
    latest_baselines,
    load_history,
    main,
    record,
)


def _bench(experiment="e1", rows=None, note="test rows"):
    return {
        "experiment": experiment,
        "git_rev": "abc1234",
        "note": note,
        "rows": rows if rows is not None else [
            {"mechanism": "manager", "size": 4, "ops_per_ktick": 100.0,
             "switches": 2000, "spawns": 3},
            {"mechanism": "monitor", "size": 4, "ops_per_ktick": 150.0,
             "switches": 1500, "spawns": 3},
        ],
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestFlatten:
    def test_tracked_cells_become_cell_metric_keys(self):
        flat = flatten(_bench())
        assert flat == {
            "manager/4:ops_per_ktick": 100.0,
            "manager/4:switches": 2000,
            "monitor/4:ops_per_ktick": 150.0,
            "monitor/4:switches": 1500,
        }

    def test_untracked_experiment_flattens_empty(self):
        assert flatten(_bench(experiment="e7")) == {}

    def test_non_numeric_tracked_values_are_skipped(self):
        rows = [{"mechanism": "manager", "size": 1, "ops_per_ktick": "n/a",
                 "switches": 10}]
        assert flatten(_bench(rows=rows)) == {"manager/1:switches": 10}


class TestMetricDirection:
    def test_higher_is_better_regresses_downward_past_tolerance(self):
        metric = Metric("ops", higher_is_better=True, tolerance=0.05)
        assert not metric.regressed(100.0, 96.0)
        assert metric.regressed(100.0, 94.0)
        assert not metric.regressed(100.0, 120.0)

    def test_lower_is_better_regresses_upward_past_tolerance(self):
        metric = Metric("switches", higher_is_better=False, tolerance=0.10)
        assert not metric.regressed(1000, 1099)
        assert metric.regressed(1000, 1101)
        assert not metric.regressed(1000, 800)

    def test_zero_baseline_is_a_hard_floor(self):
        # The lost_acked contract: any move off zero in the bad
        # direction fails, tolerance notwithstanding.
        metric = Metric("lost_acked", higher_is_better=False, tolerance=0.0)
        assert not metric.regressed(0, 0)
        assert metric.regressed(0, 1)
        lenient = Metric("lost_acked", higher_is_better=False, tolerance=0.5)
        assert lenient.regressed(0, 1)


class TestRecordCheckRoundTrip:
    def test_record_then_check_is_clean(self, tmp_path):
        history = str(tmp_path / "hist.jsonl")
        bench = _write(tmp_path, "BENCH_E1.json", _bench())
        added = record(history, [bench])
        assert [e["experiment"] for e in added] == ["E1"]
        assert added[0]["seq"] == 1
        report = check(history, [bench])
        assert report.ok()
        assert all(f.verdict == "ok" for f in report.findings)

    def test_second_record_bumps_seq_and_becomes_baseline(self, tmp_path):
        history = str(tmp_path / "hist.jsonl")
        first = _write(tmp_path, "a.json", _bench())
        record(history, [first])
        improved = _bench()
        improved["rows"][0]["ops_per_ktick"] = 130.0
        second = _write(tmp_path, "b.json", improved)
        added = record(history, [second])
        assert added[0]["seq"] == 2
        # The check compares against the *latest* entry per experiment.
        base = latest_baselines(load_history(history))
        assert base["E1"]["metrics"]["manager/4:ops_per_ktick"] == 130.0
        assert check(history, [second]).ok()
        assert not check(history, [first]).ok()  # old numbers now regress

    def test_regression_is_reported_readably(self, tmp_path):
        history = str(tmp_path / "hist.jsonl")
        base = _write(tmp_path, "base.json", _bench())
        record(history, [base])
        slow = _bench()
        slow["rows"][0]["ops_per_ktick"] = 80.0  # -20% < 5% tolerance
        slow["rows"][1]["switches"] = 1501       # +1 switch: moved, not failed
        current = _write(tmp_path, "cur.json", slow)
        report = check(history, [current])
        assert not report.ok()
        verdicts = {f.key: f.verdict for f in report.findings}
        assert verdicts["manager/4:ops_per_ktick"] == "REGRESSED"
        assert verdicts["monitor/4:switches"] == "moved"
        text = report.render()
        assert "REGRESSED" in text and "100.0 -> 80.0" in text
        assert "regression(s)" in text

    def test_vanished_metric_and_empty_history_are_problems(self, tmp_path):
        history = str(tmp_path / "hist.jsonl")
        assert not check(history, []).ok()  # empty history
        record(history, [_write(tmp_path, "a.json", _bench())])
        shrunk = _bench(rows=[_bench()["rows"][0]])  # monitor cell gone
        report = check(history, [_write(tmp_path, "b.json", shrunk)])
        assert not report.ok()
        assert any("vanished" in p for p in report.problems)


class TestCli:
    def test_record_check_show_exit_codes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bench = _write(tmp_path, "BENCH_E1.json", _bench())
        assert main(["--record", "--history", "h.jsonl", bench]) == 0
        assert "recorded E1 (seq 1" in capsys.readouterr().out
        assert main(["--check", "--history", "h.jsonl", bench]) == 0
        assert "verdict: OK" in capsys.readouterr().out
        assert main(["--show", "--history", "h.jsonl"]) == 0
        assert "seq 1" in capsys.readouterr().out

    def test_check_fails_on_regression_with_json_output(
        self, tmp_path, capsys
    ):
        history = str(tmp_path / "h.jsonl")
        base = _write(tmp_path, "base.json", _bench())
        assert main(["--record", "--history", history, base]) == 0
        capsys.readouterr()
        slow = _bench()
        slow["rows"][0]["ops_per_ktick"] = 50.0
        current = _write(tmp_path, "cur.json", slow)
        assert main(["--check", "--history", history, "--json", current]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(f["verdict"] == "REGRESSED" for f in payload["findings"])

    def test_usage_errors_exit_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # no BENCH_E*.json in cwd
        assert main(["--check", "--history", "h.jsonl"]) == 2
        untracked = _write(tmp_path, "BENCH_E7.json", _bench(experiment="e7"))
        assert main(["--record", "--history", "h.jsonl", untracked]) == 2
