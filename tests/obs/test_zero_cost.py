"""The zero-cost contract: the disabled layer changes nothing.

Two halves:

* disabled — no span allocations, no ``call.span``, nothing delivered;
* enabled — recording must not perturb the schedule either: a seeded
  replication crash scenario produces tick-identical transition logs
  and kernel traces with spans on and off (span hooks read timestamps
  the call path records anyway; no extra syscalls are spent).
"""

from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor


class TestDisabledCostsNothing:
    def test_no_span_allocations_on_the_call_path(self):
        kernel = Kernel()
        store = KVStore(kernel, name="kv", record_calls=True)

        def main():
            yield store.put("a", 1)
            yield store.get("a")

        kernel.run_process(main, name="client")
        assert not kernel.obs.enabled
        assert kernel.obs.span_count == 0
        assert kernel.obs.spans == []
        for call in store.completed_calls():
            assert call.span is None

    def test_no_latency_histogram_until_enabled(self):
        kernel = Kernel()
        assert kernel.metrics.get("calls.latency") is None
        kernel.obs.enable()
        assert kernel.metrics.get("calls.latency") is not None

    def test_heartbeat_records_carry_no_span_when_disabled(self):
        from repro.obs.spans import TransitionRecord

        kernel, rep = _build(spans=False)
        _run(kernel, rep)
        for t in rep.heartbeat.transitions + rep.view.transitions:
            assert isinstance(t, TransitionRecord)
            assert t.span_id is None


def _build(spans: bool):
    kernel = Kernel(costs=FREE, seed=3, trace=True, spans=spans)
    net = ring(kernel, 6)
    runtime = install(
        kernel,
        net,
        FaultPlan(seed=3, detection_delay=20)
        .crash_node("n0", at=300, restart_at=900)
        .drop_messages(0.2, dst="n4"),
    )
    sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=runtime))
    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net,
        3,
        writes=("put", "delete"),
        nodes=["n0", "n2", "n4"],
        supervisor=sup,
        call_timeout=60,
        heartbeat_interval=40,
        seed=3,
    )
    return kernel, rep


def _run(kernel, rep):
    outcomes = []

    def writer():
        for i in range(20):
            try:
                yield from rep.put(f"k{i % 4}", i)
                outcomes.append(("ack", i, kernel.clock.now))
            except RemoteCallError:
                outcomes.append(("fail", i, kernel.clock.now))
            yield Delay(61)

    def reader():
        yield Delay(13)
        for i in range(20):
            try:
                yield from rep.get(f"k{i % 4}")
                outcomes.append(("read", i, kernel.clock.now))
            except RemoteCallError:
                outcomes.append(("rfail", i, kernel.clock.now))
            yield Delay(53)

    kernel.spawn(writer, name="writer")
    rep.net.node("n1").spawn(reader, name="reader")
    kernel.run(until=3000)
    return outcomes


def _trace_snapshot(kernel):
    return [
        (e.time, e.kind, e.process, tuple(sorted(e.detail.items())))
        for e in kernel.trace
    ]


class TestEnabledIsScheduleNeutral:
    def test_crash_scenario_is_tick_identical_with_spans_on(self):
        k_off, rep_off = _build(spans=False)
        out_off = _run(k_off, rep_off)
        k_on, rep_on = _build(spans=True)
        out_on = _run(k_on, rep_on)

        # The scenario is not vacuous: it really failed over.
        events = {event for _, event, _, _ in rep_off.view.transitions}
        assert "down" in events and "promote" in events

        # Bit-identical schedules: same outcomes at the same ticks, same
        # transition logs (TransitionRecord compares as a plain tuple),
        # same kernel trace, same counters.
        assert out_on == out_off
        assert list(rep_on.view.transitions) == list(rep_off.view.transitions)
        assert list(rep_on.heartbeat.transitions) == list(
            rep_off.heartbeat.transitions
        )
        assert _trace_snapshot(k_on) == _trace_snapshot(k_off)
        assert k_on.clock.now == k_off.clock.now
        assert k_on.stats.custom == k_off.stats.custom

        # ... but only the enabled run recorded spans, and its records
        # carry the observing span ids (detection → promotion linkage).
        assert k_off.obs.span_count == 0
        assert k_on.obs.span_count > 0
        assert any(t.span_id is not None for t in rep_on.heartbeat.transitions)
        assert any(t.span_id is not None for t in rep_on.view.transitions)

    def test_every_acked_write_has_a_connected_span_tree(self):
        # The acceptance shape: client write span → sequencer span →
        # entry-call spans → phase spans, surviving primary failover.
        kernel, rep = _build(spans=True)
        outcomes = _run(kernel, rep)
        acked = [o for o in outcomes if o[0] == "ack"]
        assert acked
        obs = kernel.obs
        writes = [
            s for s in obs.find_spans(kind="replicated")
            if s.attrs.get("status") == "ok"
        ]
        assert len(writes) == len(acked)
        for write in writes:
            sequencer = [
                s for s in obs.children_of(write.span_id)
                if s.kind == "replication"
            ]
            assert sequencer, f"write span {write.span_id} has no sequencer child"
            calls = [
                c
                for s in sequencer
                for c in obs.children_of(s.span_id)
                if c.kind == "call"
            ]
            assert calls, f"write span {write.span_id} reached no replica"
            # Failed attempts (crashed target) may have no derivable
            # phases; every *successful* hop must, and an acked write
            # has at least one.
            served = [c for c in calls if c.attrs.get("status") == "ok"]
            assert served, f"write span {write.span_id} has no served call"
            for call in served:
                assert obs.children_of(call.span_id), (
                    f"call span {call.span_id} has no phase children"
                )
        # Failover happened while writes kept connecting: the promotion
        # transition links back to a recorded span.
        promotes = [t for t in rep.view.transitions if t[1] == "promote"]
        assert promotes and all(t.span_id is not None for t in promotes)
