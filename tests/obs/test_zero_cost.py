"""The zero-cost contract: the disabled layer changes nothing.

Two halves:

* disabled — no span allocations, no ``call.span``, nothing delivered;
* enabled — recording must not perturb the schedule either: a seeded
  replication crash scenario produces tick-identical transition logs
  and kernel traces with spans on and off (span hooks read timestamps
  the call path records anyway; no extra syscalls are spent).
"""

from repro.core import AlpsObject, entry, manager_process
from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.obs import MemorySink
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor


class TestDisabledCostsNothing:
    def test_no_span_allocations_on_the_call_path(self):
        kernel = Kernel()
        store = KVStore(kernel, name="kv", record_calls=True)

        def main():
            yield store.put("a", 1)
            yield store.get("a")

        kernel.run_process(main, name="client")
        assert not kernel.obs.enabled
        assert kernel.obs.span_count == 0
        assert kernel.obs.spans == []
        for call in store.completed_calls():
            assert call.span is None

    def test_no_latency_histogram_until_enabled(self):
        kernel = Kernel()
        assert kernel.metrics.get("calls.latency") is None
        kernel.obs.enable()
        assert kernel.metrics.get("calls.latency") is not None

    def test_heartbeat_records_carry_no_span_when_disabled(self):
        from repro.obs.spans import TransitionRecord

        kernel, rep = _build(spans=False)
        _run(kernel, rep)
        for t in rep.heartbeat.transitions + rep.view.transitions:
            assert isinstance(t, TransitionRecord)
            assert t.span_id is None


def _build(spans: bool):
    kernel = Kernel(costs=FREE, seed=3, trace=True, spans=spans)
    net = ring(kernel, 6)
    runtime = install(
        kernel,
        net,
        FaultPlan(seed=3, detection_delay=20)
        .crash_node("n0", at=300, restart_at=900)
        .drop_messages(0.2, dst="n4"),
    )
    sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=runtime))
    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net,
        3,
        writes=("put", "delete"),
        nodes=["n0", "n2", "n4"],
        supervisor=sup,
        call_timeout=60,
        heartbeat_interval=40,
        seed=3,
    )
    return kernel, rep


def _run(kernel, rep):
    outcomes = []

    def writer():
        for i in range(20):
            try:
                yield from rep.put(f"k{i % 4}", i)
                outcomes.append(("ack", i, kernel.clock.now))
            except RemoteCallError:
                outcomes.append(("fail", i, kernel.clock.now))
            yield Delay(61)

    def reader():
        yield Delay(13)
        for i in range(20):
            try:
                yield from rep.get(f"k{i % 4}")
                outcomes.append(("read", i, kernel.clock.now))
            except RemoteCallError:
                outcomes.append(("rfail", i, kernel.clock.now))
            yield Delay(53)

    kernel.spawn(writer, name="writer")
    rep.net.node("n1").spawn(reader, name="reader")
    kernel.run(until=3000)
    return outcomes


def _trace_snapshot(kernel):
    return [
        (e.time, e.kind, e.process, tuple(sorted(e.detail.items())))
        for e in kernel.trace
    ]


class TestEnabledIsScheduleNeutral:
    def test_crash_scenario_is_tick_identical_with_spans_on(self):
        k_off, rep_off = _build(spans=False)
        out_off = _run(k_off, rep_off)
        k_on, rep_on = _build(spans=True)
        out_on = _run(k_on, rep_on)

        # The scenario is not vacuous: it really failed over.
        events = {event for _, event, _, _ in rep_off.view.transitions}
        assert "down" in events and "promote" in events

        # Bit-identical schedules: same outcomes at the same ticks, same
        # transition logs (TransitionRecord compares as a plain tuple),
        # same kernel trace, same counters.
        assert out_on == out_off
        assert list(rep_on.view.transitions) == list(rep_off.view.transitions)
        assert list(rep_on.heartbeat.transitions) == list(
            rep_off.heartbeat.transitions
        )
        assert _trace_snapshot(k_on) == _trace_snapshot(k_off)
        assert k_on.clock.now == k_off.clock.now
        assert k_on.stats.custom == k_off.stats.custom

        # ... but only the enabled run recorded spans, and its records
        # carry the observing span ids (detection → promotion linkage).
        assert k_off.obs.span_count == 0
        assert k_on.obs.span_count > 0
        assert any(t.span_id is not None for t in rep_on.heartbeat.transitions)
        assert any(t.span_id is not None for t in rep_on.view.transitions)

    def test_every_acked_write_has_a_connected_span_tree(self):
        # The acceptance shape: client write span → sequencer span →
        # entry-call spans → phase spans, surviving primary failover.
        kernel, rep = _build(spans=True)
        outcomes = _run(kernel, rep)
        acked = [o for o in outcomes if o[0] == "ack"]
        assert acked
        obs = kernel.obs
        writes = [
            s for s in obs.find_spans(kind="replicated")
            if s.attrs.get("status") == "ok"
        ]
        assert len(writes) == len(acked)
        for write in writes:
            sequencer = [
                s for s in obs.children_of(write.span_id)
                if s.kind == "replication"
            ]
            assert sequencer, f"write span {write.span_id} has no sequencer child"
            calls = [
                c
                for s in sequencer
                for c in obs.children_of(s.span_id)
                if c.kind == "call"
            ]
            assert calls, f"write span {write.span_id} reached no replica"
            # Failed attempts (crashed target) may have no derivable
            # phases; every *successful* hop must, and an acked write
            # has at least one.
            served = [c for c in calls if c.attrs.get("status") == "ok"]
            assert served, f"write span {write.span_id} has no served call"
            for call in served:
                assert obs.children_of(call.span_id), (
                    f"call span {call.span_id} has no phase children"
                )
        # Failover happened while writes kept connecting: the promotion
        # transition links back to a recorded span.
        promotes = [t for t in rep.view.transitions if t[1] == "promote"]
        assert promotes and all(t.span_id is not None for t in promotes)


class Slow(AlpsObject):
    """One slot (returns=1): concurrent callers overflow into the
    slot queue of the hidden procedure array (§2.5)."""

    @entry(returns=1)
    def work(self, x):
        return x

    @manager_process(intercepts=["work"])
    def mgr(self):
        while True:
            call = yield self.accept("work")
            yield Delay(5)  # hold the slot: later callers must queue
            yield from self.execute(call)


def _contended_run(spans: bool, sink=None):
    kernel = Kernel(spans=spans)
    if sink is not None:
        kernel.obs.add_sink(sink)
    obj = Slow(kernel, name="slow")
    finishes = []

    def caller(tag):
        def body():
            result = yield obj.work(tag)
            finishes.append((tag, result, kernel.clock.now))

        return body

    for tag in range(4):
        kernel.spawn(caller(tag), name=f"c{tag}")
    kernel.run()
    return kernel, finishes


class TestSlotQueueInstantsAreScheduleNeutral:
    """The PR's new phase events must honour the PR 3 contract: slot-queue
    enter/leave markers are sink-only instants, never kernel events."""

    def test_sink_attached_run_is_tick_identical(self):
        k_off, out_off = _contended_run(spans=False)
        sink = MemorySink()
        k_on, out_on = _contended_run(spans=True, sink=sink)

        assert out_on == out_off
        assert k_on.clock.now == k_off.clock.now
        assert k_on.stats.context_switches == k_off.stats.context_switches

        # Non-vacuous: the contention really overflowed the hidden array
        # and the sink saw both edges of the queue wait.
        kinds = [r["kind"] for r in sink.records if r["type"] == "event"]
        enters = kinds.count("slot.queue.enter")
        leaves = kinds.count("slot.queue.leave")
        assert enters >= 3  # 4 callers, 1 slot
        assert leaves >= 1
        detail = next(
            r["detail"] for r in sink.records
            if r["type"] == "event" and r["kind"] == "slot.queue.enter"
        )
        assert detail["obj"] == "slow" and detail["entry"] == "work"

    def test_queue_instants_never_enter_the_kernel_trace(self):
        # Sink-only delivery: the markers must not appear as kernel
        # events even when kernel tracing is on — they are observations,
        # not schedulable occurrences.
        kernel = Kernel(trace=True, spans=True)
        sink = kernel.obs.add_sink(MemorySink(), forward_trace=False)
        obj = Slow(kernel, name="slow")
        for tag in range(3):
            kernel.spawn(lambda t=tag: (yield obj.work(t)), name=f"c{tag}")
        kernel.run()
        assert any(
            r["type"] == "event" and r["kind"].startswith("slot.queue.")
            for r in sink.records
        )
        assert not any(e.kind.startswith("slot.queue.") for e in kernel.trace)
