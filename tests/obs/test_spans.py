"""Span trees: one connected tree per entry call, phases from timestamps."""

from repro.core import AcceptGuard, AlpsObject, entry, icpt, manager_process
from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel, Select
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import KVStore


class Echo(AlpsObject):
    @entry(returns=1)
    def echo(self, x):
        return x

    @manager_process(intercepts={"echo": icpt(params=1, results=1)})
    def mgr(self):
        while True:
            result = yield Select(AcceptGuard(self, "echo"))
            yield from self.execute(result.value)


def phases_of(kernel, root):
    return {s.name: s for s in kernel.obs.children_of(root.span_id)}


class TestManagedCall:
    def test_full_phase_tree(self):
        kernel = Kernel(spans=True)
        obj = Echo(kernel, name="echo")

        def main():
            yield Delay(5)
            return (yield obj.echo("hi"))

        assert kernel.run_process(main, name="client") == "hi"
        roots = kernel.obs.find_spans(kind="call")
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "echo.echo"
        assert root.process == "client"
        assert root.parent_id is None
        assert root.attrs["status"] == "ok"
        assert root.duration == root.end - root.start >= 0
        children = phases_of(kernel, root)
        assert {"echo.queue", "echo.accept", "echo.start", "echo.body",
                "echo.finish"} <= set(children)
        # Phases tile the call: each starts no earlier than the previous
        # one ends, all within the root interval.
        order = ["echo.queue", "echo.accept", "echo.start", "echo.body",
                 "echo.finish"]
        for earlier, later in zip(order, order[1:]):
            assert children[earlier].end <= children[later].start
        assert children[order[0]].start >= root.start
        assert children[order[-1]].end <= root.end
        # Every phase carries the call id of its root.
        assert {c.call_id for c in children.values()} == {root.call_id}

    def test_span_ids_are_deterministic(self):
        def run():
            kernel = Kernel(spans=True)
            obj = Echo(kernel, name="echo")

            def main():
                yield obj.echo(1)
                yield obj.echo(2)

            kernel.run_process(main, name="client")
            return [
                (s.span_id, s.parent_id, s.kind, s.name, s.start, s.end)
                for s in kernel.obs.spans
            ]

        assert run() == run()


class TestNestedCalls:
    def test_inner_call_parents_under_outer_body(self):
        kernel = Kernel(spans=True)
        inner = Echo(kernel, name="inner")

        class Outer(AlpsObject):
            @entry(returns=1)
            def relay(self, x):
                return (yield inner.echo(x))

        outer = Outer(kernel, name="outer")

        def main():
            return (yield outer.relay("deep"))

        assert kernel.run_process(main, name="client") == "deep"
        by_name = {s.name: s for s in kernel.obs.find_spans(kind="call")}
        assert by_name["inner.echo"].parent_id == by_name["outer.relay"].span_id

    def test_combined_call_gets_combined_phase(self):
        from repro.core import Finish

        kernel = Kernel(costs=FREE, spans=True)

        class Oracle(AlpsObject):
            @entry(returns=1)
            def ask(self):
                raise AssertionError("never started")

            @manager_process(intercepts=["ask"])
            def mgr(self):
                while True:
                    result = yield Select(AcceptGuard(self, "ask"))
                    yield Finish(result.value, 42)  # finish without start

        obj = Oracle(kernel, name="oracle")

        def main():
            return (yield obj.ask())

        assert kernel.run_process(main, name="client") == 42
        root = kernel.obs.find_spans(kind="call")[0]
        children = phases_of(kernel, root)
        assert set(children) == {"ask.combined"}
        assert children["ask.combined"].kind == "manager"


class TestRemoteCalls:
    def test_rpc_legs_bracket_the_phases(self):
        kernel = Kernel(costs=FREE, seed=1, spans=True)
        net = ring(kernel, 4)
        store = net.node("n2").place(KVStore(kernel, name="kv"))

        def main():
            yield store.put("a", 1)

        net.node("n0").spawn(main, name="client")
        kernel.run()
        root = kernel.obs.find_spans(kind="call")[0]
        children = phases_of(kernel, root)
        request = children["put.request"]
        response = children["put.response"]
        assert request.kind == response.kind == "rpc"
        assert request.start == root.start
        assert response.end == root.end
        assert request.duration > 0 and response.duration > 0
        assert root.attrs["request_delay"] == request.duration

    def test_timeout_closes_the_span(self):
        kernel = Kernel(costs=FREE, seed=1, spans=True)
        net = ring(kernel, 4)
        store = net.node("n1").place(KVStore(kernel, name="kv"))
        install(kernel, net, FaultPlan(seed=1).drop_messages(1.0, dst="n1"))
        outcome = []

        def main():
            try:
                yield store.get("a", timeout=30)
            except RemoteCallError:
                outcome.append("timed out")

        net.node("n3").spawn(main, name="client")
        kernel.run()
        assert outcome == ["timed out"]
        root = kernel.obs.find_spans(kind="call")[0]
        assert root.attrs["status"] == "timeout"
        assert root.end is not None

    def test_latency_histogram_fed_by_completions(self):
        kernel = Kernel(spans=True)
        obj = Echo(kernel, name="echo")

        def main():
            yield obj.echo(1)

        kernel.run_process(main, name="client")
        lat = kernel.metrics.get("calls.latency")
        assert lat.count == 1
        assert lat.min == lat.max >= 0
