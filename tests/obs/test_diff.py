"""Span-tree diffing on adversarial run pairs.

Three pairs, per the differ's contract:

* the same run twice — the diff is empty and the CLI exits 0;
* a priority/accept-order change — same calls, same outcomes, but the
  manager accepted them in a different order: flagged as reordered;
* a replicated workload, calm vs primary-crash — the failover shows up
  as replicated-write subtree divergence (changed primary/forwards),
  status changes, and instant-event divergence.
"""

import json

from repro.core import AlpsObject, entry, manager_process
from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.obs import JsonlSink, MemorySink
from repro.obs.analyze import from_spans
from repro.obs.diff import TraceDiff, main, render_diff
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor


class Pair(AlpsObject):
    """Manager that accepts its two entries in a fixed, parameterized order."""

    def __init__(self, kernel, order, **kwargs):
        self.order = order
        super().__init__(kernel, **kwargs)

    @entry(returns=1)
    def alpha(self):
        return "alpha"

    @entry(returns=1)
    def beta(self):
        return "beta"

    @manager_process(intercepts=["alpha", "beta"])
    def mgr(self):
        for name in self.order:
            call = yield self.accept(name)
            yield from self.execute(call)


def _pair_recording(order):
    kernel = Kernel(spans=True)
    obj = Pair(kernel, order, name="pair")
    kernel.spawn(lambda: (yield obj.alpha()), name="caller_a")
    kernel.spawn(lambda: (yield obj.beta()), name="caller_b")
    kernel.run()
    return from_spans(kernel.obs.spans)


class TestIdenticalRuns:
    def test_same_run_twice_diffs_empty(self):
        a = _pair_recording(("alpha", "beta"))
        b = _pair_recording(("alpha", "beta"))
        diff = TraceDiff(a, b)
        assert diff.identical()
        assert diff.structural_differences == 0
        assert diff.latency_differences == 0
        assert "equivalent" in render_diff(diff)

    def test_cli_exit_zero_on_identical_files(self, tmp_path, capsys):
        paths = []
        for run in ("a", "b"):
            kernel = Kernel(spans=True)
            path = tmp_path / f"{run}.jsonl"
            kernel.obs.add_sink(JsonlSink(str(path)))
            obj = Pair(kernel, ("alpha", "beta"), name="pair")
            kernel.spawn(lambda: (yield obj.alpha()), name="caller_a")
            kernel.spawn(lambda: (yield obj.beta()), name="caller_b")
            kernel.run()
            kernel.obs.close()
            paths.append(str(path))
        assert main(paths) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_cli_missing_file_exits_2(self, tmp_path):
        assert main([str(tmp_path / "nope.json"),
                     str(tmp_path / "nope2.json")]) == 2


class TestReorderedAccepts:
    def test_accept_order_change_is_flagged(self):
        a = _pair_recording(("alpha", "beta"))
        b = _pair_recording(("beta", "alpha"))
        diff = TraceDiff(a, b)
        assert not diff.identical()
        # Same call population either way — the divergence is pure order.
        assert diff.only_a == [] and diff.only_b == []
        assert diff.status_changes == []
        (entry,) = diff.reordered_accepts
        assert entry["object"] == "pair"
        assert entry["first_divergence"] == 0
        assert entry["a"] != entry["b"]
        assert "Reordered accepts" in render_diff(diff)

    def test_cli_exit_one_on_differences(self, tmp_path, capsys):
        for run, order in (("a", ("alpha", "beta")), ("b", ("beta", "alpha"))):
            kernel = Kernel(spans=True)
            kernel.obs.add_sink(JsonlSink(str(tmp_path / f"{run}.jsonl")))
            obj = Pair(kernel, order, name="pair")
            kernel.spawn(lambda: (yield obj.alpha()), name="caller_a")
            kernel.spawn(lambda: (yield obj.beta()), name="caller_b")
            kernel.run()
            kernel.obs.close()
        assert main([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]) == 1
        out = capsys.readouterr().out
        assert "Reordered accepts" in out
        assert main([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
                     "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["reordered_accepts"]


def _replicated_run(crash: bool):
    kernel = Kernel(costs=FREE, seed=3, trace=True, spans=True)
    sink = kernel.obs.add_sink(MemorySink())
    net = ring(kernel, 6)
    plan = FaultPlan(seed=3, detection_delay=20)
    if crash:
        plan.crash_node("n0", at=250, restart_at=1500)
    runtime = install(kernel, net, plan)
    sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=runtime))
    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net,
        3,
        writes=("put", "delete"),
        nodes=["n0", "n2", "n4"],
        supervisor=sup,
        call_timeout=60,
        heartbeat_interval=40,
        seed=3,
    )

    def writer():
        for i in range(10):
            try:
                yield from rep.put(f"k{i % 3}", i)
            except RemoteCallError:
                pass
            yield Delay(80)

    kernel.spawn(writer, name="writer")
    kernel.run(until=1400)
    return rep, from_spans(sink.records)


class TestFailoverDivergence:
    def test_crash_vs_calm_flags_the_failover_subtrees(self):
        rep_calm, calm = _replicated_run(crash=False)
        rep_crash, crashed = _replicated_run(crash=True)

        # The scenario is not vacuous: the crash run really failed over.
        events = {e for _, e, _, _ in rep_crash.view.transitions}
        assert "down" in events and "promote" in events
        assert "promote" not in {e for _, e, _, _ in rep_calm.view.transitions}

        diff = TraceDiff(calm, crashed)
        assert not diff.identical()
        # Failover signature: some aligned writes changed their subtree —
        # a different primary applied them and/or the forward set shrank.
        divergent = [d for d in diff.replication
                     if d["change"] == "subtree divergence"]
        assert divergent
        assert any("primary" in d["fields"] or "forwards" in d["fields"]
                   for d in divergent)
        # The crash run's kernel trace carries fault instants absent from
        # the calm run.
        assert diff.instant_divergence
        text = render_diff(diff)
        assert "Replicated writes" in text
        assert "Instant events" in text

    def test_latency_deltas_are_per_phase(self):
        _, calm = _replicated_run(crash=False)
        _, crashed = _replicated_run(crash=True)
        diff = TraceDiff(calm, crashed)
        # Aligned calls that moved must explain the movement by phase:
        # the per-call delta equals the sum of its phase deltas.
        movers = diff.top_movers(10)
        assert movers
        for delta in movers:
            assert sum(delta.phase_deltas().values()) == delta.total_delta
