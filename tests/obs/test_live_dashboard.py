"""The dashboard CLI: deterministic rendering from a JSONL sink."""

import pytest

from repro.kernel import Kernel
from repro.obs import JsonlSink
from repro.obs.live.__main__ import main
from repro.obs.live.dashboard import load_snapshots, render


def _make_jsonl(tmp_path, name="run.jsonl"):
    kernel = Kernel(seed=9)
    path = tmp_path / name
    sink = JsonlSink(str(path))
    kernel.obs.add_sink(sink, forward_trace=False)
    plane = kernel.obs.live
    lat = plane.histogram("svc.latency", window=1000)
    slo = plane.monitor("svc.slo", objective=0.9, fast=500, slow=2500)
    plane.stream_snapshots(every=2)
    for t in range(0, 3000, 25):
        kernel.clock.advance_to(t)
        lat.observe((t * 7) % 50)
        slo.record(not 900 < t < 1600)
        plane.offer("svc.keys", f"k{t % 5}")
    kernel.clock.advance_to(4000)
    kernel.obs.close()
    return path


class TestCli:
    def test_renders_latest_snapshot(self, tmp_path, capsys):
        path = _make_jsonl(tmp_path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "LIVE TELEMETRY" in out
        assert "svc.latency" in out
        assert "svc.slo" in out
        # Deterministic: a second invocation prints identical bytes.
        assert main([str(path)]) == 0
        assert capsys.readouterr().out == out

    def test_at_picks_earlier_snapshot(self, tmp_path, capsys):
        path = _make_jsonl(tmp_path)
        snapshots = load_snapshots(path.read_text().splitlines())
        target = snapshots[2]
        assert main([str(path), "--at", str(target["time"])]) == 0
        assert capsys.readouterr().out == render(target)

    def test_out_writes_file(self, tmp_path, capsys):
        path = _make_jsonl(tmp_path)
        out_path = tmp_path / "dash.txt"
        assert main([str(path), "--out", str(out_path)]) == 0
        assert capsys.readouterr().out == ""
        snapshots = load_snapshots(path.read_text().splitlines())
        assert out_path.read_text() == render(snapshots[-1])

    def test_no_snapshots_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"type": "event", "kind": "spawn", "time": 0}\n')
        assert main([str(empty)]) == 2
        assert "no live.snapshot" in capsys.readouterr().err

    def test_missing_file_exits_1(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "absent.jsonl")])
        assert exc.value.code == 1

    def test_follow_renders_then_stops_at_max_polls(self, tmp_path, capsys):
        path = _make_jsonl(tmp_path)
        assert main(
            [str(path), "--follow", "--interval", "0", "--max-polls", "2"]
        ) == 0
        out = capsys.readouterr().out
        snapshots = load_snapshots(path.read_text().splitlines())
        assert out == render(snapshots[-1])  # rendered once, latest state

    def test_follow_empty_exits_2(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(
            [str(empty), "--follow", "--interval", "0", "--max-polls", "2"]
        ) == 2


class TestLoader:
    def test_skips_partial_and_foreign_lines(self):
        lines = [
            '{"type": "event", "kind": "live.snapshot", "detail": {"time": 5}}',
            '{"type": "span", "kind": "call"}',
            "not json at all",
            '{"type": "event", "kind": "live.alert", "detail": {"time": 9}}',
            '{"type": "event", "kind": "live.snapshot", "detail": {"time": 7}',  # cut
            '{"type": "event", "kind": "live.snapshot", "detail": {"time": 8}}',
        ]
        assert load_snapshots(lines) == [{"time": 5}, {"time": 8}]

    def test_render_handles_minimal_snapshot(self):
        text = render({"time": 0, "step": 100})
        assert "LIVE TELEMETRY" in text
        assert "(none)" in text
