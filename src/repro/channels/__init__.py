"""Asynchronous typed channels (§2.1.2) and composition helpers."""

from .channel import Channel, Receive, ReceiveGuard, Send, TryReceive
from .ports import Mailbox, broadcast, channel_array, channel_matrix

__all__ = [
    "Channel",
    "Send",
    "Receive",
    "TryReceive",
    "ReceiveGuard",
    "channel_array",
    "channel_matrix",
    "broadcast",
    "Mailbox",
]
