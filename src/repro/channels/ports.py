"""Channel composition helpers.

The paper allows "channel variables ... to compose arbitrary data
structures (e.g., arrays of channels)" and channels to be passed as
parameters and message values.  These helpers build the common shapes.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import ChannelError
from .channel import Channel, Send


def channel_array(
    count: int,
    types: Sequence[type | None] | None = None,
    name: str = "chan",
    capacity: int | None = None,
) -> list[Channel]:
    """Create ``count`` channels named ``name[0] .. name[count-1]``."""
    if count < 0:
        raise ChannelError(f"channel array size must be >= 0, got {count}")
    return [
        Channel(types=types, capacity=capacity, name=f"{name}[{i}]")
        for i in range(count)
    ]


def channel_matrix(
    rows: int,
    cols: int,
    types: Sequence[type | None] | None = None,
    name: str = "chan",
) -> list[list[Channel]]:
    """A rows x cols grid of channels (e.g. all-pairs communication)."""
    return [
        [Channel(types=types, name=f"{name}[{r}][{c}]") for c in range(cols)]
        for r in range(rows)
    ]


def broadcast(channels: Sequence[Channel], *values: Any):
    """Process body fragment: send ``values`` on every channel.

    Usage: ``yield from broadcast(outputs, item)``.
    """
    for channel in channels:
        yield Send(channel, *values)


class Mailbox:
    """A request/reply pair: the idiom for talking to an executing entry.

    §2.2: "A user can also communicate with an executing entry procedure
    using messages."  A Mailbox bundles the two directions; pass it (it is
    a first-class value) as a call parameter.
    """

    def __init__(self, name: str = "mailbox") -> None:
        self.request = Channel(name=f"{name}.request")
        self.reply = Channel(name=f"{name}.reply")

    def close(self) -> None:
        self.request.close()
        self.reply.close()
