"""Asynchronous typed point-to-point channels (§2.1.2).

ALPS channels buffer messages: ``send`` never blocks (unless the channel
was created with a finite ``capacity``, a library extension) and
``receive`` blocks until a message is available.  A channel is declared
with a type tuple — ``chan(T1, ..., Tn)`` — and every message is an
n-tuple checked against it.  Channels are first-class: they can be stored
in arrays, passed as procedure parameters and sent in messages, exactly as
the paper requires.

Receive can appear in guards of ``select``/``loop``; the acceptance
condition (``receive C(x) when B(x)``) is evaluated SR-style by reading
the candidate message into temporaries first.  When the head message fails
the condition, the queue is scanned for the first message that satisfies
it (the documented choice; SR behaves this way for synchronization
expressions).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..errors import ChannelError, ChannelTypeError
from ..kernel.process import ProcessState
from ..kernel.syscalls import Select, Syscall
from ..kernel.waiting import Guard, Ready, Waitable

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class Channel(Waitable):
    """A buffered, typed, many-writer many-reader channel.

    Parameters
    ----------
    types:
        Tuple of element types, or ``None`` for an untyped channel.  A
        type of ``None`` inside the tuple skips checking for that slot.
    capacity:
        ``None`` (the ALPS default) buffers without bound; an integer
        bounds the buffer and makes ``send`` block while full.
    name:
        For diagnostics and traces.
    """

    _counter = 0

    def __init__(
        self,
        types: Sequence[type | None] | None = None,
        capacity: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if capacity is not None and capacity < 1:
            raise ChannelError(f"channel capacity must be >= 1, got {capacity}")
        self.types = tuple(types) if types is not None else None
        self.capacity = capacity
        Channel._counter += 1
        self.name = name or f"chan{Channel._counter}"
        self._queue: deque[tuple] = deque()
        #: Senders blocked on a full bounded channel: (process, message).
        self._blocked_senders: deque[tuple["Process", tuple]] = deque()
        self._closed = False
        #: Lifetime counters.
        self.total_sent = 0
        self.total_received = 0

    # -- type checking ---------------------------------------------------

    @property
    def arity(self) -> int | None:
        return len(self.types) if self.types is not None else None

    def check(self, values: tuple) -> None:
        """Validate a message against the channel type."""
        if self.types is None:
            return
        if len(values) != len(self.types):
            raise ChannelTypeError(
                f"{self.name}: message arity {len(values)} != channel arity "
                f"{len(self.types)}"
            )
        for index, (value, expected) in enumerate(zip(values, self.types)):
            if expected is not None and not isinstance(value, expected):
                raise ChannelTypeError(
                    f"{self.name}: element {index} is {type(value).__name__}, "
                    f"expected {expected.__name__}"
                )

    # -- state -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Mark the channel closed: pending messages drain, new sends fail."""
        self._closed = True

    def peek_all(self) -> list[tuple]:
        """Snapshot of the buffered messages (tests/diagnostics)."""
        return list(self._queue)

    # -- internal queue ops (used by syscall handlers/guards) -------------

    def _enqueue(self, values: tuple) -> None:
        self._queue.append(values)
        self.total_sent += 1

    def _take_at(self, index: int) -> tuple:
        """Remove and return the message at queue position ``index``."""
        if index == 0:
            message = self._queue.popleft()
        else:
            self._queue.rotate(-index)
            message = self._queue.popleft()
            self._queue.rotate(index)
        self.total_received += 1
        return message

    def _find(self, when: Callable[..., bool] | None) -> tuple[int, tuple] | None:
        """First queued message satisfying ``when`` (or the head if None)."""
        if not self._queue:
            return None
        if when is None:
            return 0, self._queue[0]
        for index, message in enumerate(self._queue):
            if when(*message):
                return index, message
        return None

    def _admit_blocked_sender(self, kernel: "Kernel") -> None:
        """After a receive, move one blocked sender's message into the buffer."""
        if self._blocked_senders and not self.full:
            sender, message = self._blocked_senders.popleft()
            self._enqueue(message)
            kernel.stats.sends += 1
            kernel.schedule_resume(sender, None, cost=kernel.costs.send)
            # The admitted message may satisfy another blocked receiver;
            # notify from a fresh event to avoid reentrant commits.
            kernel.post(kernel.clock.now, lambda: kernel.notify(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} len={len(self._queue)}>"


def unwrap_message(message: tuple) -> Any:
    """Deliver 1-tuples as bare values for ergonomic ``receive``."""
    return message[0] if len(message) == 1 else message


class Send(Syscall):
    """Syscall: asynchronous send (§2.1.2 ``send C(v1, ..., vn)``)."""

    __slots__ = ("channel", "values")

    def __init__(self, channel: Channel, *values: Any) -> None:
        self.channel = channel
        self.values = values

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        channel = self.channel
        if channel.closed:
            kernel.schedule_throw(
                proc, ChannelError(f"send on closed channel {channel.name}")
            )
            return
        try:
            channel.check(self.values)
        except ChannelTypeError as exc:
            kernel.schedule_throw(proc, exc)
            return
        if channel.full:
            # Bounded-channel extension: block the sender until space frees.
            kernel.metrics.counter(
                "channels.blocked_sends", "Sends that blocked on a full channel"
            ).inc()
            proc.state = ProcessState.BLOCKED
            proc.blocked_on = f"send({channel.name})"
            proc.waiting_for = ("send", channel)
            channel._blocked_senders.append((proc, self.values))
            return
        channel._enqueue(self.values)
        kernel.stats.sends += 1
        kernel.schedule_resume(proc, None, cost=cost + kernel.costs.send)
        kernel.notify(channel)


class ReceiveGuard(Guard):
    """Guard form of ``receive C(...) [when B] [pri E]`` (§2.4)."""

    def __init__(
        self,
        channel: Channel,
        when: Callable[..., bool] | None = None,
        pri: Any = None,
    ) -> None:
        self.channel = channel
        self.when = when
        self.pri = pri

    def poll(self, kernel: "Kernel") -> Ready | None:
        found = self.channel._find(self.when)
        if found is None:
            return None
        index, message = found
        return Ready(unwrap_message(message), token=index)

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> Any:
        self.channel._take_at(ready.token)
        kernel.stats.receives += 1
        self.channel._admit_blocked_sender(kernel)
        return ready.value

    def waitables(self) -> Iterable[Waitable]:
        return (self.channel,)

    def feasible(self) -> bool:
        # A closed, drained channel can never produce another message.
        return not (self.channel.closed and self.channel.empty)

    def describe(self) -> str:
        cond = "" if self.when is None else " when ..."
        return f"receive({self.channel.name}{cond})"


def Receive(
    channel: Channel,
    when: Callable[..., bool] | None = None,
) -> Select:
    """Syscall sugar: blocking receive, returning the message directly.

    ``value = yield Receive(ch)`` — equivalent to a one-guard select with
    the result unwrapped.
    """
    select = Select(ReceiveGuard(channel, when=when))
    select.unwrap = True
    return select


def TryReceive(channel: Channel, default: Any = None) -> Select:
    """Non-blocking receive: returns ``default`` if no message is ready."""
    select = Select(ReceiveGuard(channel), else_=True, else_value=default)
    select.unwrap = True
    return select
