"""repro — a reproduction of *Synchronization and Scheduling in ALPS
Objects* (Vishnubhotla, ICDCS 1988).

The package implements the ALPS concurrent-object model as an embedded
Python DSL on a deterministic virtual-time kernel:

* :mod:`repro.kernel` — lightweight processes, priority scheduling,
  virtual time, ``select`` with guards;
* :mod:`repro.channels` — asynchronous typed point-to-point channels;
* :mod:`repro.core` — ALPS objects, managers (``accept``/``start``/
  ``await``/``finish``), hidden procedure arrays, hidden parameters and
  results, request combining, server-process pools;
* :mod:`repro.baselines` — semaphores, monitors, serializers, path
  expressions and Ada-style rendezvous on the same kernel, for the
  comparisons the paper draws in §1;
* :mod:`repro.net` — a simulated multi-node network (including the 4×4
  transputer grid of §4) with remote entry calls;
* :mod:`repro.faults` — deterministic fault injection (crashes, partitions,
  message loss) with detection and recovery combinators;
* :mod:`repro.replication` — primary/backup replicated objects with
  automatic failover, promotion and catch-up;
* :mod:`repro.stdlib` — the paper's example objects, ready to use;
* :mod:`repro.workloads` — arrival processes and popularity distributions
  for the benchmark harness.

Quickstart::

    from repro import Kernel, AlpsObject, entry, manager_process, Select
    from repro.core import AcceptGuard

    class Cell(AlpsObject):
        @entry
        def put(self, value):
            self.value = value

        @entry(returns=1)
        def get(self):
            return self.value

        @manager_process(intercepts=["put", "get"])
        def mgr(self):
            full = False
            while True:
                result = yield Select(
                    AcceptGuard(self, "put", when=lambda v: not full),
                    AcceptGuard(self, "get") if full else WhenGuard(False),
                )
                yield from self.execute(result.value)
                full = result.value.entry == "put"

See ``examples/quickstart.py`` for a complete runnable program.
"""

from .channels import Channel, Mailbox, Receive, ReceiveGuard, Send, TryReceive
from .core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Call,
    CallState,
    Combiner,
    Finish,
    Intercept,
    PoolConfig,
    Reject,
    ShedGuard,
    Start,
    WhenGuard,
    accept,
    await_call,
    entry,
    execute_call,
    icpt,
    local,
    manager_process,
    over_cap,
    par_range,
)
from .errors import (
    AdmissionError,
    AlpsError,
    CallError,
    ChannelError,
    DeadlockError,
    GuardExhaustedError,
    InterceptError,
    NetworkError,
    ObjectModelError,
    ProtocolError,
    RemoteCallError,
    ReplicationError,
    SelectError,
)
from .faults import (
    ExponentialBackoff,
    FaultPlan,
    FixedBackoff,
    Heartbeat,
    RetryPolicy,
    retry,
)
from .faults import install as install_faults
from .replication import Replicated, place_replicated
from .kernel import (
    Charge,
    CostModel,
    Delay,
    Join,
    Kernel,
    Now,
    Par,
    Select,
    SelectResult,
    Spawn,
    Timeout,
    Yield,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # kernel
    "Kernel",
    "CostModel",
    "Spawn",
    "Join",
    "Delay",
    "Charge",
    "Yield",
    "Now",
    "Select",
    "SelectResult",
    "Par",
    "Timeout",
    # channels
    "Channel",
    "Send",
    "Receive",
    "TryReceive",
    "ReceiveGuard",
    "Mailbox",
    # core
    "AlpsObject",
    "entry",
    "local",
    "icpt",
    "Intercept",
    "manager_process",
    "Call",
    "CallState",
    "AcceptGuard",
    "AwaitGuard",
    "WhenGuard",
    "Start",
    "Finish",
    "Reject",
    "ShedGuard",
    "over_cap",
    "accept",
    "await_call",
    "execute_call",
    "Combiner",
    "PoolConfig",
    "par_range",
    # faults
    "FaultPlan",
    "install_faults",
    "retry",
    "RetryPolicy",
    "FixedBackoff",
    "ExponentialBackoff",
    "Heartbeat",
    # replication
    "Replicated",
    "place_replicated",
    # errors
    "AdmissionError",
    "AlpsError",
    "DeadlockError",
    "GuardExhaustedError",
    "SelectError",
    "ChannelError",
    "CallError",
    "ObjectModelError",
    "InterceptError",
    "ProtocolError",
    "NetworkError",
    "RemoteCallError",
    "ReplicationError",
]
