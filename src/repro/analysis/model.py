"""Pure-AST extraction of ALPS object declarations.

The linter never imports the code it checks — examples spawn kernels at
module scope and fixtures are deliberately broken — so everything it
knows about an object comes from the syntax tree: ``@entry``/``@local``
decorators, the ``@manager_process(intercepts=...)`` clause and the
manager body.  Classes are discovered at any nesting depth (example
programs define objects inside functions).

The extraction is best-effort by design.  Anything it cannot resolve
syntactically — a computed intercepts mapping, an ``array=`` bound read
from configuration — is recorded as *unknown* and the checks that would
need it stay silent rather than guess (``repro.analysis.lint_class``
offers the reflective mode for exact specs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

#: Sentinel for values the AST cannot determine.
UNKNOWN = object()


def decorator_name(node: ast.expr) -> str | None:
    """Final identifier of a decorator: ``entry``, ``core.entry`` → ``entry``."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def const_value(node: ast.expr | None, default: Any = UNKNOWN) -> Any:
    if node is None:
        return default
    if isinstance(node, ast.Constant):
        return node.value
    return UNKNOWN


@dataclass
class InterceptInfo:
    """Parsed ``icpt(params=, results=)`` value (or a bare procedure name)."""

    params: Any = 0  # int or UNKNOWN
    results: Any = 0
    line: int = 0


@dataclass
class EntryInfo:
    """One ``@entry``/``@local`` declaration as the AST shows it."""

    name: str
    line: int
    exported: bool = True
    #: Formal parameter count of the def, minus ``self``.
    n_formals: int = 0
    returns: Any = 0  # int or UNKNOWN
    array: Any = None  # None (scalar), int, str (attribute bound) or UNKNOWN
    hidden_params: Any = 0
    hidden_results: Any = 0
    intercept: InterceptInfo | None = None
    #: Compatibility groups from ``compatible=`` (multiactive annotation);
    #: empty when undeclared, UNKNOWN when syntactically unresolvable.
    compatible: Any = ()
    #: The body ``def`` node (None in reflective mode when unavailable).
    fn: ast.FunctionDef | None = None

    @property
    def def_params(self) -> Any:
        """Definition-part parameter count (formals minus hidden, §2.8)."""
        if self.hidden_params is UNKNOWN:
            return UNKNOWN
        return self.n_formals - self.hidden_params

    @property
    def array_size(self) -> Any:
        """Statically known slot count: 1 for scalars, N for ``array=N``."""
        if self.array is None:
            return 1
        if isinstance(self.array, int):
            return self.array
        return UNKNOWN  # attribute-named or unparsable bound


@dataclass
class ManagerInfo:
    """The ``@manager_process`` declaration plus its body."""

    name: str
    line: int
    fn: ast.FunctionDef
    #: Parsed intercepts clause; None when it was not syntactically a
    #: list/tuple/set of names or a dict of names to icpt() calls.
    intercepts: dict[str, InterceptInfo] | None = None
    intercepts_line: int = 0


@dataclass
class ObjectInfo:
    """Everything the linter knows about one ALPS object class."""

    name: str
    line: int
    path: str = "<source>"
    entries: dict[str, EntryInfo] = field(default_factory=dict)
    manager: ManagerInfo | None = None
    #: Plain (undecorated) methods — ``setup``, helpers — by name; the
    #: whole-program analysis inlines these when a body calls them.
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def intercepted(self) -> dict[str, EntryInfo]:
        if self.manager is None or self.manager.intercepts is None:
            return {}
        return {
            name: self.entries[name]
            for name in self.manager.intercepts
            if name in self.entries
        }


def _parse_intercept_value(node: ast.expr) -> InterceptInfo:
    """``icpt(1, results=2)`` / ``Intercept(params=1)`` → InterceptInfo."""
    info = InterceptInfo(line=node.lineno)
    if not (
        isinstance(node, ast.Call)
        and decorator_name(node) in ("icpt", "Intercept")
    ):
        info.params = info.results = UNKNOWN
        return info
    positional = [const_value(a) for a in node.args]
    if len(positional) >= 1:
        info.params = positional[0]
    if len(positional) >= 2:
        info.results = positional[1]
    for kw in node.keywords:
        if kw.arg == "params":
            info.params = const_value(kw.value)
        elif kw.arg == "results":
            info.results = const_value(kw.value)
    return info


def _parse_intercepts(node: ast.expr) -> dict[str, InterceptInfo] | None:
    """Parse the ``intercepts=`` argument of ``@manager_process``."""
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        out: dict[str, InterceptInfo] = {}
        for element in node.elts:
            name = const_value(element)
            if not isinstance(name, str):
                return None
            out[name] = InterceptInfo(line=element.lineno)
        return out
    if isinstance(node, ast.Dict):
        out = {}
        for key, value in zip(node.keys, node.values):
            name = const_value(key)
            if not isinstance(name, str):
                return None
            out[name] = _parse_intercept_value(value)
        return out
    return None


def _parse_entry(fn: ast.FunctionDef, deco: ast.expr, kind: str) -> EntryInfo:
    info = EntryInfo(
        name=fn.name,
        line=fn.lineno,
        exported=(kind == "entry"),
        n_formals=max(0, len(fn.args.args) - 1)
        + len(fn.args.posonlyargs),
    )
    info.fn = fn
    if isinstance(deco, ast.Call):
        for kw in deco.keywords:
            if kw.arg == "returns":
                info.returns = const_value(kw.value)
            elif kw.arg == "array":
                value = const_value(kw.value)
                info.array = value if isinstance(value, (int, str)) else UNKNOWN
            elif kw.arg == "hidden_params":
                info.hidden_params = const_value(kw.value)
            elif kw.arg == "hidden_results":
                info.hidden_results = const_value(kw.value)
            elif kw.arg == "compatible":
                info.compatible = _parse_compatible(kw.value)
    return info


def _parse_compatible(node: ast.expr) -> Any:
    """``compatible="g"`` / ``compatible=("g", "h")`` → tuple of names."""
    value = const_value(node)
    if isinstance(value, str):
        return (value,)
    if isinstance(node, (ast.Tuple, ast.List)):
        names = [const_value(el) for el in node.elts]
        if all(isinstance(n, str) for n in names):
            return tuple(dict.fromkeys(names))
    return UNKNOWN


def _parse_manager(fn: ast.FunctionDef, deco: ast.expr) -> ManagerInfo:
    info = ManagerInfo(name=fn.name, line=fn.lineno, fn=fn)
    if isinstance(deco, ast.Call):
        for kw in deco.keywords:
            if kw.arg == "intercepts":
                info.intercepts = _parse_intercepts(kw.value)
                info.intercepts_line = kw.value.lineno
    return info


def extract_objects(
    tree: ast.Module, path: str = "<source>", managed_only: bool = True
) -> list[ObjectInfo]:
    """All ALPS object classes in a module (any nesting depth).

    By default only classes declaring a ``@manager_process`` are returned
    — they are the per-class lint targets; a managerless object has no
    protocol to get wrong.  The whole-program analysis passes
    ``managed_only=False`` to also see unmanaged objects (their bodies
    participate in cross-object wait cycles through hidden procedure
    arrays).  Single-module inheritance is resolved by base-class name so
    fixture hierarchies behave like the metaclass does.
    """
    by_name: dict[str, ObjectInfo] = {}
    objects: list[ObjectInfo] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ObjectInfo(name=node.name, line=node.lineno, path=path)
        # Same-module inheritance: start from the base's declarations.
        for base in node.bases:
            base_name = decorator_name(base)
            parent = by_name.get(base_name or "")
            if parent is not None:
                info.entries.update(parent.entries)
                info.methods.update(parent.methods)
                info.manager = parent.manager
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            handled = False
            for deco in stmt.decorator_list:
                kind = decorator_name(deco)
                if kind in ("entry", "local") and isinstance(
                    stmt, ast.FunctionDef
                ):
                    info.entries[stmt.name] = _parse_entry(stmt, deco, kind)
                    handled = True
                elif kind == "manager_process" and isinstance(
                    stmt, ast.FunctionDef
                ):
                    info.manager = _parse_manager(stmt, deco)
                    handled = True
            if not handled and isinstance(stmt, ast.FunctionDef):
                info.methods[stmt.name] = stmt
        by_name[node.name] = info
        if info.manager is not None:
            # Attach intercept info to the entries (mirrors the metaclass).
            for entry in info.entries.values():
                entry.intercept = None
            if info.manager.intercepts is not None:
                for name, icpt_info in info.manager.intercepts.items():
                    if name in info.entries:
                        info.entries[name].intercept = icpt_info
            objects.append(info)
        elif not managed_only and info.entries:
            objects.append(info)
    return objects


def object_info_from_class(cls: type, path: str, tree: ast.Module) -> ObjectInfo:
    """Reflective extraction: exact specs from the class, body from AST.

    Used by :func:`repro.analysis.lint_class` so tests can lint a class
    object directly — decorated specs (``__alps_entries__``,
    ``__alps_manager__``) are authoritative, only the manager *body*
    comes from the source tree.
    """
    class_node = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            class_node = node
            break
    if class_node is None:
        raise ValueError(f"class {cls.__name__} not found in parsed source")

    info = ObjectInfo(name=cls.__name__, line=class_node.lineno, path=path)
    manager_spec = cls.__alps_manager__
    for name, spec in cls.__alps_entries__.items():
        entry = EntryInfo(
            name=name,
            line=class_node.lineno,
            exported=spec.exported,
            n_formals=spec.params + spec.hidden_params,
            returns=spec.returns,
            array=spec.array,
            hidden_params=spec.hidden_params,
            hidden_results=spec.hidden_results,
            compatible=tuple(getattr(spec, "compatible", ()) or ()),
        )
        if spec.intercept is not None:
            entry.intercept = InterceptInfo(
                params=spec.intercept.params,
                results=spec.intercept.results,
                line=class_node.lineno,
            )
        for stmt in class_node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                entry.fn = stmt
                entry.line = stmt.lineno
        info.entries[name] = entry
    if manager_spec is not None:
        for stmt in class_node.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == manager_spec.fn.__name__
            ):
                info.manager = ManagerInfo(
                    name=stmt.name,
                    line=stmt.lineno,
                    fn=stmt,
                    intercepts={
                        name: InterceptInfo(
                            params=icpt.params,
                            results=icpt.results,
                            line=stmt.lineno,
                        )
                        for name, icpt in manager_spec.intercepts.items()
                    },
                    intercepts_line=stmt.lineno,
                )
    return info
