"""``alpslint`` — command-line front end of the ALPS protocol linter.

Run as ``python -m repro.analysis`` (or via ``tools/alpslint.py``)::

    python -m repro.analysis src/repro examples          # lint trees
    python -m repro.analysis --format json file.py       # machine output
    python -m repro.analysis --select ALP101,ALP111 ...  # only some checks
    python -m repro.analysis --list-checks               # show catalogue
    python -m repro.analysis --check-corpus tests/fixtures/analysis
    python -m repro.analysis --dot snapshot.json -o wait_for.dot
    python -m repro.analysis --whole-program src examples  # merged program
    python -m repro.analysis --whole-program --dot src -o callgraph.dot
    python -m repro.analysis --sarif out.sarif src       # PR annotations

Exit codes: 0 clean, 1 findings reported (or corpus failures), 2 usage /
input errors (including unknown ``--select``/``--ignore`` codes).
``--dot SNAPSHOT`` renders a wait-for snapshot (the
``WaitForSnapshot.to_json()`` dump carried by ``DeadlockError``) as
Graphviz DOT instead of linting; under ``--whole-program`` a bare
``--dot`` exports the *static call graph* instead, predicted-cycle
edges red/bold — the two graphs share a notation so a prediction can be
laid beside the live snapshot.  ``--check-corpus`` is the CI self-test: every
``bad_*.py`` fixture must produce exactly the codes named in its
``# expect: ALPxxx [ALPyyy ...]`` header and every ``good_*.py`` must
lint clean — and an *empty* corpus is a failure, so a bad glob can
never silently skip the whole suite.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

from .findings import CATALOGUE, Finding, Severity
from .static import lint_file, lint_paths

_EXPECT_RE = re.compile(r"^#\s*expect:\s*(.+)$", re.MULTILINE)


class UsageError(Exception):
    """Bad invocation (exit 2), as opposed to findings (exit 1)."""


def _parse_codes(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    codes = {part.strip().upper() for part in raw.split(",") if part.strip()}
    unknown = codes - set(CATALOGUE)
    if unknown:
        valid = ", ".join(sorted(CATALOGUE))
        raise UsageError(
            f"alpslint: unknown code(s): {', '.join(sorted(unknown))}; "
            f"valid codes: {valid}"
        )
    return codes


def _filter(
    findings: list[Finding], select: set[str] | None, ignore: set[str] | None
) -> list[Finding]:
    out = findings
    if select is not None:
        out = [f for f in out if f.code in select]
    if ignore is not None:
        out = [f for f in out if f.code not in ignore]
    return out


def _print_findings(findings: list[Finding], fmt: str, stream) -> None:
    if fmt == "json":
        json.dump([f.to_dict() for f in findings], stream, indent=2)
        stream.write("\n")
        return
    for finding in findings:
        print(finding.render(), file=stream)
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        print(
            f"alpslint: {errors} error(s), {warnings} warning(s)", file=stream
        )


def _list_checks(stream) -> None:
    for code in sorted(CATALOGUE):
        check = CATALOGUE[code]
        print(f"{code}  {check.severity}  {check.title}", file=stream)
        print(f"        {check.summary}", file=stream)


def expected_codes(source: str) -> set[str]:
    """Codes declared in ``# expect:`` header comments of a fixture."""
    codes: set[str] = set()
    for match in _EXPECT_RE.finditer(source):
        codes.update(
            part.strip().upper()
            for part in re.split(r"[,\s]+", match.group(1))
            if part.strip()
        )
    return codes


def check_corpus(directory: str, stream) -> int:
    """Verify the bad/good fixture corpus; returns a process exit code."""
    if not os.path.isdir(directory):
        print(f"alpslint: corpus directory not found: {directory}", file=stream)
        return 2
    bad = sorted(
        f for f in os.listdir(directory)
        if f.startswith("bad_") and f.endswith(".py")
    )
    good = sorted(
        f for f in os.listdir(directory)
        if f.startswith("good_") and f.endswith(".py")
    )
    if not bad or not good:
        print(
            f"alpslint: corpus at {directory} is empty or one-sided "
            f"({len(bad)} bad, {len(good)} good fixture(s)) — refusing to "
            f"pass a vacuous check",
            file=stream,
        )
        return 1
    failures = 0
    for name in bad:
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        expected = expected_codes(source)
        if not expected:
            print(f"FAIL {name}: no '# expect: ALPxxx' header", file=stream)
            failures += 1
            continue
        found = {f.code for f in lint_file(path)}
        missing = expected - found
        if missing:
            print(
                f"FAIL {name}: expected {sorted(expected)}, linter found "
                f"{sorted(found)} (missing {sorted(missing)})",
                file=stream,
            )
            failures += 1
        else:
            print(f"ok   {name}: {sorted(found)}", file=stream)
    for name in good:
        path = os.path.join(directory, name)
        findings = lint_file(path)
        if findings:
            print(
                f"FAIL {name}: expected clean, got "
                f"{sorted({f.code for f in findings})}",
                file=stream,
            )
            for finding in findings:
                print("     " + finding.render(), file=stream)
            failures += 1
        else:
            print(f"ok   {name}: clean", file=stream)
    print(
        f"alpslint corpus: {len(bad)} bad + {len(good)} good fixture(s), "
        f"{failures} failure(s)",
        file=stream,
    )
    return 1 if failures else 0


def render_dot(snapshot_path: str, output: str | None, err) -> int:
    """Load a wait-for snapshot JSON file and emit Graphviz DOT."""
    from .dot import to_dot

    try:
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"alpslint: cannot read snapshot {snapshot_path}: {exc}", file=err)
        return 2
    if not isinstance(data, dict) or data.get("type") != "wait_for":
        print(
            f"alpslint: {snapshot_path} is not a wait-for snapshot "
            f"(expected a WaitForSnapshot.to_json() dump)",
            file=err,
        )
        return 2
    text = to_dot(data) + "\n"
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alpslint",
        description="Static protocol linter for ALPS objects.",
    )
    parser.add_argument(
        "paths", nargs="*", help="python files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated codes to enable"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated codes to disable"
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalogue"
    )
    parser.add_argument(
        "--check-corpus",
        metavar="DIR",
        help="self-test: verify the bad/good fixture corpus in DIR",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="merge all paths into one program: cross-file call graph, "
        "ALP120 cycle prediction, ALP121 interference",
    )
    parser.add_argument(
        "--dot",
        metavar="SNAPSHOT",
        nargs="?",
        const="",
        default=None,
        help="render a wait-for snapshot JSON file as Graphviz DOT; under "
        "--whole-program, a bare --dot exports the static call graph",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write findings as SARIF 2.1.0 to FILE "
        "(for PR annotation uploads)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="with --dot: write the DOT text here instead of stdout",
    )
    args = parser.parse_args(argv)
    if args.whole_program and args.dot:
        # Under --whole-program a bare --dot means "export the call
        # graph"; anything argparse attached to it is really a path
        # (``--whole-program --dot src`` must lint src).
        args.paths.insert(0, args.dot)
        args.dot = ""

    if args.list_checks:
        _list_checks(sys.stdout)
        return 0
    if args.dot is not None and not args.whole_program:
        if not args.dot:
            print(
                "alpslint: bare --dot needs --whole-program "
                "(or pass a snapshot file)",
                file=sys.stderr,
            )
            return 2
        return render_dot(args.dot, args.output, sys.stderr)
    if args.check_corpus:
        return check_corpus(args.check_corpus, sys.stdout)
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("alpslint: no paths given", file=sys.stderr)
        return 2

    for path in args.paths:
        if not os.path.exists(path):
            print(f"alpslint: path not found: {path}", file=sys.stderr)
            return 2

    graph = None
    try:
        if args.whole_program:
            from .wholeprogram import analyze_paths

            # One merged program for the cross-file checks; per-class
            # checks still run per module (program_checks off to avoid
            # duplicating ALP120/ALP121 from the single-module pass).
            graph, wp_findings = analyze_paths(args.paths)
            findings = lint_paths(args.paths, program_checks=False)
            findings.extend(wp_findings)
            findings.sort(key=lambda f: (f.path, f.line, f.code))
        else:
            findings = lint_paths(args.paths)
    except SyntaxError as exc:
        print(f"alpslint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2
    try:
        findings = _filter(
            findings, _parse_codes(args.select), _parse_codes(args.ignore)
        )
    except UsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    dot_on_stdout = False
    if args.dot is not None and args.whole_program and graph is not None:
        from .wholeprogram import callgraph_to_dot

        text = callgraph_to_dot(graph) + "\n"
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
            dot_on_stdout = True
    if args.sarif:
        from .sarif import render_sarif

        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(findings))
    if not dot_on_stdout:
        _print_findings(findings, args.fmt, sys.stdout)
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0
