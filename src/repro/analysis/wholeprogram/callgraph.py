"""Cross-object static call graph over ALPS programs.

The per-class linter sees one manager at a time; the failures the paper
calls hardest — inter-manager wait cycles — only appear when several
objects call each other.  This module builds a *whole-program* graph
whose nodes are manager processes, entry bodies, and plain driver
functions, and whose edges are the wait relations a call *would* create
at runtime:

* a call to an **intercepted** entry of ``B`` makes the caller wait on
  ``B.manager`` (accept/finish phases) and on the body (started phase);
* a call to an unmanaged entry waits on the body alone (and, through
  the hidden procedure array, on whoever holds the slots — body-to-body
  edges subsume pool exhaustion);
* a manager blocks on a body when it ``execute``\\ s the call inline or
  sits in a **non-receptive** await (an ``await_`` sugar site or a
  ``Select`` holding no accept guard).  A select that still holds accept
  guards keeps the manager receptive — the §2.3 asynchrony that makes
  nested calls safe — and contributes no manager edge.

Call sites are resolved to target classes by constructor/attribute
dataflow: ``self.backend = KVStore(kernel)``, constructor keywords
(``A(kernel, peer=b)`` — the default ``setup`` stores them as
attributes), post-construction wiring (``a.peer = b``), aliased locals
(``x = self.backend``), and elements of instance collections
(``self.shards[i]``).  Anything else — dict lookups, parameters, call
results — becomes an explicit **unknown-target edge**: visible in the
graph and the DOT export, silent in cycle prediction (an unknown edge
can never complete a cycle, but it is never silently dropped).

The graph is the substrate of :mod:`.cycles` (ALP120 prediction) and of
``python -m repro.analysis --whole-program --dot``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from ..model import ObjectInfo, const_value, extract_objects

#: Guard constructor names, mirrored from the per-class linter.
_ACCEPT_GUARDS = {"AcceptGuard", "ShedGuard"}
_AWAIT_GUARDS = {"AwaitGuard"}


@dataclass(frozen=True)
class Node:
    """One vertex: a manager process, an entry body, or a plain function."""

    kind: str  # "manager" | "body" | "func"
    cls: str | None
    name: str

    @property
    def label(self) -> str:
        if self.kind == "manager":
            return f"{self.cls}.manager"
        if self.kind == "body":
            return f"{self.cls}.{self.name}"
        return self.name


class Edge:
    """One wait relation; ``dst is None`` marks an unknown-target edge."""

    __slots__ = ("src", "dst", "kind", "label", "path", "line", "obj", "entry")

    def __init__(
        self,
        src: Node,
        dst: Node | None,
        kind: str,
        label: str,
        path: str,
        line: int,
        obj: str | None = None,
        entry: str | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind  # call | body | execute | await | unknown
        self.label = label
        self.path = path
        self.line = line
        self.obj = obj
        self.entry = entry

    @property
    def unknown(self) -> bool:
        return self.dst is None

    def describe(self) -> str:
        dst = self.dst.label if self.dst is not None else "?"
        return f"{self.src.label} --[{self.label}]--> {dst}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Edge {self.describe()}>"


class Program:
    """Every class, function, and inferred attribute type in a code set."""

    def __init__(self) -> None:
        self.modules: list[tuple[str, ast.Module]] = []
        self.classes: dict[str, ObjectInfo] = {}
        #: Class names defined more than once across modules — resolution
        #: through them would be a guess, so they resolve to unknown.
        self.ambiguous: set[str] = set()
        #: Module-level driver functions per module: (name, fn, path).
        self.functions: list[tuple[str, ast.FunctionDef, str]] = []
        #: (class, attr) → set of class names the attribute may hold.
        self.attr_types: dict[tuple[str, str], set[str]] = {}
        #: (class, attr) pairs that hold *collections* of instances.
        self.attr_colls: set[tuple[str, str]] = set()
        #: (class, kwarg) → classes passed at instantiation sites.
        self.kwarg_types: dict[tuple[str, str], set[str]] = {}

    def resolve_class(self, name: str) -> ObjectInfo | None:
        if name in self.ambiguous:
            return None
        return self.classes.get(name)


class CallGraph:
    """The assembled graph: nodes, edges, and deterministic ordering."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.nodes: list[Node] = []
        self.edges: list[Edge] = []
        self._seen_nodes: set[Node] = set()
        self._seen_edges: set[tuple[Node, Node | None, str, int, str]] = set()

    def add_node(self, node: Node) -> Node:
        if node not in self._seen_nodes:
            self._seen_nodes.add(node)
            self.nodes.append(node)
        return node

    def add_edge(self, edge: Edge) -> None:
        key = (edge.src, edge.dst, edge.kind, edge.line, edge.label)
        if key in self._seen_edges:
            return
        self._seen_edges.add(key)
        self.add_node(edge.src)
        if edge.dst is not None:
            self.add_node(edge.dst)
        self.edges.append(edge)

    def resolved_edges(self) -> list[Edge]:
        return [e for e in self.edges if e.dst is not None]

    def unknown_edges(self) -> list[Edge]:
        return [e for e in self.edges if e.dst is None]

    def edges_from(self, node: Node) -> list[Edge]:
        return [e for e in self.edges if e.src == node]


# ---------------------------------------------------------------------------
# Program construction: class tables and attribute dataflow
# ---------------------------------------------------------------------------

#: A resolved value during dataflow: an instance set or a collection of
#: instances of the named classes.
_Value = tuple[str, frozenset[str]]  # ("inst" | "coll", class names)


def build_program(modules: Iterable[tuple[str, ast.Module]]) -> Program:
    """Assemble a :class:`Program` from parsed ``(path, tree)`` modules."""
    program = Program()
    for path, tree in modules:
        program.modules.append((path, tree))
        for obj in extract_objects(tree, path=path, managed_only=False):
            if obj.name in program.classes and program.classes[obj.name] is not obj:
                existing = program.classes[obj.name]
                if existing.path != path or existing.line != obj.line:
                    program.ambiguous.add(obj.name)
            program.classes[obj.name] = obj
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                program.functions.append((stmt.name, stmt, path))
    # Two passes so constructor keywords resolved in the first pass can
    # type ``self.attr = param`` assignments seen in the second.
    for _ in range(2):
        for path, tree in program.modules:
            _DataflowPass(program).scan(tree.body, {}, owner=None)
    return program


class _DataflowPass:
    """Order-sensitive scan filling ``attr_types``/``kwarg_types``."""

    def __init__(self, program: Program) -> None:
        self.program = program

    # -- value resolution --------------------------------------------------

    def resolve(
        self, node: ast.expr, env: dict[str, _Value], owner: str | None
    ) -> _Value | None:
        if isinstance(node, ast.Call):
            cls = self._instantiated_class(node)
            if cls is not None:
                self._record_ctor_kwargs(cls, node, env, owner)
                return ("inst", frozenset({cls}))
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and owner is not None
        ):
            key = (owner, node.attr)
            classes = self.program.attr_types.get(key)
            if classes:
                kind = "coll" if key in self.program.attr_colls else "inst"
                return (kind, frozenset(classes))
            return None
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value, env, owner)
            if base is not None and base[0] == "coll":
                return ("inst", base[1])
            return None
        if isinstance(node, (ast.List, ast.Tuple)):
            classes: set[str] = set()
            for el in node.elts:
                r = self.resolve(el, env, owner)
                if r is not None:
                    classes |= r[1]
            return ("coll", frozenset(classes)) if classes else None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            r = self.resolve(node.elt, env, owner)
            if r is not None:
                return ("coll", r[1])
            return None
        return None

    def _instantiated_class(self, call: ast.Call) -> str | None:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None or name in self.program.ambiguous:
            return None
        return name if name in self.program.classes else None

    def _record_ctor_kwargs(
        self, cls: str, call: ast.Call, env: dict[str, _Value], owner: str | None
    ) -> None:
        # Constructor keywords reach the instance as attributes through the
        # default ``setup`` (which setattrs every config item) or an
        # explicit ``setup``/``__init__`` storing the parameter; both are
        # covered by recording kwarg→attr and kwarg→param types.
        for kw in call.keywords:
            if kw.arg is None:
                continue
            r = self.resolve(kw.value, env, owner)
            if r is None:
                continue
            kind, classes = r
            self.program.kwarg_types.setdefault((cls, kw.arg), set()).update(classes)
            self.program.attr_types.setdefault((cls, kw.arg), set()).update(classes)
            if kind == "coll":
                self.program.attr_colls.add((cls, kw.arg))

    # -- statement scan ----------------------------------------------------

    def scan(
        self,
        stmts: Iterable[ast.stmt],
        env: dict[str, _Value],
        owner: str | None,
    ) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, env, owner)

    def _scan_stmt(
        self, stmt: ast.stmt, env: dict[str, _Value], owner: str | None
    ) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = self.resolve(stmt.value, env, owner)
            if isinstance(target, ast.Name):
                if value is not None:
                    env[target.id] = value
                else:
                    env.pop(target.id, None)
            elif isinstance(target, ast.Attribute):
                self._record_attr_store(target, value, env, owner)
            return
        if isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    self._scan_method(stmt.name, sub, env)
            return
        if isinstance(stmt, ast.FunctionDef):
            # Nested/driver function: closures see the enclosing bindings.
            self.scan(stmt.body, dict(env), owner)
            return
        # Compound statements: walk their bodies in order; expressions
        # (bare calls) still need kwarg recording for instantiations.
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.stmt):
                self._scan_stmt(value, env, owner)
            elif isinstance(value, ast.expr):
                for call in ast.walk(value):
                    if isinstance(call, ast.Call):
                        cls = self._instantiated_class(call)
                        if cls is not None:
                            self._record_ctor_kwargs(cls, call, env, owner)

    def _scan_method(
        self, cls: str, fn: ast.FunctionDef, outer_env: dict[str, _Value]
    ) -> None:
        args = fn.args
        is_method = bool(args.args) and args.args[0].arg == "self"
        env = dict(outer_env)
        if is_method and fn.name in ("setup", "__init__"):
            # Constructor parameters carry the types seen at call sites.
            for arg in args.args[1:]:
                classes = self.program.kwarg_types.get((cls, arg.arg))
                if classes:
                    env[arg.arg] = ("inst", frozenset(classes))
        self.scan(fn.body, env, cls if is_method else None)

    def _record_attr_store(
        self,
        target: ast.Attribute,
        value: _Value | None,
        env: dict[str, _Value],
        owner: str | None,
    ) -> None:
        if value is None:
            return
        kind, classes = value
        owners: set[str] = set()
        base = target.value
        if isinstance(base, ast.Name):
            if base.id == "self" and owner is not None:
                owners.add(owner)
            else:
                bound = env.get(base.id)
                if bound is not None and bound[0] == "inst":
                    owners |= bound[1]
        for owner_cls in owners:
            key = (owner_cls, target.attr)
            self.program.attr_types.setdefault(key, set()).update(classes)
            if kind == "coll":
                self.program.attr_colls.add(key)


# ---------------------------------------------------------------------------
# Call-site extraction
# ---------------------------------------------------------------------------


def build_call_graph(program: Program) -> CallGraph:
    """Extract every call site into wait edges, one context at a time."""
    graph = CallGraph(program)
    for cls_name in sorted(program.classes):
        obj = program.classes[cls_name]
        if obj.manager is not None:
            ctx = Node("manager", cls_name, "manager")
            graph.add_node(ctx)
            _ContextWalker(program, graph, obj, ctx, manager=True).walk(
                obj.manager.fn
            )
        for entry_name in sorted(obj.entries):
            info = obj.entries[entry_name]
            if info.fn is None:
                continue
            ctx = Node("body", cls_name, entry_name)
            graph.add_node(ctx)
            _ContextWalker(program, graph, obj, ctx).walk(info.fn)
    for name, fn, path in program.functions:
        ctx = Node("func", None, name)
        walker = _ContextWalker(program, graph, None, ctx, path=path)
        walker.walk(fn)
    return graph


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _ContextWalker:
    """Collects the wait edges created by one context's call sites.

    A context is a manager body, an entry body, or a plain driver
    function.  Plain ``self`` helper methods are inlined into the calling
    context (their call sites block whoever runs them); nested function
    definitions are traversed in-context (closures run on the caller's
    process).
    """

    def __init__(
        self,
        program: Program,
        graph: CallGraph,
        obj: ObjectInfo | None,
        ctx: Node,
        manager: bool = False,
        path: str | None = None,
    ) -> None:
        self.program = program
        self.graph = graph
        self.obj = obj
        self.ctx = ctx
        self.manager = manager
        self.path = path if path is not None else (obj.path if obj else "<source>")
        self.env: dict[str, _Value] = {}
        self._flow = _DataflowPass(program)
        self._inlined: set[str] = set()

    # -- traversal ---------------------------------------------------------

    def walk(self, fn: ast.FunctionDef) -> None:
        self._yielded = {
            id(y.value)
            for y in ast.walk(fn)
            if isinstance(y, (ast.Yield, ast.YieldFrom))
            and isinstance(y.value, ast.Call)
        }
        self._walk_stmts(fn.body)

    def _walk_stmts(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)) and value.value is not None:
                value = value.value
            if isinstance(target, ast.Name):
                bound = self._flow.resolve(value, self.env, self._owner())
                if bound is not None:
                    self.env[target.id] = bound
                else:
                    self.env.pop(target.id, None)
        if isinstance(stmt, ast.FunctionDef):
            # Closure bodies (clients built inside drivers) run on the
            # surrounding process: same context, inherited aliases.
            saved = dict(self.env)
            self._yielded |= {
                id(y.value)
                for y in ast.walk(stmt)
                if isinstance(y, (ast.Yield, ast.YieldFrom))
                and isinstance(y.value, ast.Call)
            }
            self._walk_stmts(stmt.body)
            self.env = saved
            return
        if isinstance(stmt, ast.ClassDef):
            return  # nested classes are separate contexts, handled globally
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child)
            else:
                self._walk_expr(child)

    def _walk_expr(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._classify_call(sub)

    def _owner(self) -> str | None:
        return self.obj.name if self.obj is not None else None

    # -- call classification -----------------------------------------------

    def _classify_call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name is None:
            return
        func = node.func

        if isinstance(func, ast.Name):
            if name == "Select" and self.manager:
                self._select_site(node)
            elif name == "execute_call" and self.manager:
                self._execute_site(node)
            elif name == "await_call" and self.manager:
                self._await_site(node)
            return

        assert isinstance(func, ast.Attribute)
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "self" and self.obj is not None:
            self._self_site(name, node)
            return

        resolved = self._flow.resolve(recv, self.env, self._owner())
        if resolved is not None:
            classes = sorted(resolved[1])
            hit = False
            for cls_name in classes:
                target = self.program.resolve_class(cls_name)
                if target is not None and name in target.entries:
                    self._entry_call_edges(target, name, node)
                    hit = True
            if hit:
                return
            if resolved[1]:
                return  # known receiver, ordinary method: not an entry call
        if id(node) in self._yielded:
            # A yielded call on an unresolvable receiver could be an entry
            # call to anything: record it rather than staying silent.
            self.graph.add_edge(
                Edge(
                    self.ctx,
                    None,
                    "unknown",
                    f"call ?.{name} (unresolved target "
                    f"{ast.unparse(recv)!r})",
                    self.path,
                    node.lineno,
                    entry=name,
                )
            )

    def _self_site(self, name: str, node: ast.Call) -> None:
        obj = self.obj
        assert obj is not None
        if name == "call" and node.args:
            entry = const_value(node.args[0])
            if isinstance(entry, str) and entry in obj.entries:
                self._entry_call_edges(obj, entry, node, internal=True)
            return
        if name == "execute" and self.manager:
            self._execute_site(node)
            return
        if name == "await_" and self.manager:
            self._await_site(node)
            return
        if name in ("accept", "pending"):
            return
        if name in obj.entries:
            # ``self.deposit(...)``: the bound entry builds an EntryCall.
            self._entry_call_edges(obj, name, node, internal=True)
            return
        method = obj.methods.get(name)
        if method is not None and name not in self._inlined:
            # Plain helper: its call sites block this context.
            self._inlined.add(name)
            saved = dict(self.env)
            self.env = {}
            self._yielded |= {
                id(y.value)
                for y in ast.walk(method)
                if isinstance(y, (ast.Yield, ast.YieldFrom))
                and isinstance(y.value, ast.Call)
            }
            self._walk_stmts(method.body)
            self.env = saved

    def _entry_call_edges(
        self,
        target: ObjectInfo,
        entry: str,
        node: ast.Call,
        internal: bool = False,
    ) -> None:
        info = target.entries[entry]
        intercepted = (
            target.manager is not None
            and target.manager.intercepts is not None
            and entry in target.manager.intercepts
        )
        if intercepted:
            manager_node = Node("manager", target.name, "manager")
            if not (internal and self.ctx == manager_node):
                # Manager self-loops are the per-class ALP111 finding.
                self.graph.add_edge(
                    Edge(
                        self.ctx,
                        manager_node,
                        "call",
                        f"call {target.name}.{entry} (awaiting accept)",
                        self.path,
                        node.lineno,
                        obj=target.name,
                        entry=entry,
                    )
                )
        if info.fn is not None or not intercepted:
            self.graph.add_edge(
                Edge(
                    self.ctx,
                    Node("body", target.name, entry),
                    "body",
                    f"call {target.name}.{entry} (body running)",
                    self.path,
                    node.lineno,
                    obj=target.name,
                    entry=entry,
                )
            )

    # -- manager-blocking sites --------------------------------------------

    def _intercepted_entries(self) -> list[str]:
        obj = self.obj
        if obj is None or obj.manager is None or obj.manager.intercepts is None:
            return []
        return sorted(n for n in obj.manager.intercepts if n in obj.entries)

    def _execute_site(self, node: ast.Call) -> None:
        # ``yield from self.execute(c)`` runs start; await; finish inline:
        # the manager blocks until the body completes.  Candidate entries
        # are over-approximated to every intercepted entry.
        obj = self.obj
        assert obj is not None
        for entry in self._intercepted_entries():
            self.graph.add_edge(
                Edge(
                    self.ctx,
                    Node("body", obj.name, entry),
                    "execute",
                    f"executes {obj.name}.{entry} inline",
                    self.path,
                    node.lineno,
                    obj=obj.name,
                    entry=entry,
                )
            )

    def _await_site(self, node: ast.Call, entries: list[str] | None = None) -> None:
        # Bare ``await_`` sugar is a one-guard select: the manager is not
        # receptive while it waits for the body to finish.
        obj = self.obj
        assert obj is not None
        if entries is None:
            entry = None
            args = node.args
            if isinstance(node.func, ast.Attribute):
                candidates = args[:1]
            else:  # await_call(self, "e")
                candidates = args[1:2]
            for arg in candidates:
                value = const_value(arg)
                if isinstance(value, str):
                    entry = value
            entries = [entry] if entry is not None else self._intercepted_entries()
        for entry in entries:
            if entry not in obj.entries:
                continue
            self.graph.add_edge(
                Edge(
                    self.ctx,
                    Node("body", obj.name, entry),
                    "await",
                    f"awaits {obj.name}.{entry} (non-receptive)",
                    self.path,
                    node.lineno,
                    obj=obj.name,
                    entry=entry,
                )
            )

    def _select_site(self, node: ast.Call) -> None:
        # A select holding an accept guard keeps the manager receptive —
        # no wait edge.  A pure-await select blocks like bare await_.
        guard_names = []
        await_entries: list[str] = []
        exact = True
        for arg in node.args:
            if not isinstance(arg, ast.Call):
                continue
            guard = _call_name(arg)
            guard_names.append(guard)
            if guard in _AWAIT_GUARDS:
                entry = None
                for sub in arg.args[1:2]:
                    value = const_value(sub)
                    if isinstance(value, str):
                        entry = value
                if entry is None:
                    exact = False
                else:
                    await_entries.append(entry)
        if any(g in _ACCEPT_GUARDS for g in guard_names):
            return
        if not any(g in _AWAIT_GUARDS for g in guard_names):
            return
        entries = await_entries if exact else None
        self._await_site(node, entries=entries or self._intercepted_entries())
