"""ALP120: predict inter-manager wait cycles from the static call graph.

The runtime wait-for graph (:mod:`repro.kernel.waitgraph`) detects a
cycle once the processes are already stuck; this module finds the same
shape *before a single tick runs* by running Tarjan's SCC algorithm over
the resolved edges of the whole-program call graph.  Every non-trivial
strongly connected component — and every self-loop that is not a plain
manager self-call, which the per-class linter already reports as ALP111
— yields one finding whose message walks the full predicted cycle in
exactly the ``A --[label]--> B`` notation ``DeadlockError`` uses, so a
developer can diff the prediction against a live snapshot.

Soundness contract (enforced by the CI gate in
``tests/analysis/test_soundness.py``): unknown-target edges never
*complete* a cycle, but because an unresolved yielded call is recorded
explicitly rather than dropped, a program whose cycles hide behind
dynamic dispatch still shows dangling ``?`` edges in the DOT export —
the analysis degrades to visible uncertainty, not to silence.
"""

from __future__ import annotations

from ..findings import Finding
from .callgraph import CallGraph, Edge, Node


def strongly_connected(graph: CallGraph) -> list[list[Node]]:
    """Tarjan SCC over resolved edges, in deterministic node order."""
    adj: dict[Node, list[Node]] = {n: [] for n in graph.nodes}
    for edge in graph.resolved_edges():
        adj[edge.src].append(edge.dst)  # type: ignore[arg-type]

    index: dict[Node, int] = {}
    low: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    sccs: list[list[Node]] = []
    counter = [0]

    def strongconnect(root: Node) -> None:
        # Iterative Tarjan: (node, iterator position) work stack.
        work = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            neighbours = adj[node]
            for i in range(pos, len(neighbours)):
                succ = neighbours[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if recurse:
                continue
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in graph.nodes:
        if node not in index:
            strongconnect(node)
    return sccs


def _cycle_edges(graph: CallGraph, component: list[Node]) -> list[Edge]:
    """One concrete edge walk through the component, for the message."""
    members = set(component)
    edge_map: dict[Node, list[Edge]] = {}
    for edge in graph.resolved_edges():
        if edge.src in members and edge.dst in members:
            edge_map.setdefault(edge.src, []).append(edge)
    # Walk greedily from the first node until we close the loop; inside
    # an SCC every node has at least one in-component successor.
    start = component[0]
    walk: list[Edge] = []
    seen: set[Node] = set()
    node = start
    while node not in seen:
        seen.add(node)
        options = edge_map.get(node)
        if not options:
            break
        # Prefer an edge back to the start (shortest closing), else the
        # first unvisited destination, else any in-component edge.
        chosen = next((e for e in options if e.dst == start), None)
        if chosen is None:
            chosen = next((e for e in options if e.dst not in seen), options[0])
        walk.append(chosen)
        node = chosen.dst  # type: ignore[assignment]
    # Trim any non-cyclic prefix (walk may re-enter at a later node).
    if walk:
        closing = walk[-1].dst
        for i, edge in enumerate(walk):
            if edge.src == closing:
                return walk[i:]
    return walk


def describe_cycle(edges: list[Edge]) -> str:
    """``A --[label]--> B --[label]--> A`` — DeadlockError's notation."""
    if not edges:
        return "<empty cycle>"
    parts = [edges[0].src.label]
    for edge in edges:
        dst = edge.dst.label if edge.dst is not None else "?"
        parts.append(f"--[{edge.label}]--> {dst}")
    return " ".join(parts)


def predict_cycles(graph: CallGraph) -> list[Finding]:
    """All predicted wait cycles, one ALP120 finding per cycle."""
    findings: list[Finding] = []
    for component in strongly_connected(graph):
        if len(component) == 1:
            node = component[0]
            self_edges = [
                e
                for e in graph.resolved_edges()
                if e.src == node and e.dst == node
            ]
            if not self_edges:
                continue
            # A manager calling its own intercepted entry is ALP111,
            # already reported per-class; only body/func self-loops are
            # new information here.
            if node.kind == "manager":
                continue
            edges = self_edges[:1]
        else:
            edges = _cycle_edges(graph, component)
            if not edges:
                continue
        anchor = edges[0]
        classes = sorted(
            {n.cls for e in edges for n in (e.src, e.dst) if n and n.cls}
        )
        findings.append(
            Finding(
                code="ALP120",
                message=(
                    f"predicted wait-for cycle among "
                    f"{{{', '.join(classes)}}}: {describe_cycle(edges)}"
                ),
                path=anchor.path,
                line=anchor.line,
                obj=anchor.src.cls,
                entry=anchor.entry,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings


def cycle_class_sets(graph: CallGraph) -> list[set[str]]:
    """Class-name participant sets per predicted cycle (soundness gate)."""
    sets: list[set[str]] = []
    for component in strongly_connected(graph):
        if len(component) == 1:
            node = component[0]
            if node.kind == "manager" or not any(
                e.src == node and e.dst == node for e in graph.resolved_edges()
            ):
                continue
            members = [node]
        else:
            members = component
        classes = {n.cls for n in members if n.cls}
        if classes:
            sets.append(classes)
    return sets
