"""Per-entry attribute effect inference.

For every entry body we compute the set of ``self.*`` attributes it may
*read* and may *write* — the effect sets the interference checker
(ALP121) compares when two entries claim ``compatible=`` membership in
the same group.  The inference is a deliberate over-approximation on the
write side:

* ``self.x = ...``, ``self.x += ...``, ``del self.x`` → write;
* ``self.x[i] = ...`` and ``self.x[i] += ...`` → write of ``x`` (the
  container is mutated);
* a *method call* on an attribute (``self.buf.append(v)``) → write,
  unless the method is a known pure observer (``get``, ``index``, …);
* every other mention of ``self.x`` → read.

Helper methods called through ``self`` are inlined (with a visited set
so mutual recursion terminates), since their effects happen on behalf of
the calling entry.  The result is sound for the checker's purpose: a
pair reported disjoint really touches disjoint attributes; a pair
reported overlapping may be a false alarm (e.g. ``append``/``popleft``
on the same deque are commutative) — which is the right polarity for a
safety gate and exactly the conservatism of the interference-freedom
model this check is borrowed from.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..model import ObjectInfo

#: Attribute methods that observe without mutating; a call to one of
#: these on ``self.x`` counts as a read of ``x`` only.
_PURE_METHODS = {
    "get",
    "keys",
    "values",
    "items",
    "copy",
    "count",
    "index",
    "__len__",
    "__contains__",
}


@dataclass
class EffectSet:
    """Attributes an entry may read and may write."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)

    @property
    def touched(self) -> set[str]:
        return self.reads | self.writes

    def conflicts(self, other: "EffectSet") -> set[str]:
        """Attributes in write/write or read/write conflict with *other*."""
        return (self.writes & other.touched) | (self.touched & other.writes)

    def describe(self) -> str:
        r = ",".join(sorted(self.reads - self.writes)) or "-"
        w = ",".join(sorted(self.writes)) or "-"
        return f"reads={{{r}}} writes={{{w}}}"


def entry_effects(obj: ObjectInfo, entry: str) -> EffectSet:
    """Effect set of one entry body, with ``self`` helpers inlined."""
    info = obj.entries.get(entry)
    effects = EffectSet()
    if info is None or info.fn is None:
        return effects
    _collect(obj, info.fn, effects, visited={entry})
    return effects


def object_effects(obj: ObjectInfo) -> dict[str, EffectSet]:
    """Effect sets for every entry of *obj*, keyed by entry name."""
    return {name: entry_effects(obj, name) for name in sorted(obj.entries)}


def _collect(
    obj: ObjectInfo, fn: ast.FunctionDef, effects: EffectSet, visited: set[str]
) -> None:
    # Pre-compute which self-attribute accesses sit in write position or
    # under a mutating method call, so the generic read walk can skip them.
    write_ids: set[int] = set()
    read_only_call_ids: set[int] = set()

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    effects.writes.add(attr)
                    write_ids.add(id(target))
                elif isinstance(target, ast.Subscript):
                    sub_attr = _self_attr(target.value)
                    if sub_attr is not None:
                        # Mutating an element both reads the container
                        # reference and writes its contents.
                        effects.reads.add(sub_attr)
                        effects.writes.add(sub_attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    effects.writes.add(attr)
                    write_ids.add(id(target))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = _self_attr(node.func.value)
            if attr is not None:
                effects.reads.add(attr)
                if node.func.attr not in _PURE_METHODS:
                    effects.writes.add(attr)
                read_only_call_ids.add(id(node.func))
            elif (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                # self.helper(...) or self.call("helper"): inline effects.
                _inline(obj, node, effects, visited)

    for node in ast.walk(fn):
        if id(node) in write_ids or id(node) in read_only_call_ids:
            continue
        attr = _self_attr(node)
        if attr is not None:
            effects.reads.add(attr)


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _inline(
    obj: ObjectInfo, call: ast.Call, effects: EffectSet, visited: set[str]
) -> None:
    assert isinstance(call.func, ast.Attribute)
    name = call.func.attr
    if name == "call" and call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
    if name in visited:
        return
    target = None
    if name in obj.entries and obj.entries[name].fn is not None:
        target = obj.entries[name].fn
    elif name in obj.methods:
        target = obj.methods[name]
    if target is None:
        return
    visited.add(name)
    _collect(obj, target, effects, visited)
