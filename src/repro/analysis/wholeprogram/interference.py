"""ALP121: interference checking for ``compatible=`` entry groups.

``compatible="group"`` on two entries is a claim that their bodies may
run truly concurrently under a multiactive manager (the ROADMAP item
this check unblocks).  The claim is only safe if the bodies cannot race
on object state, so for every pair of entries sharing a group we compare
their inferred effect sets (:mod:`.effects`): a write/write or
read/write overlap on any ``self.*`` attribute is reported as ALP121,
naming the group, the pair, and the conflicting attributes.

Entries whose ``compatible=`` annotation was syntactically unresolvable
(``compatible=GROUPS``) are skipped — consistent with the linter's
never-guess policy — and a group with a single member is trivially
interference-free.
"""

from __future__ import annotations

from ..findings import Finding
from ..model import UNKNOWN, ObjectInfo
from .effects import object_effects


def check_interference(obj: ObjectInfo) -> list[Finding]:
    """ALP121 findings for every interfering compatible pair of *obj*."""
    groups: dict[str, list[str]] = {}
    for name in sorted(obj.entries):
        compatible = obj.entries[name].compatible
        if compatible is UNKNOWN or not compatible:
            continue
        for group in compatible:
            groups.setdefault(group, []).append(name)

    if not any(len(members) > 1 for members in groups.values()):
        return []

    effects = object_effects(obj)
    findings: list[Finding] = []
    reported: set[tuple[str, str, str]] = set()
    for group in sorted(groups):
        members = groups[group]
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                key = (group, a, b)
                if key in reported:
                    continue
                conflict = effects[a].conflicts(effects[b])
                if not conflict:
                    continue
                reported.add(key)
                attrs = ", ".join(f"self.{attr}" for attr in sorted(conflict))
                info = obj.entries[a]
                findings.append(
                    Finding(
                        code="ALP121",
                        message=(
                            f"entries {a!r} and {b!r} are declared "
                            f"compatible (group {group!r}) but interfere "
                            f"on {attrs} ({a}: {effects[a].describe()}; "
                            f"{b}: {effects[b].describe()})"
                        ),
                        path=obj.path,
                        line=info.line,
                        obj=obj.name,
                        entry=a,
                    )
                )
    return findings
