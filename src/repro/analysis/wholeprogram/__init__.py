"""Whole-program static analysis over sets of ALPS modules.

The per-class linter (:mod:`repro.analysis.static`) checks one manager
at a time; this package analyses *programs*:

* :mod:`.callgraph` — cross-object call graph via constructor/attribute
  dataflow, with explicit unknown-target edges;
* :mod:`.effects` — per-entry read/write effect sets over ``self.*``;
* :mod:`.cycles` — ALP120, predicted inter-manager wait cycles
  (the static twin of the runtime wait-for graph);
* :mod:`.interference` — ALP121, ``compatible=`` groups whose members'
  effect sets overlap.

Entry points: :func:`analyze_paths` (the ``--whole-program`` CLI mode,
all files merged into one program), :func:`lint_module` (single-module
program checks, run by ``lint_tree`` so the fixture corpus and plain
``alpslint`` invocations see ALP120/ALP121 too), and
:func:`callgraph_to_dot` (Graphviz export, cycle edges red/bold).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from ..findings import Finding
from ..model import extract_objects
from .callgraph import (
    CallGraph,
    Edge,
    Node,
    Program,
    build_call_graph,
    build_program,
)
from .cycles import cycle_class_sets, describe_cycle, predict_cycles
from .effects import EffectSet, entry_effects, object_effects
from .interference import check_interference

__all__ = [
    "CallGraph",
    "Edge",
    "EffectSet",
    "Node",
    "Program",
    "analyze_paths",
    "build_call_graph",
    "build_program",
    "callgraph_to_dot",
    "check_interference",
    "cycle_class_sets",
    "describe_cycle",
    "entry_effects",
    "lint_module",
    "lint_tree_program",
    "object_effects",
    "predict_cycles",
]


def lint_tree_program(tree: ast.Module, path: str = "<source>") -> list[Finding]:
    """Single-module program checks: ALP120 + ALP121 for one file.

    Called from :func:`repro.analysis.static.lint_tree` so every linting
    surface (corpus fixtures, ``alpslint FILE``) reports predicted
    cycles and interference without opting into ``--whole-program``.
    """
    program = build_program([(path, tree)])
    graph = build_call_graph(program)
    findings = predict_cycles(graph)
    for obj in extract_objects(tree, path=path, managed_only=False):
        findings.extend(check_interference(obj))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def lint_module(source: str, path: str = "<source>") -> list[Finding]:
    """Parse *source* and run the single-module program checks."""
    return lint_tree_program(ast.parse(source), path=path)


def _collect_modules(
    paths: Iterable[str | Path],
) -> list[tuple[str, ast.Module]]:
    modules: list[tuple[str, ast.Module]] = []
    for raw in paths:
        path = Path(raw)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            try:
                tree = ast.parse(file.read_text(), filename=str(file))
            except SyntaxError as exc:
                raise SystemExit(f"alpslint: cannot parse {file}: {exc}")
            modules.append((str(file), tree))
    return modules


def analyze_paths(
    paths: Iterable[str | Path],
) -> tuple[CallGraph, list[Finding]]:
    """Merge every module under *paths* into one program and analyse it.

    Returns the call graph (for DOT export) alongside the findings:
    ALP120 over the merged graph, ALP121 per class.  Interference is
    still per-object — effect sets do not cross objects — but cycle
    prediction sees calls that span files, which is the point.
    """
    modules = _collect_modules(paths)
    program = build_program(modules)
    graph = build_call_graph(program)
    findings = predict_cycles(graph)
    for path, tree in modules:
        for obj in extract_objects(tree, path=path, managed_only=False):
            findings.extend(check_interference(obj))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return graph, findings


def callgraph_to_dot(graph: CallGraph) -> str:
    """Graphviz rendering of the call graph.

    Managers are boxes, bodies ellipses, driver functions plain text;
    predicted-cycle members are filled red with bold red edges (the same
    convention as the runtime wait-for DOT), unknown-target edges end in
    a grey dashed ``?`` node.
    """
    from ..dot import _quote

    cycle_nodes: set[Node] = set()
    cycle_pairs: set[tuple[Node, Node]] = set()
    from .cycles import strongly_connected

    for component in strongly_connected(graph):
        members = set(component)
        if len(component) == 1:
            node = component[0]
            if node.kind == "manager" or not any(
                e.src == node and e.dst == node
                for e in graph.resolved_edges()
            ):
                continue
        cycle_nodes |= members
        for edge in graph.resolved_edges():
            if edge.src in members and edge.dst in members:
                cycle_pairs.add((edge.src, edge.dst))

    shapes = {"manager": "box", "body": "ellipse", "func": "plaintext"}
    lines = ["digraph call_graph {"]
    lines.append("  rankdir=LR;")
    lines.append("  node [fontname=monospace];")
    for node in graph.nodes:
        attrs = [f"shape={shapes[node.kind]}"]
        if node in cycle_nodes:
            attrs.append('style=filled, fillcolor="#f4cccc", color=red')
        lines.append(f"  {_quote(node.label)} [{', '.join(attrs)}];")
    unknown_emitted = False
    for edge in graph.edges:
        styles = []
        if edge.dst is None:
            if not unknown_emitted:
                lines.append(
                    '  "?" [shape=ellipse, style="filled,dashed", '
                    "fillcolor=lightgrey];"
                )
                unknown_emitted = True
            dst_label = "?"
            styles.append("style=dashed")
            styles.append("color=grey40")
        else:
            dst_label = edge.dst.label
            if (edge.src, edge.dst) in cycle_pairs:
                styles.append("color=red")
                styles.append("penwidth=2")
        attr = f", {', '.join(styles)}" if styles else ""
        lines.append(
            f"  {_quote(edge.src.label)} -> {_quote(dst_label)} "
            f"[label={_quote(edge.label)}{attr}];"
        )
    lines.append("}")
    return "\n".join(lines)
