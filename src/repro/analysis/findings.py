"""Typed findings and the ALP check catalogue.

Every defect the linter (or the runtime) can report carries a stable
``ALPxxx`` code.  Codes in the 10x range are detected statically by
:mod:`repro.analysis.static`; codes in the 20x range can only manifest
at runtime, but share the namespace so a test that provokes one can
assert on ``ProtocolError.code`` with the same constant the linter
would print.  The full table is documented in DESIGN.md §10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Check:
    """One entry of the catalogue: a defect class the linter knows."""

    code: str
    title: str
    severity: Severity
    summary: str


#: The check catalogue.  Keep in sync with DESIGN.md §10.
CATALOGUE: dict[str, Check] = {
    check.code: check
    for check in (
        Check(
            "ALP101",
            "intercepted-never-accepted",
            Severity.ERROR,
            "An entry named in the intercepts clause has no accept site in "
            "the manager body: every call to it stalls forever "
            "(compile-time starvation).",
        ),
        Check(
            "ALP102",
            "await-without-start",
            Severity.ERROR,
            "The manager awaits an entry it never starts; the await guard "
            "can never become ready.",
        ),
        Check(
            "ALP103",
            "started-never-finished",
            Severity.ERROR,
            "The manager starts an entry but neither awaits nor finishes "
            "it; callers are never resumed.",
        ),
        Check(
            "ALP104",
            "finish-without-await",
            Severity.ERROR,
            "The manager starts an entry and finishes it without an "
            "intervening await; at runtime finish requires the call to be "
            "awaited (or accepted, for combining).",
        ),
        Check(
            "ALP105",
            "intercept-arity",
            Severity.ERROR,
            "An intercepts declaration is inconsistent with the entry "
            "signature: more intercepted params/results than the entry "
            "declares, or hidden params/results on an entry the manager "
            "does not intercept.",
        ),
        Check(
            "ALP106",
            "when-arity",
            Severity.ERROR,
            "A when-condition takes a different number of arguments than "
            "the intercepted value subsequence it is evaluated on "
            "(icpt.params for accept, icpt.results for await).",
        ),
        Check(
            "ALP107",
            "finish-result-arity",
            Severity.ERROR,
            "A finish supplies a result count matching neither the "
            "intercepted results of an awaited call nor the full result "
            "list of a combined one.",
        ),
        Check(
            "ALP108",
            "start-hidden-arity",
            Severity.ERROR,
            "A start supplies a hidden-parameter count different from the "
            "entry's declared hidden_params.",
        ),
        Check(
            "ALP109",
            "constant-false-when",
            Severity.ERROR,
            "A when-condition is constant false: the guard can never fire "
            "and calls queued behind it starve.",
        ),
        Check(
            "ALP110",
            "slot-out-of-range",
            Severity.ERROR,
            "A quantified guard names a slot outside the entry's hidden "
            "procedure array (arrays are indexed 0..size-1; entries "
            "without an array clause have a single slot 0).",
        ),
        Check(
            "ALP111",
            "manager-self-call",
            Severity.ERROR,
            "The manager invokes an intercepted entry of its own object; "
            "it would block waiting for itself to accept (self-deadlock).",
        ),
        Check(
            "ALP112",
            "unknown-procedure",
            Severity.ERROR,
            "An intercepts clause, guard, accept/await or #pending "
            "expression names a procedure the object does not declare.",
        ),
        Check(
            "ALP113",
            "guard-on-non-intercepted",
            Severity.ERROR,
            "An accept/await guard names an entry the manager does not "
            "intercept; the runtime would reject it.",
        ),
        Check(
            "ALP114",
            "unbounded-retry-without-budget",
            Severity.WARNING,
            "A retry() loop is given a policy with max_attempts=None but "
            "no budget=; under a persistent fault it re-offers the call "
            "forever, and a fleet of such callers is a retry storm.",
        ),
        Check(
            "ALP120",
            "predicted-wait-cycle",
            Severity.ERROR,
            "The whole-program call graph contains a wait cycle: following "
            "manager-blocking operations (direct entry calls, inline "
            "execute, non-receptive awaits) and body-level entry calls "
            "from object to object returns to the starting node, so a "
            "schedule exists in which every participant waits for another "
            "(the ALP111 family, across managers).",
        ),
        Check(
            "ALP121",
            "compatible-entries-interfere",
            Severity.ERROR,
            "Entries declared compatible= (multiactive compatibility "
            "group) have overlapping attribute effect sets: one writes an "
            "attribute the other reads or writes, so their bodies cannot "
            "safely run concurrently.",
        ),
        # -- runtime-only codes (shared namespace, raised as
        #    ProtocolError(code=...) by repro.core) -------------------------
        Check(
            "ALP201",
            "start-on-non-accepted",
            Severity.ERROR,
            "start issued for a call that is not in the accepted state "
            "(runtime protocol violation).",
        ),
    )
}


@dataclass
class Finding:
    """One reported defect, positioned in a source file."""

    code: str
    message: str
    path: str = "<source>"
    line: int = 0
    col: int = 0
    obj: str | None = None
    entry: str | None = None
    #: Fix-style hint: the corrected declaration/call the linter would
    #: write in place of the offending one (arity findings set this).
    suggestion: str | None = None

    @property
    def check(self) -> Check:
        return CATALOGUE[self.code]

    @property
    def severity(self) -> Severity:
        return self.check.severity

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        scope = f" [{self.obj}]" if self.obj else ""
        text = f"{where}: {self.code} {self.severity}:{scope} {self.message}"
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "title": self.check.title,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "obj": self.obj,
            "entry": self.entry,
            "suggestion": self.suggestion,
        }

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()
