"""The ALPS protocol linter: static checks over manager bodies.

The analysis is a whole-body *site/coverage* analysis with candidate
entry sets, not a path enumeration.  Manager loops carry protocol state
across iterations — readers_writers accepts in one select arm and awaits
the same call in a different arm, many iterations later — so "does a
start exist on the path from this accept" is the wrong question.  What
is checkable is coverage: for each intercepted entry, does *any* site in
the body accept it / start it / await it / finish it, and are the
arities at those sites consistent with the declarations?

Values flow through a small environment: ``c = yield self.accept("x")``
binds ``c`` to the candidate set ``{x}``; ``r = yield Select(guards)``
binds ``r.value`` to the union of the guards' entries; anything the
analysis cannot resolve (subscripts, queue pops, helper returns) means
*all intercepted entries*.  A site contributes coverage to every
candidate, and an arity site is accepted if **any** candidate
interpretation is consistent — the conservative direction: unresolved
dynamism silences checks instead of fabricating findings, so the linter
runs clean over correct code and the fixture corpus keeps it honest on
broken code.

Finding codes are shared with the runtime (``ProtocolError.code``); the
catalogue lives in :mod:`repro.analysis.findings` and DESIGN.md §10.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable

from .findings import Finding
from .model import (
    UNKNOWN,
    EntryInfo,
    ObjectInfo,
    const_value,
    extract_objects,
)

#: Method/function names recognized as protocol operations.  ``describe``
#: strings and guard classes follow repro.core naming.
_ACCEPT_NAMES = {"accept", "AcceptGuard", "ShedGuard"}
_AWAIT_NAMES = {"await_", "await_call", "AwaitGuard"}


def _call_signature(op: str, extra: int) -> str:
    """Corrected ``Start``/``Finish`` call text with ``extra`` extras.

    Placeholder names follow the op: hidden params for ``Start``
    (``h0, h1, ...``), fabricated/forwarded results for ``Finish``
    (``r0, r1, ...``).
    """
    prefix = "h" if op == "Start" else "r"
    extras = "".join(f", {prefix}{i}" for i in range(extra))
    return f"yield {op}(call{extras})"


class _Site:
    """One protocol operation site inside the manager body."""

    __slots__ = ("kind", "entries", "node", "arity", "exact")

    def __init__(
        self,
        kind: str,
        entries: frozenset[str],
        node: ast.AST,
        arity: int | None = None,
        exact: bool = True,
    ) -> None:
        self.kind = kind  # accept | await | start | finish | execute
        self.entries = entries
        self.node = node
        #: Extra positional argument count (hidden params for start,
        #: results for finish); None when unparsable (starred args).
        self.arity = arity
        #: False when the entry set came from the "could be anything"
        #: fallback — coverage still counts, arity checks stay silent.
        self.exact = exact


class ManagerLinter:
    """Lints one object's manager body against its declarations."""

    def __init__(self, obj: ObjectInfo) -> None:
        self.obj = obj
        self.manager = obj.manager
        self.findings: list[Finding] = []
        #: Variable name → candidate entry set (from accept/await sugar).
        self.env: dict[str, frozenset[str]] = {}
        #: Variable name → entry set for select results (``var.value``).
        self.select_env: dict[str, frozenset[str]] = {}
        self.sites: list[_Site] = []
        self.intercepted = frozenset(obj.intercepted())

    # -- entry points ------------------------------------------------------

    def run(self) -> list[Finding]:
        self.check_declarations()
        if self.manager is not None and self.manager.intercepts is not None:
            self.collect_sites(self.manager.fn)
            self.check_coverage()
        return self.findings

    def report(
        self,
        code: str,
        message: str,
        node: ast.AST | None = None,
        line: int | None = None,
        entry: str | None = None,
        suggestion: str | None = None,
    ) -> None:
        self.findings.append(
            Finding(
                code=code,
                message=message,
                path=self.obj.path,
                line=line if line is not None else getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                obj=self.obj.name,
                entry=entry,
                suggestion=suggestion,
            )
        )

    # -- declaration-level checks (no body needed) -------------------------

    def check_declarations(self) -> None:
        manager = self.manager
        intercepts = manager.intercepts if manager else None
        for name, icpt in (intercepts or {}).items():
            if name not in self.obj.entries:
                self.report(
                    "ALP112",
                    f"intercepts clause names {name!r}, which "
                    f"{self.obj.name} does not declare",
                    line=icpt.line or (manager.intercepts_line if manager else 0),
                    entry=name,
                )
        for name, entry in self.obj.entries.items():
            icpt = (intercepts or {}).get(name)
            if icpt is None:
                # Hidden params/results require interception (§2.8) — the
                # manager is the only party that could supply/consume them.
                for attr, label in (
                    (entry.hidden_params, "hidden_params"),
                    (entry.hidden_results, "hidden_results"),
                ):
                    if isinstance(attr, int) and attr > 0:
                        self.report(
                            "ALP105",
                            f"entry {name!r} declares {label}={attr} but the "
                            f"manager does not intercept it",
                            line=entry.line,
                            entry=name,
                            suggestion=(
                                f"add {name!r} to the manager's intercepts — "
                                f'@manager_process(intercepts={{..., "{name}": '
                                f"icpt()}}) — or drop {label}={attr} from the "
                                f"@entry declaration"
                            ),
                        )
                continue
            if (
                isinstance(icpt.params, int)
                and entry.def_params is not UNKNOWN
                and icpt.params > entry.def_params
            ):
                self.report(
                    "ALP105",
                    f"intercepts {icpt.params} params of {name!r}, which has "
                    f"only {entry.def_params} definition parameter(s)",
                    line=icpt.line,
                    entry=name,
                    suggestion=(
                        f'"{name}": icpt(params={entry.def_params}) — an '
                        f"intercept can take at most the entry's "
                        f"{entry.def_params} definition parameter(s)"
                    ),
                )
            if (
                isinstance(icpt.results, int)
                and isinstance(entry.returns, int)
                and icpt.results > entry.returns
            ):
                self.report(
                    "ALP105",
                    f"intercepts {icpt.results} results of {name!r}, which "
                    f"declares only returns={entry.returns}",
                    line=icpt.line,
                    entry=name,
                    suggestion=(
                        f'"{name}": icpt(results={entry.returns}) — an '
                        f"intercept can take at most the entry's "
                        f"returns={entry.returns} result(s)"
                    ),
                )

    # -- site collection ---------------------------------------------------

    def collect_sites(self, fn: ast.FunctionDef) -> None:
        for stmt in fn.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        # Track assignments for the candidate-set environment, in source
        # order; everything else is a straight recursive walk.
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                bound = self._binding_for(value)
                if bound is not None:
                    kind, entries = bound
                    if kind == "select":
                        self.select_env[target.id] = entries
                        self.env.pop(target.id, None)
                    else:
                        self.env[target.id] = entries
                        self.select_env.pop(target.id, None)
                else:
                    self.env.pop(target.id, None)
                    self.select_env.pop(target.id, None)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        if isinstance(node, ast.Call):
            self._classify_call(node)

    def _binding_for(self, value: ast.expr) -> tuple[str, frozenset[str]] | None:
        """What a RHS binds: ('call', entries) or ('select', entries)."""
        if isinstance(value, ast.Yield) and value.value is not None:
            return self._binding_for(value.value)
        if isinstance(value, ast.Call):
            name = self._call_name(value)
            if name in ("accept", "await_", "await_call"):
                entry = self._guard_entry_name(value)
                if entry is not None:
                    return ("call", frozenset({entry}))
                return ("call", self.intercepted)
            if name == "Select":
                entries: set[str] = set()
                exact = True
                for arg in value.args:
                    if isinstance(arg, ast.Call):
                        arg_name = self._call_name(arg)
                        if arg_name in _ACCEPT_NAMES | _AWAIT_NAMES:
                            entry = self._guard_entry_name(arg)
                            if entry is None:
                                exact = False
                            else:
                                entries.add(entry)
                if not exact or not entries:
                    return ("select", self.intercepted)
                return ("select", frozenset(entries))
        if isinstance(value, ast.Attribute) and value.attr == "value":
            inner = value.value
            if isinstance(inner, ast.Name) and inner.id in self.select_env:
                return ("call", self.select_env[inner.id])
        if isinstance(value, ast.Name):
            if value.id in self.env:
                return ("call", self.env[value.id])
            if value.id in self.select_env:
                return ("select", self.select_env[value.id])
        return None

    @staticmethod
    def _call_name(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    @staticmethod
    def _is_self_method(node: ast.Call) -> bool:
        return (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        )

    def _guard_entry_name(self, node: ast.Call) -> str | None:
        """The entry-name argument of a guard/sugar call, if a literal.

        ``self.accept("x")`` puts the name first; ``AcceptGuard(self, "x")``
        and ``accept(self, "x")`` put it second.
        """
        name = self._call_name(node)
        args = node.args
        if self._is_self_method(node):
            candidates = args[:1]
        elif name in ("AcceptGuard", "AwaitGuard", "ShedGuard", "accept", "await_call"):
            candidates = args[1:2]
        else:
            candidates = args[:1]
        for arg in candidates:
            value = const_value(arg)
            if isinstance(value, str):
                return value
        return None

    def _candidates(self, node: ast.expr) -> tuple[frozenset[str], bool]:
        """Candidate entries for a call-valued expression; (set, exact)."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id], True
        if isinstance(node, ast.Attribute) and node.attr == "value":
            inner = node.value
            if isinstance(inner, ast.Name) and inner.id in self.select_env:
                return self.select_env[inner.id], True
        return self.intercepted, False

    @staticmethod
    def _extra_arity(node: ast.Call, skip: int) -> int | None:
        """Count positional args past ``skip``; None when starred."""
        rest = node.args[skip:]
        if any(isinstance(a, ast.Starred) for a in node.args):
            return None
        return len(rest)

    def _classify_call(self, node: ast.Call) -> None:
        name = self._call_name(node)
        if name is None:
            return
        is_self = self._is_self_method(node)

        if name in _ACCEPT_NAMES or name in _AWAIT_NAMES:
            kind = "accept" if name in _ACCEPT_NAMES else "await"
            entry = self._guard_entry_name(node)
            if entry is None:
                self.sites.append(_Site(kind, self.intercepted, node, exact=False))
            else:
                self.sites.append(_Site(kind, frozenset({entry}), node))
                self._check_guard(kind, entry, node)
            return

        if name == "Start" and node.args:
            entries, exact = self._candidates(node.args[0])
            arity = self._extra_arity(node, 1)
            self.sites.append(_Site("start", entries, node, arity, exact))
            self._check_start_arity(entries, exact, arity, node)
            return

        if name == "Finish" and node.args:
            entries, exact = self._candidates(node.args[0])
            arity = self._extra_arity(node, 1)
            self.sites.append(_Site("finish", entries, node, arity, exact))
            return

        if name in ("execute", "execute_call"):
            # Both forms put the call first: self.execute(c) / execute_call(c).
            if not node.args:
                return
            entries, exact = self._candidates(node.args[0])
            arity = self._extra_arity(node, 1)
            self.sites.append(_Site("execute", entries, node, arity, exact))
            self._check_start_arity(entries, exact, arity, node)
            return

        if name == "pending" and is_self:
            entry = const_value(node.args[0]) if node.args else UNKNOWN
            if isinstance(entry, str) and entry not in self.obj.entries:
                self.report(
                    "ALP112",
                    f"#pending names {entry!r}, which {self.obj.name} does "
                    f"not declare",
                    node=node,
                    entry=entry,
                )
            return

        if name == "call" and is_self:
            entry = const_value(node.args[0]) if node.args else UNKNOWN
            if isinstance(entry, str) and entry in self.intercepted:
                self.report(
                    "ALP111",
                    f"manager invokes intercepted entry {entry!r} of its own "
                    f"object; it would wait for itself to accept",
                    node=node,
                    entry=entry,
                )
            return

        if is_self and name in self.intercepted:
            # ``self.deposit(...)`` inside the manager: the bound entry
            # builds an EntryCall on this very object.
            self.report(
                "ALP111",
                f"manager invokes intercepted entry {name!r} of its own "
                f"object; it would wait for itself to accept",
                node=node,
                entry=name,
            )

    # -- per-site arity / guard checks -------------------------------------

    def _entry_or_report(self, kind: str, entry: str, node: ast.Call) -> EntryInfo | None:
        info = self.obj.entries.get(entry)
        if info is None:
            self.report(
                "ALP112",
                f"{kind} guard names {entry!r}, which {self.obj.name} does "
                f"not declare",
                node=node,
                entry=entry,
            )
            return None
        if entry not in self.intercepted:
            self.report(
                "ALP113",
                f"{kind} guard on {entry!r}, which the manager does not "
                f"intercept",
                node=node,
                entry=entry,
            )
            return None
        return info

    def _check_guard(self, kind: str, entry: str, node: ast.Call) -> None:
        info = self._entry_or_report(kind, entry, node)
        if info is None:
            return
        icpt = info.intercept
        for kw in node.keywords:
            if kw.arg == "slot":
                slot = const_value(kw.value)
                size = info.array_size
                if (
                    isinstance(slot, int)
                    and isinstance(size, int)
                    and not 0 <= slot < size
                ):
                    self.report(
                        "ALP110",
                        f"{kind} {entry}[{slot}]: slot outside the procedure "
                        f"array (size {size}, valid slots 0..{size - 1})",
                        node=kw.value,
                        entry=entry,
                    )
            elif kw.arg == "when" and isinstance(kw.value, ast.Lambda):
                self._check_when(kind, entry, icpt, kw.value)

    def _check_when(
        self, kind: str, entry: str, icpt: Any, lam: ast.Lambda
    ) -> None:
        body_const = const_value(lam.body, default=UNKNOWN)
        if body_const is not UNKNOWN and not body_const:
            self.report(
                "ALP109",
                f"when-condition on {kind} {entry!r} is constant "
                f"{body_const!r}: the guard can never fire",
                node=lam,
                entry=entry,
            )
        if lam.args.vararg is not None or icpt is None:
            return
        expected = icpt.params if kind == "accept" else icpt.results
        if not isinstance(expected, int):
            return
        got = len(lam.args.args) + len(lam.args.posonlyargs)
        required = got - len(lam.args.defaults)
        if required > expected or got < expected:
            what = "params" if kind == "accept" else "results"
            prefix = "p" if kind == "accept" else "r"
            names = ", ".join(f"{prefix}{i}" for i in range(expected))
            corrected = f"lambda {names}: ..." if expected else "lambda: ..."
            self.report(
                "ALP106",
                f"when-condition on {kind} {entry!r} takes {got} argument(s) "
                f"but the guard passes the {expected} intercepted {what}",
                node=lam,
                entry=entry,
                suggestion=(
                    f"when={corrected} — the condition receives exactly the "
                    f"{expected} intercepted {what} of {entry!r}"
                ),
            )

    def _check_start_arity(
        self,
        entries: frozenset[str],
        exact: bool,
        arity: int | None,
        node: ast.Call,
    ) -> None:
        if not exact or arity is None or not entries:
            return
        hidden_counts = set()
        for entry in entries:
            info = self.obj.entries.get(entry)
            if info is None:
                continue
            if not isinstance(info.hidden_params, int):
                return  # any unknown declaration silences the check
            hidden_counts.add(info.hidden_params)
        if hidden_counts and arity not in hidden_counts:
            declared = "/".join(str(c) for c in sorted(hidden_counts))
            self.report(
                "ALP108",
                f"start supplies {arity} hidden parameter(s) but "
                f"{self._entries_label(entries)} declare(s) "
                f"hidden_params={declared}",
                node=node,
                entry=next(iter(entries)) if len(entries) == 1 else None,
                suggestion=" or ".join(
                    _call_signature("Start", count)
                    for count in sorted(hidden_counts)
                )
                + f" — match hidden_params={declared}",
            )

    @staticmethod
    def _entries_label(entries: frozenset[str]) -> str:
        return "/".join(sorted(entries))

    # -- whole-body coverage checks ----------------------------------------

    def _coverage(self, kind: str) -> dict[str, list[_Site]]:
        out: dict[str, list[_Site]] = {name: [] for name in self.intercepted}
        kinds = {kind, "execute"} if kind in ("start", "await", "finish") else {kind}
        for site in self.sites:
            if site.kind in kinds:
                for entry in site.entries:
                    if entry in out:
                        out[entry].append(site)
        return out

    def check_coverage(self) -> None:
        accepts = self._coverage("accept")
        starts = self._coverage("start")
        awaits = self._coverage("await")
        finishes = self._coverage("finish")
        manager_line = self.manager.line if self.manager else 0

        for entry in sorted(self.intercepted):
            info = self.obj.entries[entry]
            if not accepts[entry]:
                self.report(
                    "ALP101",
                    f"entry {entry!r} is intercepted but the manager body "
                    f"never accepts it: every call stalls forever",
                    line=manager_line,
                    entry=entry,
                )
                continue
            if awaits[entry] and not starts[entry]:
                site = awaits[entry][0]
                self.report(
                    "ALP102",
                    f"manager awaits {entry!r} but never starts it: the "
                    f"await can never become ready",
                    node=site.node,
                    entry=entry,
                )
            if starts[entry] and not awaits[entry] and not finishes[entry]:
                site = starts[entry][0]
                self.report(
                    "ALP103",
                    f"manager starts {entry!r} but neither awaits nor "
                    f"finishes it: callers are never resumed",
                    node=site.node,
                    entry=entry,
                )
            if starts[entry] and finishes[entry] and not awaits[entry]:
                site = finishes[entry][0]
                self.report(
                    "ALP104",
                    f"manager starts {entry!r} and finishes it without an "
                    f"await in between: finish requires the call to be "
                    f"awaited first",
                    node=site.node,
                    entry=entry,
                )

        # ALP107: finish result arity, judged per site with candidate
        # semantics — valid if ANY candidate interpretation fits.
        for site in self.sites:
            if site.kind != "finish" or site.arity is None or not site.exact:
                continue
            ok = False
            expectations: list[str] = []
            valid_counts: list[int] = []
            for entry in site.entries:
                info = self.obj.entries.get(entry)
                if info is None:
                    continue
                icpt = info.intercept
                icpt_results = icpt.results if icpt is not None else 0
                if not isinstance(icpt_results, int) or not isinstance(
                    info.returns, int
                ):
                    ok = True  # unknown declaration: stay silent
                    break
                if starts.get(entry) and site.arity == icpt_results:
                    ok = True
                    break
                if site.arity == info.returns:
                    ok = True  # combining: manager fabricates all results
                    break
                if starts.get(entry):
                    expectations.append(f"{icpt_results} (awaited {entry})")
                    valid_counts.append(icpt_results)
                expectations.append(f"{info.returns} (combining {entry})")
                valid_counts.append(info.returns)
            if not ok and expectations:
                self.report(
                    "ALP107",
                    f"finish supplies {site.arity} result(s); expected "
                    + " or ".join(dict.fromkeys(expectations)),
                    node=site.node,
                    entry=(
                        next(iter(site.entries))
                        if len(site.entries) == 1
                        else None
                    ),
                    suggestion=" or ".join(
                        _call_signature("Finish", count)
                        for count in sorted(dict.fromkeys(valid_counts))
                    )
                    + " — the result count must match what the protocol "
                    "expects at this site",
                )


# -- module-level checks (not tied to one object's manager) -----------------

#: Retry-policy constructors recognized by the ALP114 check.
_POLICY_CTORS = {"FixedBackoff", "ExponentialBackoff"}


def _is_none(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _retry_policy_arg(call: ast.Call) -> ast.expr | None:
    """The policy argument of a ``retry(call_factory, policy, ...)`` site."""
    for kw in call.keywords:
        if kw.arg == "policy":
            return kw.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _callable_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _unbounded_policy_ctor(node: ast.expr | None) -> str | None:
    """Constructor name if *node* is ``Ctor(..., max_attempts=None)``."""
    if not isinstance(node, ast.Call):
        return None
    ctor = _callable_name(node)
    if ctor not in _POLICY_CTORS:
        return None
    unbounded = any(
        kw.arg == "max_attempts" and _is_none(kw.value) for kw in node.keywords
    )
    return ctor if unbounded else None


def lint_retry_sites(tree: ast.Module, path: str = "<source>") -> list[Finding]:
    """ALP114: ``retry()`` with an unbounded policy and no budget.

    Flags call sites of ``retry`` — at module level, in class methods,
    or in nested functions — whose policy is an explicit
    ``max_attempts=None`` constructor and which pass no (or a ``None``)
    ``budget=``.  The policy may be written inline at the call site or
    held in a local variable; variable bindings are tracked per lexical
    scope (nested functions see enclosing bindings, reassignment to
    anything unrecognized clears the binding, and class-level names are
    not visible inside methods — matching Python's scoping).  Policies
    that arrive as parameters or attributes stay unflagged: they may be
    bounded elsewhere, and the linter fabricates no findings it cannot
    see locally.
    """
    findings: list[Finding] = []
    _RetryScopeWalker(findings, path).scan(tree.body, {})
    return findings


class _RetryScopeWalker:
    """Order-sensitive walk tracking unbounded-policy variable bindings."""

    def __init__(self, findings: list[Finding], path: str) -> None:
        self.findings = findings
        self.path = path

    def scan(self, stmts: Iterable[ast.stmt], env: dict[str, str]) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, env)

    def _scan_stmt(self, stmt: ast.stmt, env: dict[str, str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested scope: closures see the enclosing bindings; local
            # reassignments must not leak back out.
            self.scan(stmt.body, dict(env))
            return
        if isinstance(stmt, ast.ClassDef):
            # Class-level assignments are not visible as bare names in
            # method bodies; methods close over the *enclosing* scope.
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.scan(sub.body, dict(env))
                elif isinstance(sub, ast.ClassDef):
                    self._scan_stmt(sub, env)
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            self._check_expr(stmt.value, env)
            if isinstance(target, ast.Name):
                ctor = _unbounded_policy_ctor(stmt.value)
                if ctor is not None:
                    env[target.id] = ctor
                else:
                    env.pop(target.id, None)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, env)
            else:
                self._check_expr(child, env)

    def _check_expr(self, node: ast.AST, env: dict[str, str]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _callable_name(sub) == "retry":
                self._check_retry_site(sub, env)

    def _check_retry_site(self, node: ast.Call, env: dict[str, str]) -> None:
        policy = _retry_policy_arg(node)
        held = None
        ctor = _unbounded_policy_ctor(policy)
        if ctor is None and isinstance(policy, ast.Name):
            ctor = env.get(policy.id)
            held = policy.id if ctor is not None else None
        if ctor is None:
            return
        budget = next(
            (kw.value for kw in node.keywords if kw.arg == "budget"), None
        )
        if budget is not None and not _is_none(budget):
            return
        source = (
            f"policy {held!r} = {ctor}(max_attempts=None)"
            if held is not None
            else f"{ctor}(max_attempts=None)"
        )
        self.findings.append(
            Finding(
                code="ALP114",
                message=(
                    f"retry() with {source} and no budget: a persistent "
                    f"fault makes this caller re-offer its call forever "
                    f"(retry storm)"
                ),
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                suggestion=(
                    "pass budget=shared_budget(kernel, caller, obj) so "
                    "excess retries become immediate AdmissionErrors, or "
                    f"bound the policy: {ctor}(..., max_attempts=N)"
                ),
            )
        )


# -- public API -------------------------------------------------------------


def lint_tree(
    tree: ast.Module, path: str = "<source>", program_checks: bool = True
) -> list[Finding]:
    findings: list[Finding] = []
    for obj in extract_objects(tree, path=path):
        findings.extend(ManagerLinter(obj).run())
    findings.extend(lint_retry_sites(tree, path=path))
    if program_checks:
        # Single-module whole-program checks (ALP120/ALP121): cycles and
        # interference confined to one file surface on every lint path;
        # the --whole-program CLI mode merges files first and disables
        # the per-module run to avoid duplicate findings.
        from .wholeprogram import lint_tree_program

        findings.extend(lint_tree_program(tree, path=path))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def lint_source(
    source: str, path: str = "<source>", program_checks: bool = True
) -> list[Finding]:
    """Lint python source text; returns the findings (possibly empty)."""
    tree = ast.parse(source, filename=path)
    return lint_tree(tree, path=path, program_checks=program_checks)


def lint_file(path: str, program_checks: bool = True) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=str(path), program_checks=program_checks)


def lint_paths(
    paths: Iterable[str], program_checks: bool = True
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    import os

    findings: list[Finding] = []
    for root_path in paths:
        if os.path.isfile(root_path):
            findings.extend(lint_file(root_path, program_checks=program_checks))
            continue
        for dirpath, dirnames, filenames in os.walk(root_path):
            dirnames[:] = [
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            ]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    findings.extend(
                        lint_file(
                            os.path.join(dirpath, filename),
                            program_checks=program_checks,
                        )
                    )
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def lint_class(cls: type) -> list[Finding]:
    """Reflective mode: lint an imported AlpsObject subclass directly.

    Uses the class's authoritative ``__alps_entries__``/``__alps_manager__``
    specs (so attribute-named array bounds and inherited entries resolve
    exactly) and only the manager *body* from ``inspect.getsource``.
    """
    import inspect
    import textwrap

    from .model import object_info_from_class

    source = textwrap.dedent(inspect.getsource(cls))
    tree = ast.parse(source)
    try:
        path = inspect.getsourcefile(cls) or "<class>"
    except TypeError:  # pragma: no cover - builtins
        path = "<class>"
    obj = object_info_from_class(cls, path, tree)
    return ManagerLinter(obj).run()
