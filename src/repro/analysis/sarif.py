"""SARIF 2.1.0 export of linter findings.

SARIF (Static Analysis Results Interchange Format) is the log format
code-hosting UIs ingest to annotate pull requests with findings.  The
CI lint job runs ``python -m repro.analysis --sarif alpslint.sarif ...``
and uploads the file, so an ALP120 predicted cycle shows up as an
inline annotation on the line of the offending call site.

Only the subset of the schema the annotators read is emitted: one run,
one rule per catalogue entry (so rule metadata — title, full
description — travels with the log), one result per finding with a
physical location.  Column numbers are converted from the linter's
0-based ``col`` to SARIF's 1-based ``startColumn``.
"""

from __future__ import annotations

import json

from .findings import CATALOGUE, Finding, Severity

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def to_sarif(findings: list[Finding]) -> dict:
    """Build the SARIF log dict for *findings*."""
    used_codes = sorted({f.code for f in findings})
    rules = [
        {
            "id": code,
            "name": CATALOGUE[code].title,
            "shortDescription": {"text": CATALOGUE[code].title},
            "fullDescription": {"text": CATALOGUE[code].summary},
            "defaultConfiguration": {
                "level": _level(CATALOGUE[code].severity)
            },
        }
        for code in used_codes
    ]
    rule_index = {code: i for i, code in enumerate(used_codes)}
    results = []
    for finding in findings:
        message = finding.message
        if finding.suggestion:
            message += f" — fix: {finding.suggestion}"
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index[finding.code],
                "level": _level(finding.severity),
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(1, finding.line),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "alpslint",
                        "informationUri": (
                            "https://example.invalid/repro/analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: list[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2) + "\n"
