"""Opt-in live deadlock detection (before quiescence).

The kernel's quiescence check only fires when the event queue is empty —
a deadlocked cluster of managers hides forever behind one unrelated
timer or busy benchmark loop.  The :class:`LiveDeadlockDetector` is a
daemon process that periodically rebuilds the wait-for graph
(:func:`repro.kernel.waitgraph.build_wait_graph`) while the system is
still running and

* raises :class:`~repro.errors.DeadlockError` (out of ``kernel.run()``)
  as soon as an **all-definite** cycle exists — edges a pending timeout
  could dissolve never trigger it; and
* records exhausted hidden procedure arrays (every slot held while
  callers queue) in :attr:`reports`, keyed by object/entry, without
  raising — pool pressure is a symptom worth surfacing, not proof of
  deadlock.

Usage::

    detector = LiveDeadlockDetector(kernel, interval=100)
    kernel.run()          # raises DeadlockError at ~t=interval·k
    detector.reports      # {("Obj", "entry"): PoolReport, ...}
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import DeadlockError
from ..kernel.process import ProcessState
from ..kernel.syscalls import Delay
from ..kernel.waitgraph import PoolReport, build_wait_graph

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class LiveDeadlockDetector:
    """Daemon that flags circular waits while the system still runs.

    Parameters
    ----------
    kernel:
        The kernel to watch; the detector spawns itself immediately.
    interval:
        Virtual ticks between scans.  Detection latency is at most one
        interval; cost is one graph build per scan.
    raise_on_cycle:
        When True (default) a definite cycle raises ``DeadlockError``
        out of ``kernel.run()``; when False cycles are only recorded in
        :attr:`cycles`.
    """

    def __init__(
        self, kernel: "Kernel", interval: int = 100, raise_on_cycle: bool = True
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.kernel = kernel
        self.interval = interval
        self.raise_on_cycle = raise_on_cycle
        #: Latest exhausted-pool report per (object, entry).
        self.reports: dict[tuple[str, str], PoolReport] = {}
        #: Cycles observed with ``raise_on_cycle=False`` (edge lists).
        self.cycles: list[list] = []
        #: Number of scans performed.
        self.scans = 0
        self._stopped = False
        self.process = kernel.spawn(
            self._loop, name="alps.live-detector", daemon=True
        )

    def stop(self) -> None:
        """Ask the detector to exit at its next wake-up."""
        self._stopped = True

    def _pending_foreign_events(self) -> bool:
        """Any live event not our own heartbeat? (stale/cancelled skipped)"""
        for _when, _prio, _seq, item in self.kernel._events:
            if item[0] == "step":
                proc, epoch = item[1], item[2]
                if proc is self.process:
                    continue
                if proc.alive and proc.epoch == epoch:
                    return True
            else:  # "call"
                cancel = item[2]
                if cancel is None or not cancel.get("cancelled"):
                    return True
        return False

    def _loop(self):
        while not self._stopped:
            yield Delay(self.interval)
            if self._stopped:
                return
            # Stand down when the detector itself is the only thing
            # keeping the event queue alive — either the workload is done
            # (let the run end) or it is fully blocked (let the kernel's
            # quiescence check produce the canonical DeadlockError).
            workload = [
                p
                for p in self.kernel.processes()
                if p.alive and not p.daemon
            ]
            if not workload:
                return
            if all(
                p.state == ProcessState.BLOCKED for p in workload
            ) and not self._pending_foreign_events():
                return
            self.scans += 1
            snapshot = build_wait_graph(self.kernel)
            for pool in snapshot.pools:
                self.reports[(pool.obj, pool.entry)] = pool
            cycles = snapshot.cycles(definite_only=True)
            if not cycles:
                continue
            if self.raise_on_cycle:
                lines = [
                    f"live deadlock detected at t={self.kernel.clock.now}:"
                ]
                for cycle in cycles:
                    lines.append(
                        "wait-for cycle: " + snapshot.describe_cycle(cycle)
                    )
                raise DeadlockError("\n".join(lines), wait_for=snapshot)
            self.cycles.extend(cycles)
