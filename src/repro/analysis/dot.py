"""Graphviz DOT export of the runtime wait-for graph.

ROADMAP's analysis follow-on: the structured snapshot that
``DeadlockError.wait_for`` (and the live detector) already carries,
rendered for ``dot``/Graphviz so a blocked run can be *seen* — and laid
side by side with the Chrome trace / critical-path report of the same
run (``python -m repro.obs.analyze TRACE.json --waitgraph snap.json``).

Rendering rules:

* every blocked process is an ellipse node; members of a wait-for cycle
  are filled red — the deadlock participants jump out;
* edges carry the protocol label (``call kv.put[0] (awaiting accept)``);
  edges a pending timer could dissolve (timed calls, selects holding a
  feasible ``Timeout`` guard) are dashed, cycle edges are bold red;
* exhausted hidden procedure arrays (§2.5 overflow with every slot
  held) are grey boxes listing the holders, with edges from the queued
  callers when known.

Input is either a live :class:`~repro.kernel.waitgraph.WaitForSnapshot`
or its ``to_json()`` dict (the CLI reads the latter from a file)::

    python -m repro.analysis --dot snapshot.json > wait_for.dot
    dot -Tsvg wait_for.dot -o wait_for.svg
"""

from __future__ import annotations

from typing import Any

from ..kernel.waitgraph import WaitForSnapshot


def _quote(text: Any) -> str:
    return '"' + str(text).replace("\\", "\\\\").replace('"', '\\"') + '"'


def _quote_multiline(parts: list[str]) -> str:
    # DOT line breaks are a literal backslash-n inside the quoted label.
    escaped = (str(p).replace("\\", "\\\\").replace('"', '\\"') for p in parts)
    return '"' + "\\n".join(escaped) + '"'


def to_dot(snapshot: "WaitForSnapshot | dict[str, Any]") -> str:
    """Render a wait-for snapshot (live or ``to_json()`` form) as DOT."""
    if isinstance(snapshot, WaitForSnapshot):
        data = snapshot.to_json()
    else:
        data = snapshot
    edges = data.get("edges", [])
    pools = data.get("pools", [])
    cycle_edges = {
        (src, dst) for cycle in data.get("cycles", []) for src, dst in cycle
    }
    cycle_nodes = {name for pair in cycle_edges for name in pair}
    nodes: list[str] = list(data.get("processes", []))
    for edge in edges:
        for name in (edge["src"], edge["dst"]):
            if name not in nodes:
                nodes.append(name)

    lines = ["digraph wait_for {"]
    lines.append("  rankdir=LR;")
    lines.append(
        f"  label={_quote('wait-for graph at t=' + str(data.get('time', '?')))};"
    )
    lines.append("  node [shape=ellipse, fontname=monospace];")
    for name in nodes:
        attrs = ""
        if name in cycle_nodes:
            attrs = ' [style=filled, fillcolor="#f4cccc", color=red]'
        lines.append(f"  {_quote(name)}{attrs};")
    for edge in edges:
        styles = []
        if (edge["src"], edge["dst"]) in cycle_edges:
            styles.append("color=red")
            styles.append("penwidth=2")
        if not edge.get("definite", True):
            styles.append("style=dashed")
        attr = f", {', '.join(styles)}" if styles else ""
        lines.append(
            f"  {_quote(edge['src'])} -> {_quote(edge['dst'])} "
            f"[label={_quote(edge.get('label', ''))}{attr}];"
        )
    for index, pool in enumerate(pools):
        node = f"pool{index}"
        label = _quote_multiline(
            [
                f"{pool['obj']}.{pool['entry']}[1..{pool['array_size']}] exhausted",
                f"{pool['waiting']} caller(s) queued",
                *pool.get("holders", []),
            ]
        )
        lines.append(
            f"  {node} [shape=box, style=filled, fillcolor=lightgrey, "
            f"label={label}];"
        )
    lines.append("}")
    return "\n".join(lines)
