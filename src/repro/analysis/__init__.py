"""repro.analysis — ALPS protocol linter and deadlock diagnosis.

Two complementary halves:

* **Static** (:mod:`.static`): a pure-AST linter over ``@manager_process``
  bodies — never imports the checked code — reporting typed
  :class:`~repro.analysis.findings.Finding` records with stable
  ``ALPxxx`` codes (catalogue in :mod:`.findings` and DESIGN.md §10).
  CLI: ``python -m repro.analysis`` / ``tools/alpslint.py``.
* **Runtime** (:mod:`repro.kernel.waitgraph`, re-exported here): the
  structured wait-for graph attached to ``DeadlockError.wait_for`` at
  quiescence, and the opt-in :class:`LiveDeadlockDetector` that flags
  circular waits and exhausted hidden pools *before* quiescence.

A third, **whole-program** half (:mod:`.wholeprogram`) bridges them: a
cross-object static call graph predicts the wait cycles (ALP120) the
runtime graph would only discover once stuck, and checks that entries
declared ``compatible=`` touch disjoint attributes (ALP121).  CLI:
``python -m repro.analysis --whole-program [--dot] [--sarif FILE]``.

The two halves share the code namespace: a defect the linter reports as
``ALP104`` raises ``ProtocolError(code="ALP104")`` when provoked at
runtime.
"""

from ..kernel.waitgraph import (
    PoolReport,
    WaitEdge,
    WaitForSnapshot,
    build_wait_graph,
)
from .dot import to_dot
from .findings import CATALOGUE, Check, Finding, Severity
from .live import LiveDeadlockDetector
from .sarif import render_sarif, to_sarif
from .static import (
    ManagerLinter,
    lint_class,
    lint_file,
    lint_paths,
    lint_source,
)
from .wholeprogram import (
    analyze_paths,
    build_call_graph,
    build_program,
    callgraph_to_dot,
    check_interference,
    entry_effects,
    predict_cycles,
)

__all__ = [
    "CATALOGUE",
    "Check",
    "Finding",
    "LiveDeadlockDetector",
    "ManagerLinter",
    "PoolReport",
    "Severity",
    "WaitEdge",
    "WaitForSnapshot",
    "analyze_paths",
    "build_call_graph",
    "build_program",
    "build_wait_graph",
    "callgraph_to_dot",
    "check_interference",
    "entry_effects",
    "lint_class",
    "lint_file",
    "lint_paths",
    "lint_source",
    "predict_cycles",
    "render_sarif",
    "to_dot",
    "to_sarif",
]
