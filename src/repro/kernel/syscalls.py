"""Kernel syscalls.

A lightweight process interacts with the kernel exclusively by ``yield``-ing
instances of the classes below.  The scheduler interprets the syscall,
charges its cost, and resumes the process with the syscall's result.

Only substrate-level operations live here (spawn/join/delay/select and the
channel primitives).  The ALPS-specific primitives — ``Accept``, ``Start``,
``Await``, ``Finish``, ``Execute``, entry calls — are *guards and syscalls
defined in* :mod:`repro.core` on top of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from .process import PRIORITY_NORMAL
from .waiting import Guard

if TYPE_CHECKING:  # pragma: no cover
    from .process import Process


class Syscall:
    """Marker base class; anything yielded to the kernel must be one."""

    __slots__ = ()


@dataclass(slots=True)
class Spawn(Syscall):
    """Create a new process running ``fn(*args, **kwargs)``.

    Returns the new :class:`~repro.kernel.process.Process`.  ``lightweight``
    selects which creation cost is charged (§3 distinguishes conventional
    processes from cheap threads).
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    priority: int = PRIORITY_NORMAL
    name: str | None = None
    lightweight: bool = True


@dataclass(slots=True)
class Join(Syscall):
    """Block until ``process`` terminates; returns its result.

    If the process failed, its exception is re-raised in the joiner.
    """

    process: "Process"


@dataclass(slots=True)
class Delay(Syscall):
    """Sleep for ``ticks`` of virtual time (0 = just reschedule)."""

    ticks: int


class Yield(Syscall):
    """Voluntarily reschedule without sleeping."""

    __slots__ = ()


class Now(Syscall):
    """Return the current virtual time."""

    __slots__ = ()


class Self(Syscall):
    """Return the calling :class:`~repro.kernel.process.Process`."""

    __slots__ = ()


@dataclass(slots=True)
class Charge(Syscall):
    """Charge ``ticks`` of simulated CPU work to the caller.

    Entry bodies use this to model service time (e.g. "searching the
    dictionary takes 50 ticks").
    """

    ticks: int
    label: str = "work"


@dataclass(slots=True)
class Select(Syscall):
    """Nondeterministic selection over guards (§2.4).

    Blocks until at least one guard is ready, then commits the chosen one
    and returns a :class:`SelectResult`.  Guard choice among ready guards:
    smallest ``pri`` first (run-time priorities), then — configurable on
    the kernel — textual order or seeded-random choice for the paper's
    "selected arbitrarily by the implementation".

    ``else_`` mirrors a polling select: if no guard is ready the call
    returns immediately with ``index == -1`` and ``value is else_value``.
    If every guard is *infeasible* (e.g. all plain booleans false) and
    there is no ``else_``, ``GuardExhaustedError`` is raised.
    """

    guards: Sequence[Guard]
    else_: bool = False
    else_value: Any = None
    unwrap: bool = False

    def __init__(self, *guards: Guard, else_: bool = False, else_value: Any = None) -> None:
        # Accept both Select(g1, g2) and Select([g1, g2]).
        if len(guards) == 1 and isinstance(guards[0], (list, tuple)):
            guards = tuple(guards[0])
        self.guards = tuple(guards)
        self.else_ = else_
        self.else_value = else_value
        #: When True the selecting process receives the committed value
        #: directly instead of a SelectResult (used by Receive/Accept sugar).
        self.unwrap = False


@dataclass(slots=True)
class SelectResult:
    """Outcome of a ``Select``: which guard fired and what it delivered."""

    index: int
    guard: Guard | None
    value: Any

    def __iter__(self):
        """Allow ``index, value = yield Select(...)`` style unpacking."""
        yield self.index
        yield self.value


@dataclass(slots=True)
class Par(Syscall):
    """Parallel execution (§2.1.1): run thunks concurrently, wait for all.

    Each element is a zero-argument callable returning a process body (or a
    plain value).  Returns the list of results in the order given.  This is
    the ``par P(...) and Q(...) end par`` construct; the indexed form
    ``par i = m to n do P(i)`` is :func:`par_range` in ``repro.core``.
    """

    thunks: Sequence[Callable[[], Any]]
    priority: int = PRIORITY_NORMAL

    def __init__(self, *thunks: Callable[[], Any], priority: int = PRIORITY_NORMAL) -> None:
        if len(thunks) == 1 and isinstance(thunks[0], (list, tuple)):
            thunks = tuple(thunks[0])
        self.thunks = tuple(thunks)
        self.priority = priority


@dataclass(slots=True)
class Kill(Syscall):
    """Terminate another process. Returns True if it was alive."""

    process: "Process"


@dataclass(slots=True)
class SetPriority(Syscall):
    """Change a process's priority (own process if ``process`` is None)."""

    priority: int
    process: "Process | None" = None
