"""Waitables and the guard protocol.

The kernel's ``Select`` syscall (and everything built on it: ``receive``,
the manager's ``accept``/``await``, timeouts) is defined over *guards*.  A
guard can be polled for readiness without side effects, and committed —
consuming its event — once chosen.  Guards name the :class:`Waitable`
objects whose state changes could make them ready, so a blocked selector is
woken only by relevant events (the "indexed wakeup" strategy; benchmark E9
compares it against naive re-polling).

This module is substrate: channels, entry-call queues and timers all
implement :class:`Waitable`, and everything in ``repro.core.select`` builds
on :class:`Guard`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .process import Process


class Waitable:
    """Something a process can block on.

    Maintains the set of blocked processes interested in this object.  When
    the object's state changes in a way that could unblock someone, its
    owner calls :meth:`notify`, which asks the kernel to re-evaluate each
    waiter's pending select.
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: list[Process] = []

    def add_waiter(self, proc: "Process") -> None:
        if proc not in self._waiters:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def notify(self, kernel: "Kernel") -> None:
        """Re-evaluate the pending select of every waiter.

        Iterates over a snapshot because a successful re-evaluation
        unregisters the waiter from this waitable.
        """
        for proc in list(self._waiters):
            kernel.reevaluate_select(proc)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Ready:
    """Result of a successful guard poll.

    ``value`` is what the selecting process will receive if this guard is
    chosen; ``token`` is guard-private data that lets ``commit`` consume
    exactly the event that was polled (e.g. the index of the matched
    message in a channel queue).
    """

    __slots__ = ("value", "token")

    def __init__(self, value: Any = None, token: Any = None) -> None:
        self.value = value
        self.token = token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ready(value={self.value!r})"


class Guard:
    """Base class for select guards.

    Subclasses implement:

    * :meth:`poll` — return :class:`Ready` if the guard could fire *now*,
      ``None`` otherwise.  Must be side-effect free.
    * :meth:`commit` — consume the event identified by the earlier poll and
      return the value to deliver.  Called exactly once, immediately after
      a successful poll of the same kernel state.
    * :meth:`waitables` — the objects whose change could make this guard
      ready; the kernel registers a blocked selector on all of them.
    * :meth:`feasible` — whether the guard could *ever* become ready.  A
      plain boolean guard whose condition is false is infeasible; a select
      in which every guard is infeasible raises ``GuardExhaustedError``
      rather than deadlocking silently.

    ``pri`` implements the paper's run-time priority clause: among ready
    guards the one with the smallest priority value is selected.  It may be
    an int or a callable applied to the polled value (so priorities can
    depend on received parameters, as §2.4 requires).
    """

    #: Evaluation priority (paper: "pri E", smallest wins). ``None`` means
    #: unprioritized, which sorts after every explicit priority.
    pri: Any = None

    def poll(self, kernel: "Kernel") -> Ready | None:
        raise NotImplementedError

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> Any:
        raise NotImplementedError

    def waitables(self) -> Iterable[Waitable]:
        return ()

    def feasible(self) -> bool:
        return True

    def describe(self) -> str:
        return type(self).__name__

    def effective_pri(self, ready: Ready) -> tuple[int, int]:
        """Priority key for a ready guard: (has-no-pri, pri-value)."""
        if self.pri is None:
            return (1, 0)
        value = self.pri(ready.value) if callable(self.pri) else self.pri
        return (0, int(value))
