"""Event tracing for the kernel.

Every scheduler decision, syscall, and state transition can be recorded as
a :class:`TraceEvent`.  Traces serve three purposes in the reproduction:

* tests assert on interleavings (e.g. "the manager ran before any entry
  body", reproducing the high-priority-manager claim);
* benchmarks derive metrics (context switches, queue lengths) from traces;
* failed runs are diagnosable — ``Trace.format()`` renders a readable log.

Tracing is off by default and costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """A single kernel event.

    ``kind`` is a short machine-readable tag (``"spawn"``, ``"switch"``,
    ``"send"``, ``"block"``, ``"wake"``, ``"exit"``, ...); ``detail`` holds
    event-specific data.
    """

    time: int
    kind: str
    process: str
    detail: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        extra = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:>8}] {self.kind:<10} {self.process:<24} {extra}"


class Trace:
    """An append-only event log with query helpers."""

    def __init__(self, enabled: bool = False, capacity: int | None = None) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._capacity = capacity
        #: Optional live listeners, invoked synchronously per event.
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def record(self, time: int, kind: str, process: str, **detail: Any) -> None:
        """Append an event (no-op when disabled and nobody is listening).

        A subscribed listener (e.g. an observability sink) receives every
        event even while in-memory retention is off — streaming a run to
        a file must not require holding it in memory too.
        """
        if not self.enabled and not self._listeners:
            return
        event = TraceEvent(time=time, kind=kind, process=process, detail=detail)
        if self.enabled:
            self._events.append(event)
            if self._capacity is not None and len(self._events) > self._capacity:
                del self._events[: len(self._events) - self._capacity]
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every recorded event."""
        self._listeners.append(listener)

    def events(self, kind: str | None = None, process: str | None = None) -> list[TraceEvent]:
        """Return recorded events, optionally filtered by kind and process."""
        result: Iterator[TraceEvent] = iter(self._events)
        if kind is not None:
            result = (e for e in result if e.kind == kind)
        if process is not None:
            result = (e for e in result if e.process == process)
        return list(result)

    def count(self, kind: str, process: str | None = None) -> int:
        """Number of recorded events of ``kind`` (optionally per process)."""
        return len(self.events(kind=kind, process=process))

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def format(self, limit: int | None = None) -> str:
        """Render the trace (optionally only the last ``limit`` events)."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(e.format() for e in events)
