"""Virtual clock for the deterministic kernel.

The kernel runs in *virtual time*: a monotonically non-decreasing integer
tick counter.  Time only advances when the kernel decides it does — either
because a process consumed simulated CPU (see :class:`~repro.kernel.costs.CostModel`)
or because every runnable process is sleeping and the clock jumps to the
next timer expiry.  Virtual time makes every experiment exactly
reproducible, which is what lets the benchmark harness regenerate the
paper's qualitative results run after run.
"""

from __future__ import annotations

from ..errors import KernelError


class VirtualClock:
    """A monotone integer clock measured in ticks.

    One tick is an abstract unit of work; the cost model maps kernel events
    (context switch, process creation, message send, ...) onto ticks.

    Observers subscribe to *advancement*: they are invoked with the new
    time after every actual forward move.  This is how the live telemetry
    plane (:mod:`repro.obs.live`) expires windows without posting kernel
    events — clock motion itself is the timer, so observing a run cannot
    change its schedule.  Observers must not advance the clock.
    """

    __slots__ = ("_now", "_observers")

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise KernelError(f"clock cannot start at negative time {start}")
        self._now = int(start)
        self._observers: list = []

    @property
    def now(self) -> int:
        """Current virtual time in ticks."""
        return self._now

    def subscribe(self, observer) -> None:
        """Call ``observer(now)`` after every actual clock advance."""
        self._observers.append(observer)

    def advance(self, ticks: int) -> int:
        """Advance the clock by ``ticks`` (>= 0) and return the new time."""
        if ticks < 0:
            raise KernelError(f"cannot advance clock by negative ticks ({ticks})")
        if ticks:
            self._now += int(ticks)
            for observer in self._observers:
                observer(self._now)
        return self._now

    def advance_to(self, when: int) -> int:
        """Jump forward to absolute time ``when`` (must not be in the past)."""
        if when < self._now:
            raise KernelError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        if when > self._now:
            self._now = int(when)
            for observer in self._observers:
                observer(self._now)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now})"
