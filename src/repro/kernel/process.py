"""Lightweight processes.

The paper assumes each ALPS object lives in one address space and that all
processes inside it — the manager plus one server process per active entry
call — are *lightweight* processes scheduled preemptively by priority, with
the manager at a higher priority "so that the manager is more receptive to
entry calls" (§2.3, §3).

We model a lightweight process as a Python generator: the generator yields
*syscall* objects (see :mod:`repro.kernel.syscalls`) and the scheduler
resumes it with each syscall's result.  Because processes only lose control
at syscalls, scheduling is cooperative at syscall granularity — exactly the
granularity at which the paper's semantics are defined (its primitives are
the only interaction points between processes).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterable

from ..errors import ProcessError

# Priority levels: numerically smaller = more urgent, matching the paper's
# "high priority" manager.  Arbitrary integers are allowed; these are the
# conventional levels used throughout the library.
PRIORITY_KERNEL = 0
PRIORITY_MANAGER = 10
PRIORITY_NORMAL = 100
PRIORITY_BACKGROUND = 1000


class ProcessState(enum.Enum):
    """Life cycle of a lightweight process."""

    NEW = "new"          # created, not yet dispatched
    READY = "ready"      # runnable, waiting for the CPU
    RUNNING = "running"  # currently executing
    BLOCKED = "blocked"  # waiting on a syscall (receive, select, join, ...)
    DONE = "done"        # returned normally
    FAILED = "failed"    # raised an exception
    KILLED = "killed"    # terminated externally


#: The type of a process body: a generator yielding syscalls.
ProcessBody = Generator[Any, Any, Any]


class Process:
    """A lightweight process: a generator plus scheduling metadata.

    Instances are created through :meth:`repro.kernel.kernel.Kernel.spawn`;
    user code never constructs them directly.
    """

    __slots__ = (
        "pid",
        "name",
        "priority",
        "state",
        "body",
        "result",
        "exception",
        "blocked_on",
        "waiting_for",
        "_resume_value",
        "_resume_exception",
        "exit_watchers",
        "lightweight",
        "daemon",
        "created_at",
        "finished_at",
        "resumptions",
        "epoch",
        "node",
        "span",
        "deadline_at",
        "vruntime",
        "last_cpu",
    )

    def __init__(
        self,
        pid: int,
        name: str,
        body: ProcessBody,
        priority: int = PRIORITY_NORMAL,
        lightweight: bool = True,
        daemon: bool = False,
        created_at: int = 0,
    ) -> None:
        if not hasattr(body, "send") or not hasattr(body, "throw"):
            raise ProcessError(
                f"process body for {name!r} must be a generator "
                f"(got {type(body).__name__}); write the body with 'yield'"
            )
        self.pid = pid
        self.name = name
        self.priority = priority
        self.state = ProcessState.NEW
        self.body = body
        #: Value returned by the body (StopIteration value).
        self.result: Any = None
        #: Exception that terminated the body, if any.
        self.exception: BaseException | None = None
        #: Human-readable description of what the process is blocked on.
        self.blocked_on: str | None = None
        #: Structured description of the same thing, for the wait-for
        #: graph (:mod:`repro.kernel.waitgraph`): a ``(kind, payload)``
        #: tuple — ``("call", call)``, ``("join", target)``,
        #: ``("par", children)``, ``("select", guards)``,
        #: ``("send", channel)`` — or None while runnable.
        self.waiting_for: tuple[str, Any] | None = None
        self._resume_value: Any = None
        self._resume_exception: BaseException | None = None
        #: Callbacks invoked (with this process) when it terminates.
        #: ``Join``, ``Par`` and entry-call plumbing hook in here.
        self.exit_watchers: list[Callable[["Process"], None]] = []
        #: Lightweight processes are cheap to create (see CostModel).
        self.lightweight = lightweight
        #: Daemons (e.g. managers) may be blocked forever at quiescence
        #: without the kernel reporting a deadlock.
        self.daemon = daemon
        self.created_at = created_at
        self.finished_at: int | None = None
        #: Number of times the scheduler resumed this process.
        self.resumptions = 0
        #: Incremented on every park/unpark; stale scheduled events are
        #: recognized (and skipped) by comparing epochs.
        self.epoch = 0
        #: Home node when running on a simulated network (set by repro.net).
        self.node = None
        #: Current observability span: entry calls issued by this process
        #: parent under it (set by the pool for body processes and by the
        #: replication daemons; always None while spans are disabled).
        self.span = None
        #: Absolute end-to-end deadline this process operates under, if
        #: any: entry calls it issues inherit the remaining budget (set
        #: by the pool for body processes serving a deadlined call).
        self.deadline_at: int | None = None
        #: Fair-class virtual runtime (ticks of granted CPU, scaled by
        #: priority); orders fair runqueues in multi-CPU scheduling
        #: domains (:mod:`repro.kernel.sched`).
        self.vruntime = 0
        #: ``(domain, cpu_index)`` of the last CPU that granted this
        #: process work, or None before the first grant — cache-affinity
        #: hint and migration detection for the SMP scheduler.
        self.last_cpu: tuple | None = None

    # -- scheduling hooks (used by the scheduler only) ------------------

    def prepare_resume(self, value: Any = None) -> None:
        """Stage the value that the next ``send`` into the body will carry."""
        self._resume_value = value
        self._resume_exception = None

    def prepare_throw(self, exc: BaseException) -> None:
        """Stage an exception to raise inside the body at resumption."""
        self._resume_exception = exc

    def step(self) -> tuple[bool, Any]:
        """Resume the body until its next yield.

        Returns ``(finished, payload)``: when ``finished`` is False the
        payload is the syscall that was yielded; when True it is the
        body's return value.  Exceptions from the body propagate after
        marking the process FAILED.
        """
        self.resumptions += 1
        try:
            if self._resume_exception is not None:
                exc, self._resume_exception = self._resume_exception, None
                syscall = self.body.throw(exc)
            else:
                value, self._resume_value = self._resume_value, None
                syscall = self.body.send(value)
        except StopIteration as stop:
            self.state = ProcessState.DONE
            self.result = stop.value
            return True, stop.value
        except BaseException as exc:
            self.state = ProcessState.FAILED
            self.exception = exc
            raise
        return False, syscall

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if self.state in (ProcessState.DONE, ProcessState.FAILED):
            return
        self.body.close()
        self.state = ProcessState.KILLED

    # -- introspection ---------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state not in (
            ProcessState.DONE,
            ProcessState.FAILED,
            ProcessState.KILLED,
        )

    def __repr__(self) -> str:
        return (
            f"<Process {self.pid} {self.name!r} prio={self.priority} "
            f"state={self.state.value}"
            + (f" blocked_on={self.blocked_on!r}" if self.blocked_on else "")
            + ">"
        )


def as_generator(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> ProcessBody:
    """Call ``fn`` and normalize the result into a process body.

    If ``fn`` is a generator function the generator is returned as-is.  If
    it is a plain function, it is executed *immediately at first resume*
    inside a one-shot generator — convenient for trivial bodies that never
    block.
    """
    result = fn(*args, **kwargs)
    if hasattr(result, "send") and hasattr(result, "throw"):
        return result

    def one_shot() -> ProcessBody:
        return result
        yield  # pragma: no cover - makes this a generator function

    return one_shot()


def format_blocked(processes: Iterable[Process]) -> str:
    """Render a diagnostic listing of blocked processes (for deadlocks)."""
    lines = []
    for proc in processes:
        lines.append(f"  {proc.name} (pid={proc.pid}) waiting on {proc.blocked_on}")
    return "\n".join(lines) if lines else "  (none)"
