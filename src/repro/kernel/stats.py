"""Kernel statistics.

Benchmarks read these counters to report the quantities the paper argues
about qualitatively: process creations (§3 pools), context switches
(§1 "synchronization overhead due to process switches"), guard polls
(§3 polling of hidden procedure arrays), and message counts.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields


@dataclass
class KernelStats:
    """Mutable counters accumulated over a kernel run."""

    #: Processes created (all kinds).
    spawns: int = 0
    #: Of which lightweight.
    lwp_spawns: int = 0
    #: Processes that terminated (any way).
    exits: int = 0
    #: Scheduler dispatches that switched to a different process.
    context_switches: int = 0
    #: Total process resumptions.
    resumptions: int = 0
    #: Messages sent on channels.
    sends: int = 0
    #: Messages received from channels.
    receives: int = 0
    #: Select syscalls executed.
    selects: int = 0
    #: Individual guard polls performed.
    guard_polls: int = 0
    #: Guards committed (select outcomes, including receives).
    commits: int = 0
    #: accept/start/await/finish primitive executions (filled by core).
    accepts: int = 0
    starts: int = 0
    awaits: int = 0
    finishes: int = 0
    #: Entry calls issued / completed (filled by core).
    calls_issued: int = 0
    calls_completed: int = 0
    #: Calls answered by combining (finished without a start).
    calls_combined: int = 0
    #: Calls shed by admission control (accepted, then rejected).
    calls_shed: int = 0
    #: Simulated CPU ticks consumed by Charge syscalls.
    work_ticks: int = 0
    #: SMP scheduler: grants that landed on a different CPU than the
    #: process's previous one (multi-CPU domains only).
    migrations: int = 0
    #: SMP scheduler: idle-steals — a freed CPU taking the front of the
    #: most-loaded sibling runqueue.
    steals: int = 0
    #: SMP scheduler: periodic load-balancer invocations.
    balance_runs: int = 0
    #: Busy ticks per virtual CPU, keyed ``cpu0`` / ``<node>.cpu0``
    #: (flattened as ``cpu.<key>`` in :meth:`snapshot`).
    cpu: dict[str, int] = field(default_factory=dict)
    #: Extra tallies keyed by label (benchmarks may add their own).
    custom: dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a custom counter.

        .. deprecated::
            The stringly ``custom`` path is superseded by the typed
            registry: declare ``kernel.metrics.counter("layer.name",
            legacy="old_key")`` and call ``inc()`` — typos become
            declaration errors and the legacy mirror keeps old snapshot
            keys alive.  ``bump`` remains only for ad-hoc scripts.
        """
        warnings.warn(
            "KernelStats.bump() is deprecated; declare a typed counter on "
            "kernel.metrics (optionally with legacy=...) and inc() it instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.custom[key] = self.custom.get(key, 0) + amount

    def snapshot(self) -> dict[str, int]:
        """Return a flat dict copy of every counter (custom ones prefixed).

        Field names are derived from the dataclass itself, so adding a
        counter field can never silently omit it from benchmark tables.
        """
        flat = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("custom", "cpu")
        }
        for key, value in self.cpu.items():
            flat[f"cpu.{key}"] = value
        for key, value in self.custom.items():
            flat[f"custom.{key}"] = value
        return flat

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`.

        Keys present only in ``earlier`` (e.g. a custom counter that was
        bumped before the baseline but never after) appear with a
        negative delta instead of being dropped.
        """
        now = self.snapshot()
        return {
            k: now.get(k, 0) - earlier.get(k, 0)
            for k in sorted(now.keys() | earlier.keys())
        }
