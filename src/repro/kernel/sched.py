"""SMP virtual machine: per-CPU runqueues, scheduling classes, balancing.

The kernel models a machine of M virtual CPUs grouped into node-local
*scheduling domains* (one per :class:`repro.net.network.Node` that
declares ``cpus=``, plus the kernel-wide default domain from
``Kernel(num_cpus=...)``).  Each CPU dispatches independently in virtual
time; simulated work (``Charge``, creation costs, guard-poll charges)
becomes a *grant* on some CPU of the issuing process's domain.

Two scheduling classes, in the KOS/Linux shape adapted to a
discrete-event world where grants are non-preemptive:

* **strict class** (priority < ``PRIORITY_NORMAL``) — the paper's
  manager priority: ordered by ``(priority, seq)`` and always granted
  before fair work when a CPU frees ("preempt-at-grant"), so a manager's
  synchronization steps overtake queued entry bodies (§1, §3);
* **fair class** (priority >= ``PRIORITY_NORMAL``) — CFS-style: ordered
  by per-process virtual runtime, which advances with granted work
  scaled by priority, so entry bodies and pool servers share CPUs
  proportionally.  The heap key is the fully deterministic tie-break
  ``(vruntime, node, cpu, pid, seq)``.

Work conservation: a submission starts immediately when any CPU of the
domain is free; a CPU that finishes takes from its own runqueues first
and otherwise *steals* the front item of the most-loaded sibling, so no
CPU idles while its domain has queued work.  A periodic balancer
(armed only while work is queued, cancelled through the kernel's
cancel-dict so it never inflates the simulation end time) equalizes
runqueue depths within a domain.  Load never moves between domains:
nodes are separate machines.

Determinism rules (load-bearing — the trace differ and the committed
fixtures pin them):

* a **single-CPU domain uses the legacy strict order for all classes**:
  one ``(priority, seq)`` heap, exactly the pre-SMP
  ``PriorityCpuScheduler`` behaviour, so ``cpus=1`` runs are
  byte-identical to the historical kernel (fair scheduling cannot
  change anything with one CPU anyway — there is nothing to balance);
* every choice (CPU pick, steal victim, balance move) breaks ties by
  the lowest CPU index and the deterministic heap keys above, never by
  iteration order of a set or dict;
* observability annotations (``cpu=`` span tags, ``migrate`` instants)
  are emitted only in multi-CPU domains and only while ``kernel.obs``
  is enabled, preserving the zero-cost contract and single-CPU trace
  bytes.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable

from ..errors import KernelError
from .process import PRIORITY_NORMAL

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .process import Process

#: How often (virtual ticks) a domain's balancer re-equalizes runqueue
#: depths while work is queued.  0 disables periodic balancing (idle
#: steal alone already keeps domains work-conserving).
DEFAULT_BALANCE_PERIOD = 50


class _Work:
    """One pending CPU grant: a duration and a completion action."""

    __slots__ = ("proc", "priority", "duration", "action", "seq", "vruntime")

    def __init__(
        self,
        proc: "Process | None",
        priority: int,
        duration: int,
        action: Callable[[], None],
        seq: int,
    ) -> None:
        self.proc = proc
        self.priority = priority
        self.duration = duration
        self.action = action
        self.seq = seq
        #: Normalized virtual runtime at enqueue (fair class only).
        self.vruntime = 0


class _Cpu:
    """One virtual CPU: busy flag, runqueues, accounting."""

    __slots__ = (
        "index",
        "key",
        "free",
        "rt",
        "fair",
        "queued_ticks",
        "busy_ticks",
        "fair_clock",
    )

    def __init__(self, index: int, key: str) -> None:
        self.index = index
        #: Stats key (``cpu0`` / ``<node>.cpu0``) under ``stats.cpu``.
        self.key = key
        self.free = True
        #: Strict-class runqueue: heap of ``((priority, seq), work)``.
        self.rt: list[tuple[tuple, _Work]] = []
        #: Fair-class runqueue: heap of
        #: ``((vruntime, node, cpu, pid, seq), work)``.
        self.fair: list[tuple[tuple, _Work]] = []
        #: Total duration of queued (not yet granted) work.
        self.queued_ticks = 0
        #: Total ticks granted on this CPU (utilization accounting).
        self.busy_ticks = 0
        #: Monotone floor for fair vruntime normalization: new arrivals
        #: never sort before work this CPU has already dispatched past.
        self.fair_clock = 0

    @property
    def queue_len(self) -> int:
        return len(self.rt) + len(self.fair)


class SchedDomain:
    """A node-local group of CPUs sharing runqueues, steal and balancing.

    ``name`` is ``""`` for the kernel-wide default domain and the node
    name for per-node domains.  Load never crosses domains.
    """

    __slots__ = (
        "kernel",
        "name",
        "count",
        "cpus",
        "_free",
        "_seq",
        "_waiting",
        "peak_queue",
        "balance_period",
        "_balance_cancel",
    )

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        count: int,
        balance_period: int = DEFAULT_BALANCE_PERIOD,
    ) -> None:
        if count < 1:
            raise KernelError(f"domain {name!r}: cpu count must be >= 1, got {count}")
        self.kernel = kernel
        self.name = name
        self.count = count
        prefix = f"{name}." if name else ""
        self.cpus = [_Cpu(i, f"{prefix}cpu{i}") for i in range(count)]
        self._free = count
        self._seq = 0
        #: Single-CPU (strict) domain runqueue: ``(priority, seq,
        #: duration, action)`` — the exact legacy heap, kept so one-CPU
        #: runs replay the historical kernel byte for byte.
        self._waiting: list[tuple[int, int, int, Callable[[], None]]] = []
        self.peak_queue = 0
        self.balance_period = balance_period
        self._balance_cancel: dict | None = None
        util_name = f"cpu.{name}.util" if name else "cpu.util"
        kernel.metrics.gauge(
            util_name,
            "Fraction of this scheduling domain's CPU capacity in use",
            fn=self.utilization_now,
        )

    # -- shared accounting ----------------------------------------------

    @property
    def queued(self) -> int:
        """Grants waiting for a CPU (all runqueues of the domain)."""
        if self.count == 1:
            return len(self._waiting)
        return sum(cpu.queue_len for cpu in self.cpus)

    @property
    def busy_ticks(self) -> int:
        return sum(cpu.busy_ticks for cpu in self.cpus)

    def utilization(self, elapsed: int) -> float:
        """Fraction of the domain's CPU capacity used over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.busy_ticks / (elapsed * self.count)

    def utilization_now(self) -> float:
        """Gauge callback: utilization over the elapsed virtual time."""
        return round(self.utilization(self.kernel.clock.now), 4)

    def _account(self, cpu: _Cpu, duration: int) -> None:
        cpu.busy_ticks += duration
        self.kernel.stats.cpu[cpu.key] = cpu.busy_ticks

    # -- submission ------------------------------------------------------

    def submit(
        self,
        proc: "Process | None",
        priority: int,
        duration: int,
        action: Callable[[], None],
    ) -> None:
        """Grant ``duration`` ticks of CPU, then call ``action()``."""
        if duration <= 0:
            action()
            return
        if self.count == 1:
            self._submit_strict(priority, duration, action)
        else:
            self._submit_smp(proc, priority, duration, action)

    # -- single-CPU domain: the legacy strict path -----------------------
    #
    # Identical, call for call, to the historical PriorityCpuScheduler:
    # start if the CPU is free, else queue by (priority, seq); on finish,
    # free the CPU, start the best queued grant, then run the action.

    def _submit_strict(
        self, priority: int, duration: int, action: Callable[[], None]
    ) -> None:
        if self._free > 0:
            self._start_strict(duration, action)
        else:
            self._seq += 1
            heapq.heappush(self._waiting, (priority, self._seq, duration, action))
            self.peak_queue = max(self.peak_queue, len(self._waiting))

    def _start_strict(self, duration: int, action: Callable[[], None]) -> None:
        self._free -= 1
        cpu = self.cpus[0]
        self._account(cpu, duration)
        end = self.kernel.clock.now + duration

        def finish() -> None:
            self._free += 1
            if self._waiting:
                _prio, _seq, next_duration, next_action = heapq.heappop(self._waiting)
                self._start_strict(next_duration, next_action)
            action()

        self.kernel.post(end, finish)

    # -- multi-CPU domain: per-CPU runqueues + classes -------------------

    def _submit_smp(
        self,
        proc: "Process | None",
        priority: int,
        duration: int,
        action: Callable[[], None],
    ) -> None:
        self._seq += 1
        work = _Work(proc, priority, duration, action, self._seq)
        cpu = self._pick_free(proc)
        if cpu is not None:
            self._start_smp(cpu, work)
            return
        target = min(self.cpus, key=lambda c: (c.queued_ticks, c.index))
        self._enqueue(target, work)
        self.peak_queue = max(self.peak_queue, self.queued)
        self._arm_balancer()

    def _pick_free(self, proc: "Process | None") -> _Cpu | None:
        """The CPU a new grant starts on: last-used if free, else lowest."""
        if proc is not None and proc.last_cpu is not None:
            name, index = proc.last_cpu
            if name == self.name and index < self.count and self.cpus[index].free:
                return self.cpus[index]
        for cpu in self.cpus:
            if cpu.free:
                return cpu
        return None

    def _fair_key(self, cpu: _Cpu, work: _Work) -> tuple:
        pid = work.proc.pid if work.proc is not None else 0
        return (work.vruntime, self.name, cpu.index, pid, work.seq)

    def _enqueue(self, cpu: _Cpu, work: _Work) -> None:
        if work.priority < PRIORITY_NORMAL:
            heapq.heappush(cpu.rt, ((work.priority, work.seq), work))
        else:
            base = work.proc.vruntime if work.proc is not None else 0
            work.vruntime = max(base, cpu.fair_clock)
            heapq.heappush(cpu.fair, (self._fair_key(cpu, work), work))
        cpu.queued_ticks += work.duration

    def _start_smp(self, cpu: _Cpu, work: _Work) -> None:
        cpu.free = False
        self._account(cpu, work.duration)
        kernel = self.kernel
        proc = work.proc
        if proc is not None:
            here = (self.name, cpu.index)
            prev = proc.last_cpu
            if prev is not None and prev != here:
                kernel.stats.migrations += 1
                if kernel.obs.enabled:
                    kernel.obs.instant(
                        "migrate",
                        process=proc.name,
                        frm=f"{prev[0] or 'cpu'}/{prev[1]}",
                        to=f"{self.name or 'cpu'}/{cpu.index}",
                    )
            proc.last_cpu = here
            if work.priority >= PRIORITY_NORMAL:
                vruntime = max(proc.vruntime, cpu.fair_clock)
                cpu.fair_clock = vruntime
                # Priority scales the charge: background work (priority
                # 1000) ages 10x faster than normal work, so it yields
                # the CPU to peers with smaller vruntime.
                proc.vruntime = (
                    vruntime + work.duration * work.priority // PRIORITY_NORMAL
                )
            if kernel.obs.enabled and proc.span is not None:
                proc.span.attrs["cpu"] = f"{self.name or 'cpu'}/{cpu.index}"
        end = kernel.clock.now + work.duration
        action = work.action

        def finish() -> None:
            cpu.free = True
            next_work = self._next_work(cpu)
            if next_work is not None:
                self._start_smp(cpu, next_work)
            if self.queued == 0:
                # Cancelled events are dropped before the clock advances,
                # so a drained domain never inflates the simulation end.
                self._cancel_balancer()
            action()

        kernel.post(end, finish)

    def _pop_front(self, cpu: _Cpu) -> _Work | None:
        """Best queued grant of one CPU: strict class first, then fair."""
        if cpu.rt:
            work = heapq.heappop(cpu.rt)[1]
        elif cpu.fair:
            work = heapq.heappop(cpu.fair)[1]
        else:
            return None
        cpu.queued_ticks -= work.duration
        return work

    def _next_work(self, cpu: _Cpu) -> _Work | None:
        """What a freshly freed CPU runs next: own queue, else steal."""
        work = self._pop_front(cpu)
        if work is not None:
            return work
        victim = None
        for other in self.cpus:
            if other is cpu or not other.queue_len:
                continue
            if victim is None or (other.queued_ticks, -other.index) > (
                victim.queued_ticks,
                -victim.index,
            ):
                victim = other
        if victim is None:
            return None
        work = self._pop_front(victim)
        self.kernel.stats.steals += 1
        return work

    # -- periodic balancing ----------------------------------------------

    def _arm_balancer(self) -> None:
        if self.balance_period <= 0 or self._balance_cancel is not None:
            return
        cancel = {"cancelled": False}
        self._balance_cancel = cancel
        self.kernel.post(
            self.kernel.clock.now + self.balance_period, self._balance, cancel=cancel
        )

    def _cancel_balancer(self) -> None:
        if self._balance_cancel is not None:
            self._balance_cancel["cancelled"] = True
            self._balance_cancel = None

    def _balance(self) -> None:
        self._balance_cancel = None
        if self.queued == 0:
            return
        self.kernel.stats.balance_runs += 1
        while True:
            busiest = max(self.cpus, key=lambda c: (c.queue_len, -c.index))
            idlest = min(self.cpus, key=lambda c: (c.queue_len, c.index))
            if busiest.queue_len - idlest.queue_len <= 1:
                break
            moved = self._pop_front(busiest)
            if moved is None:  # pragma: no cover - queue_len guards this
                break
            self._enqueue(idlest, moved)
        if self.queued:
            self._arm_balancer()


class SmpScheduler:
    """All scheduling domains of one kernel, keyed by node name.

    The default domain (``""``) models ``Kernel(num_cpus=N)``; nodes
    that declare ``cpus=`` get their own.  ``domain_of`` routes a
    process's CPU grants: node domain when its home node has one, the
    default domain otherwise; ``None`` means the unbounded machine (the
    kernel falls back to the infinite :class:`~repro.kernel.cpu.CpuPool`
    latency model).
    """

    __slots__ = ("kernel", "domains", "default", "balance_period")

    def __init__(
        self,
        kernel: "Kernel",
        default_cpus: int | None,
        balance_period: int = DEFAULT_BALANCE_PERIOD,
    ) -> None:
        self.kernel = kernel
        self.balance_period = balance_period
        self.domains: dict[str, SchedDomain] = {}
        self.default: SchedDomain | None = (
            None if default_cpus is None else self.add_domain("", default_cpus)
        )

    def add_domain(self, name: str, count: int) -> SchedDomain:
        """Register a scheduling domain (idempotence is an error)."""
        if name in self.domains:
            raise KernelError(f"scheduling domain {name!r} already exists")
        domain = SchedDomain(self.kernel, name, count, self.balance_period)
        self.domains[name] = domain
        return domain

    def domain_of(self, proc: "Process | None") -> SchedDomain | None:
        """The domain whose CPUs serve ``proc``'s grants."""
        if proc is not None and proc.node is not None:
            domain = self.domains.get(getattr(proc.node, "name", ""))
            if domain is not None:
                return domain
        return self.default

    def domain(self, name: str) -> SchedDomain | None:
        return self.domains.get(name)

    def queue_depth(self, node: Any = None) -> int:
        """Queued grants in the domain serving ``node`` (admission input)."""
        domain = None
        if node is not None:
            domain = self.domains.get(getattr(node, "name", node))
        if domain is None:
            domain = self.default
        return 0 if domain is None else domain.queued

    # -- kernel-facing aggregates ---------------------------------------

    @property
    def queued(self) -> int:
        return sum(d.queued for d in self.domains.values())

    @property
    def peak_queue(self) -> int:
        return max((d.peak_queue for d in self.domains.values()), default=0)

    @property
    def busy_ticks(self) -> int:
        return sum(d.busy_ticks for d in self.domains.values())

    def utilization(self, elapsed: int) -> float:
        """Capacity-weighted utilization across every finite domain."""
        total_cpus = sum(d.count for d in self.domains.values())
        if elapsed <= 0 or total_cpus == 0:
            return 0.0
        return self.busy_ticks / (elapsed * total_cpus)
