"""Timeout guard for ``select``.

Not in the 1988 paper's surface syntax, but indispensable for driving
benchmark workloads (bounded experiment duration, arrival processes) and a
natural extension of its guard model: ``Timeout(n)`` becomes ready ``n``
ticks after the select blocks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .waiting import Guard, Ready

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .process import Process


class Timeout(Guard):
    """Guard that fires ``ticks`` after its select starts waiting.

    The deadline is anchored at the first poll, so guard objects must not
    be shared between selects: once a ``Timeout`` has been consumed (its
    select committed a guard — this one or another), re-arming it in a new
    select raises :class:`ValueError` instead of silently reusing the
    stale deadline.
    """

    def __init__(self, ticks: int, value: object = None, pri: object = None) -> None:
        if ticks < 0:
            raise ValueError(f"timeout must be >= 0, got {ticks}")
        self.ticks = ticks
        self.value = value
        self.pri = pri
        self._deadline: int | None = None
        self._consumed = False
        self._cancel = {"cancelled": False}

    def poll(self, kernel: "Kernel") -> Ready | None:
        if self._consumed:
            raise ValueError(
                f"Timeout({self.ticks}) guard re-armed after its select "
                f"completed; construct a fresh Timeout per select"
            )
        if self._deadline is None:
            self._deadline = kernel.clock.now + self.ticks
        if kernel.clock.now >= self._deadline:
            return Ready(self.value)
        return None

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> object:
        self._consumed = True
        return ready.value

    def on_block(self, kernel: "Kernel", proc: "Process") -> None:
        """Post a wakeup at the deadline (cancelled if the select fires first)."""
        assert self._deadline is not None
        epoch = proc.epoch
        self._cancel["cancelled"] = False

        def fire() -> None:
            if proc.alive and proc.epoch == epoch:
                kernel.reevaluate_select(proc)

        kernel.post(self._deadline, fire, priority=proc.priority, cancel=self._cancel)

    def on_unblock(self, kernel: "Kernel", proc: "Process") -> None:
        # The select resolved (through this guard or another): the anchored
        # deadline is spent either way.
        self._consumed = True
        self._cancel["cancelled"] = True

    def describe(self) -> str:
        return f"timeout({self.ticks})"
