"""The runtime wait-for graph: who is blocked on whom, and why.

Built on the structured ``Process.waiting_for`` records the kernel (and
the entry-call machinery in ``repro.core``) maintain alongside the
human-readable ``blocked_on`` strings.  Each blocked process becomes a
node; an edge ``P → Q`` means "P cannot make progress until Q acts",
labelled with the object/entry/slot involved:

* a caller blocked in an entry call waits on the target object's
  **manager** while the call is attached/accepted/awaiting ``finish``,
  on the **body process** while the body runs, and on the **slot
  holders** while the hidden procedure array is exhausted;
* a manager blocked in a ``select`` whose ``await`` guards cannot fire
  waits on the started bodies those guards watch
  (:meth:`~repro.core.primitives.AwaitGuard.wait_targets`);
* ``join``/``par`` waiters wait on their targets/children.

A cycle of such edges is a deadlock: every participant needs another
participant to move first.  :meth:`WaitForSnapshot.cycles` finds them
(Tarjan SCCs), and the kernel attaches the whole snapshot to
:class:`~repro.errors.DeadlockError` as ``.wait_for`` so tests and the
faults runtime can assert on the cycle structurally instead of parsing
the exception text.  The opt-in *live* detector
(:class:`repro.analysis.LiveDeadlockDetector`) builds the same snapshot
periodically and flags definite cycles — and exhausted hidden pools —
*before* quiescence.

Edges are marked *definite* unless a pending timer could dissolve them
(a timed entry call, or a select that also holds a feasible ``Timeout``
guard); the live detector only raises on all-definite cycles, while at
quiescence the distinction is moot (an empty event queue has no timers
left to fire).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from .process import Process, ProcessState
from .timeouts import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class WaitEdge:
    """One "waits on" relation: ``src`` cannot proceed until ``dst`` acts."""

    __slots__ = ("src", "dst", "label", "definite", "obj", "entry", "slot")

    def __init__(
        self,
        src: Process,
        dst: Process,
        label: str,
        definite: bool = True,
        obj: str | None = None,
        entry: str | None = None,
        slot: int | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.label = label
        self.definite = definite
        #: ``alps_name`` of the object involved, if the wait is an entry
        #: call or a manager-side await; None for join/par edges.
        self.obj = obj
        self.entry = entry
        self.slot = slot

    def describe(self) -> str:
        return f"{self.src.name} --[{self.label}]--> {self.dst.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WaitEdge {self.describe()}>"


class PoolReport:
    """A hidden procedure array with callers queued behind full slots."""

    __slots__ = ("obj", "entry", "array_size", "waiting", "holders")

    def __init__(
        self,
        obj: str,
        entry: str,
        array_size: int,
        waiting: int,
        holders: list[str],
    ) -> None:
        self.obj = obj
        self.entry = entry
        self.array_size = array_size
        #: Calls queued with no free slot to attach to.
        self.waiting = waiting
        #: ``"entry[slot]=state"`` descriptions of the occupying calls.
        self.holders = holders

    def describe(self) -> str:
        return (
            f"{self.obj}.{self.entry}[1..{self.array_size}] exhausted: "
            f"{self.waiting} caller(s) queued behind "
            f"{', '.join(self.holders) or 'nothing'}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PoolReport {self.describe()}>"


class WaitForSnapshot:
    """The wait-for graph at one instant, attached to ``DeadlockError``."""

    def __init__(
        self,
        time: int,
        processes: list[Process],
        edges: list[WaitEdge],
        pools: list[PoolReport],
    ) -> None:
        #: Virtual time the snapshot was taken.
        self.time = time
        #: Every blocked, alive process (daemons included — a manager in
        #: a cycle is the interesting node).
        self.processes = processes
        self.edges = edges
        #: Exhausted hidden procedure arrays (slots all held, calls queued).
        self.pools = pools

    # -- queries -----------------------------------------------------------

    def edges_from(self, proc: Process) -> list[WaitEdge]:
        return [e for e in self.edges if e.src is proc]

    def cycles(self, definite_only: bool = False) -> list[list[WaitEdge]]:
        """Circular waits, one edge-cycle per strongly connected component.

        Returns each cycle as the list of edges walked head-to-tail (the
        last edge returns to the first edge's source).  With
        ``definite_only`` edges that a pending timer could dissolve are
        excluded before searching.
        """
        edges = [e for e in self.edges if e.definite] if definite_only else self.edges
        adjacency: dict[int, list[WaitEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.src.pid, []).append(edge)
        cycles: list[list[WaitEdge]] = []
        for component in _tarjan_sccs(adjacency):
            if len(component) == 1:
                pid = next(iter(component))
                if not any(e.dst.pid == pid for e in adjacency.get(pid, ())):
                    continue  # trivial SCC without a self-loop
            cycle = _walk_cycle(component, adjacency)
            if cycle:
                cycles.append(cycle)
        return cycles

    # -- rendering ---------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-safe form of the snapshot (names, not Process objects).

        This is the interchange format of the DOT exporter: dump it next
        to a failing run (``json.dump(err.wait_for.to_json(), fh)``) and
        render it later with ``python -m repro.analysis --dot FILE`` or
        alongside a critical-path report via ``repro.obs.analyze
        --waitgraph``.
        """
        return {
            "type": "wait_for",
            "time": self.time,
            "processes": [p.name for p in self.processes],
            "edges": [
                {
                    "src": e.src.name,
                    "dst": e.dst.name,
                    "label": e.label,
                    "definite": e.definite,
                    "obj": e.obj,
                    "entry": e.entry,
                    "slot": e.slot,
                }
                for e in self.edges
            ],
            "pools": [
                {
                    "obj": p.obj,
                    "entry": p.entry,
                    "array_size": p.array_size,
                    "waiting": p.waiting,
                    "holders": list(p.holders),
                }
                for p in self.pools
            ],
            "cycles": [
                [[e.src.name, e.dst.name] for e in cycle]
                for cycle in self.cycles()
            ],
        }

    def describe_cycle(self, cycle: list[WaitEdge]) -> str:
        if not cycle:
            return ""
        parts = [cycle[0].src.name]
        for edge in cycle:
            parts.append(f"--[{edge.label}]--> {edge.dst.name}")
        return " ".join(parts)

    def describe_cycles(self) -> str:
        """Multi-line rendering of every cycle (and exhausted pool)."""
        lines = []
        for cycle in self.cycles():
            lines.append("wait-for cycle: " + self.describe_cycle(cycle))
        for pool in self.pools:
            lines.append("exhausted pool: " + pool.describe())
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [f"wait-for graph at t={self.time}:"]
        for edge in self.edges:
            lines.append("  " + edge.describe())
        if not self.edges:
            lines.append("  (no edges)")
        tail = self.describe_cycles()
        if tail:
            lines.append(tail)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WaitForSnapshot t={self.time} "
            f"{len(self.processes)} blocked, {len(self.edges)} edges>"
        )


def _tarjan_sccs(adjacency: dict[int, list[WaitEdge]]) -> list[set[int]]:
    """Strongly connected components of the pid graph (iterative Tarjan)."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[set[int]] = []
    counter = [0]

    for root in adjacency:
        if root in index:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for edge in edges:
                nxt = edge.dst.pid
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _walk_cycle(
    component: set[int], adjacency: dict[int, list[WaitEdge]]
) -> list[WaitEdge]:
    """Extract one concrete edge cycle inside an SCC."""
    start = min(component)
    path: list[WaitEdge] = []
    seen: dict[int, int] = {start: 0}
    node = start
    while True:
        edge = next(
            (e for e in adjacency.get(node, ()) if e.dst.pid in component), None
        )
        if edge is None:
            return []  # no intra-component edge (cannot happen for real SCCs)
        path.append(edge)
        node = edge.dst.pid
        if node in seen:
            return path[seen[node] :]
        seen[node] = len(path)


def _call_target_edges(proc: Process, call: Any) -> Iterable[WaitEdge]:
    """Edges for a process blocked in an entry call (RPC semantics)."""
    from ..core.calls import CallState  # local import: kernel < core layering

    obj = call.obj
    obj_name = getattr(obj, "alps_name", str(obj))
    slot_txt = f"[{call.slot}]" if call.slot is not None else ""
    label = f"call {obj_name}.{call.entry}{slot_txt}"
    definite = call.timeout is None
    manager = getattr(obj, "manager_process", None)

    if call.state == CallState.STARTED:
        body = call.body_process
        if body is not None and body.alive:
            yield WaitEdge(
                proc,
                body,
                label + " (body running)",
                definite,
                obj=obj_name,
                entry=call.entry,
                slot=call.slot,
            )
        else:
            # Started but no worker assigned: the body job is backlogged
            # behind a saturated server pool, so the caller waits on
            # every call holding a worker (without these edges a
            # recursion through a bounded pool deadlocks without the
            # graph ever closing the cycle).
            yield from _pool_backlog_edges(
                proc, call, label, definite, obj_name
            )
        return

    if call.state in (CallState.ATTACHED, CallState.ACCEPTED):
        phase = "awaiting accept" if call.state == CallState.ATTACHED else "awaiting start/finish"
    elif call.state in (CallState.BODY_DONE, CallState.AWAITED):
        phase = "awaiting finish"
    else:
        phase = "awaiting slot" if call.slot is None else "pending"

    if call.spec.intercepted and manager is not None and manager.alive:
        yield WaitEdge(
            proc,
            manager,
            f"{label} ({phase})",
            definite,
            obj=obj_name,
            entry=call.entry,
            slot=call.slot,
        )
    if call.slot is None:
        # Pool exhaustion: also wait on whoever holds the slots.
        runtime = getattr(obj, "_entry_runtime", lambda _n: None)(call.entry)
        if runtime is None:
            return
        for held in runtime.slots:
            if held is None or held is call:
                continue
            holder = None
            if held.state == CallState.STARTED and held.body_process is not None:
                holder = held.body_process
            elif not call.spec.intercepted:
                holder = None  # unmanaged attached call: body imminent
            if holder is not None and holder.alive:
                yield WaitEdge(
                    proc,
                    holder,
                    f"{label} (slot {held.slot} held by call #{held.call_id})",
                    definite,
                    obj=obj_name,
                    entry=call.entry,
                    slot=held.slot,
                )
        yield from _pool_backlog_edges(proc, call, label, definite, obj_name)


def _pool_backlog_edges(
    proc: Process, call: Any, label: str, definite: bool, obj_name: str
) -> Iterable[WaitEdge]:
    """Edges for a call whose body job queues behind a saturated pool."""
    pool = getattr(call.obj, "_pool", None)
    if pool is None or not any(c is call for c in pool.queued_calls()):
        return
    for held in pool.active:
        body = held.body_process
        if body is not None and body.alive:
            yield WaitEdge(
                proc,
                body,
                f"{label} (worker held by call #{held.call_id})",
                definite,
                obj=obj_name,
                entry=call.entry,
                slot=held.slot,
            )


def build_wait_graph(kernel: "Kernel") -> WaitForSnapshot:
    """Snapshot the wait-for graph of every blocked process on ``kernel``."""
    blocked = [
        p
        for p in kernel.processes()
        if p.alive and p.state == ProcessState.BLOCKED
    ]
    edges: list[WaitEdge] = []
    for proc in blocked:
        record = proc.waiting_for
        if record is None:
            continue
        kind, payload = record
        if kind == "call":
            edges.extend(_call_target_edges(proc, payload))
        elif kind == "join":
            target = payload
            if target.alive:
                edges.append(WaitEdge(proc, target, f"join({target.name})"))
        elif kind == "par":
            for child in payload:
                if child.alive:
                    edges.append(WaitEdge(proc, child, f"par({child.name})"))
        elif kind == "select":
            # A select with a live Timeout guard will fire on its own;
            # edges derived from it are not definite.
            definite = not any(
                isinstance(g, Timeout) and not g._consumed for g in payload
            )
            for guard in payload:
                targets = getattr(guard, "wait_targets", None)
                if targets is None:
                    continue
                obj_name = getattr(
                    getattr(guard, "runtime", None), "obj", None
                )
                obj_name = getattr(obj_name, "alps_name", None)
                entry = getattr(getattr(guard, "runtime", None), "spec", None)
                entry = getattr(entry, "name", None)
                for target in targets(kernel):
                    if target is not None and target.alive:
                        edges.append(
                            WaitEdge(
                                proc,
                                target,
                                guard.describe() + f" (body {target.name})",
                                definite,
                                obj=obj_name,
                                entry=entry,
                            )
                        )
        # "send" and unknown kinds contribute no edges: a blocked channel
        # sender can be released by any future receiver.

    pools: list[PoolReport] = []
    for obj in getattr(kernel, "_alps_objects", ()):  # registered AlpsObjects
        runtimes = getattr(obj, "_runtimes", None)
        if not runtimes:
            continue
        for runtime in runtimes.values():
            if not runtime.waiting:
                continue
            if any(slot is None for slot in runtime.slots):
                continue  # free capacity exists; attachment is imminent
            pools.append(
                PoolReport(
                    obj.alps_name,
                    runtime.spec.name,
                    runtime.array_size,
                    len(runtime.waiting),
                    [
                        f"{runtime.spec.name}[{c.slot}]={c.state.value}"
                        for c in runtime.slots
                        if c is not None
                    ],
                )
            )

    return WaitForSnapshot(kernel.clock.now, blocked, edges, pools)
