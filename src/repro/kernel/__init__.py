"""Deterministic lightweight-process kernel (the paper's "ALPS kernel").

Public surface::

    from repro.kernel import Kernel, Spawn, Join, Delay, Charge, Select, Par

See :mod:`repro.kernel.kernel` for the scheduler itself.
"""

from .clock import VirtualClock
from .costs import DEFAULT, FREE, HEAVY_PROCESSES, CostModel
from .cpu import CpuPool
from .kernel import Kernel
from .process import (
    PRIORITY_BACKGROUND,
    PRIORITY_KERNEL,
    PRIORITY_MANAGER,
    PRIORITY_NORMAL,
    Process,
    ProcessState,
)
from .stats import KernelStats
from .syscalls import (
    Charge,
    Delay,
    Join,
    Kill,
    Now,
    Par,
    Select,
    SelectResult,
    Self,
    SetPriority,
    Spawn,
    Syscall,
    Yield,
)
from .timeouts import Timeout
from .tracing import Trace, TraceEvent
from .waiting import Guard, Ready, Waitable

__all__ = [
    "Kernel",
    "KernelStats",
    "VirtualClock",
    "CostModel",
    "CpuPool",
    "DEFAULT",
    "FREE",
    "HEAVY_PROCESSES",
    "Process",
    "ProcessState",
    "PRIORITY_KERNEL",
    "PRIORITY_MANAGER",
    "PRIORITY_NORMAL",
    "PRIORITY_BACKGROUND",
    "Syscall",
    "Spawn",
    "Join",
    "Delay",
    "Charge",
    "Yield",
    "Now",
    "Self",
    "Kill",
    "SetPriority",
    "Select",
    "SelectResult",
    "Par",
    "Timeout",
    "Guard",
    "Ready",
    "Waitable",
    "Trace",
    "TraceEvent",
]
