"""The ALPS kernel: a deterministic discrete-event scheduler for
lightweight processes.

This is our substitute for the run-time kernel the paper describes in §3/§4
(implemented there in C on a 16-node transputer network).  Processes are
generator coroutines; they interact with the kernel by yielding syscalls
(:mod:`repro.kernel.syscalls`).  The kernel provides:

* **priority scheduling** — events are dispatched in (time, priority, FIFO)
  order, so a high-priority manager runs before same-instant entry bodies,
  reproducing the paper's "the manager should execute at a higher priority
  so that it is more receptive to entry calls";
* **virtual time** — simulated work (``Charge``/``Delay``) advances a
  virtual clock; with a finite :class:`~repro.kernel.cpu.CpuPool` work
  contends for processors, with an infinite pool it overlaps freely;
* **selective waiting** — the generic guard protocol under ``select``/
  ``loop``, with run-time priorities and acceptance conditions;
* **deadlock detection** — if the event queue drains while a non-daemon
  process is blocked, a :class:`~repro.errors.DeadlockError` is raised with
  a listing of who waits on what.

Determinism: every run with the same seed and program replays the same
interleaving.  Points the paper leaves to "the implementation" (arbitrary
guard choice, arbitrary slot attachment) are governed by the
``arbitration`` policy (``"ordered"`` or seeded ``"random"``).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Iterable

from ..errors import DeadlockError, GuardExhaustedError, KernelError, ProcessError
from ..obs import MetricsRegistry, Observability
from .clock import VirtualClock
from .costs import DEFAULT, CostModel
from .cpu import CpuPool
from .sched import SmpScheduler
from .process import (
    PRIORITY_NORMAL,
    Process,
    ProcessState,
    as_generator,
    format_blocked,
)
from .stats import KernelStats
from .syscalls import (
    Charge,
    Delay,
    Join,
    Kill,
    Now,
    Par,
    Select,
    SelectResult,
    Self,
    SetPriority,
    Spawn,
    Yield,
)
from .tracing import Trace
from .waiting import Guard, Ready, Waitable


class _PendingSelect:
    """Bookkeeping for a process blocked in ``Select``."""

    __slots__ = ("select", "guards", "registered", "poll_count")

    def __init__(self, select: Select, guards: list[tuple[int, Guard]]) -> None:
        self.select = select
        #: Feasible (index, guard) pairs.
        self.guards = guards
        #: Waitables this process was registered on.
        self.registered: list[Waitable] = []
        #: Guard polls performed on behalf of this select while blocked.
        self.poll_count = 0


class Kernel:
    """Deterministic virtual-time scheduler for lightweight processes.

    Parameters
    ----------
    costs:
        Tick charges for kernel events (:class:`~repro.kernel.costs.CostModel`).
    num_cpus:
        ``None`` for an unbounded machine (pure latency model) or a positive
        integer for a finite machine where simulated work contends on an
        SMP scheduler (per-CPU runqueues; see :mod:`repro.kernel.sched`).
        ``cpus`` is an alias.  Nodes may additionally declare their own
        CPU counts (``Network.add_node(name, cpus=...)``), which become
        node-local scheduling domains.
    seed:
        Seed for all "arbitrary" choices; same seed => same run.
    arbitration:
        ``"ordered"`` resolves arbitrary choices by textual/FIFO order,
        ``"random"`` uses the seeded RNG (still deterministic per seed).
    trace:
        Enable event tracing (off by default; see
        :class:`~repro.kernel.tracing.Trace`).
    spans:
        Enable per-call span recording (off by default; see
        :class:`~repro.obs.Observability`).  Attaching a sink via
        ``kernel.obs.add_sink(...)`` also enables it.
    """

    def __init__(
        self,
        costs: CostModel = DEFAULT,
        num_cpus: int | None = None,
        seed: int = 0,
        arbitration: str = "ordered",
        trace: bool = False,
        spans: bool = False,
        cpus: int | None = None,
    ) -> None:
        costs.validate()
        if arbitration not in ("ordered", "random"):
            raise KernelError(f"unknown arbitration policy {arbitration!r}")
        if cpus is not None:
            if num_cpus is not None and num_cpus != cpus:
                raise KernelError(
                    f"cpus= and num_cpus= disagree ({cpus} vs {num_cpus})"
                )
            num_cpus = cpus
        self.costs = costs
        self.cpus = CpuPool(None if num_cpus is None else num_cpus)
        self.clock = VirtualClock()
        self.rng = random.Random(seed)
        self.arbitration = arbitration
        self.trace = Trace(enabled=trace)
        self.stats = KernelStats()
        #: Typed metric registry; counters declared with a ``legacy=`` key
        #: mirror into ``stats.custom`` for pre-registry consumers.
        self.metrics = MetricsRegistry(legacy=self.stats.custom)
        #: Span recording and sink fan-out; disabled unless requested.
        self.obs = Observability(self)
        if spans:
            self.obs.enable()
        #: The SMP virtual machine: scheduling domains of per-CPU
        #: runqueues (:mod:`repro.kernel.sched`).  The default domain
        #: exists only on a finite machine; node-local domains register
        #: through ``Network.add_node(name, cpus=...)`` either way.
        self.cpu_scheduler = SmpScheduler(self, num_cpus)
        #: Fault-injection engine, if one is installed
        #: (:func:`repro.faults.install`).  ``None`` means the substrate is
        #: perfect: no crashes, no loss, no degradation.
        self.faults: Any = None

        self._events: list[tuple[int, int, int, Any]] = []  # (time, prio, seq, item)
        self._seq = 0
        self._next_pid = 1
        #: Per-kernel entry-call ids (a process-global counter would leak
        #: across kernels and make otherwise identical runs diverge in
        #: trace/process names).
        self._next_call_id = 0
        self._processes: dict[int, Process] = {}
        #: Every AlpsObject created on this kernel (registered by
        #: ``AlpsObject.__init__``); the wait-for graph scans it for
        #: exhausted hidden procedure arrays.
        self._alps_objects: list[Any] = []
        self._pending_selects: dict[int, _PendingSelect] = {}
        self._last_stepped: Process | None = None
        self._running = False

    @property
    def current_process(self) -> Process | None:
        """The process whose generator is executing right now.

        Valid only from code running inside a process body (the kernel
        points it at a process immediately before resuming its
        generator); observability helpers use it to attach spans to the
        calling process without spending a ``Self`` syscall — which
        would insert an extra event and perturb same-tick ordering.
        """
        return self._last_stepped

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        priority: int = PRIORITY_NORMAL,
        lightweight: bool = True,
        daemon: bool = False,
        charge_to: Process | None = None,
        **kwargs: Any,
    ) -> Process:
        """Create a process running ``fn(*args, **kwargs)``.

        ``fn`` may be a generator function (the normal case) or a plain
        function (run atomically at first dispatch).  The new process is
        scheduled immediately at the current time; it actually runs when
        its event reaches the front of the queue.
        """
        body = as_generator(fn, *args, **kwargs)
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(
            pid=pid,
            name=name or getattr(fn, "__name__", "proc"),
            body=body,
            priority=priority,
            lightweight=lightweight,
            daemon=daemon,
            created_at=self.clock.now,
        )
        self._processes[pid] = proc
        self.stats.spawns += 1
        if lightweight:
            self.stats.lwp_spawns += 1
        cost = self.costs.lwp_create if lightweight else self.costs.process_create
        proc.state = ProcessState.READY
        if cost and charge_to is not None:
            # Creation cost delays the new process's first dispatch; the
            # work is queued at the *creator's* priority on the
            # creator's CPUs.
            self._after_cpu(
                cost,
                charge_to.priority,
                lambda: self._schedule_step(proc),
                proc=charge_to,
            )
        else:
            self._schedule_step(proc)
        self.trace.record(self.clock.now, "spawn", proc.name, pid=pid, priority=priority)
        return proc

    def process_count(self, alive_only: bool = True) -> int:
        """Number of processes known to the kernel."""
        if not alive_only:
            return len(self._processes)
        return sum(1 for p in self._processes.values() if p.alive)

    def processes(self) -> list[Process]:
        """Snapshot of all processes (alive and dead)."""
        return list(self._processes.values())

    # ------------------------------------------------------------------
    # Event queue
    # ------------------------------------------------------------------

    def _push(self, when: int, priority: int, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self._events, (when, priority, self._seq, item))

    def _schedule_step(self, proc: Process, at: int | None = None) -> None:
        """Queue a dispatch of ``proc`` at time ``at`` (default: now)."""
        when = self.clock.now if at is None else at
        self._push(when, proc.priority, ("step", proc, proc.epoch))

    def post(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = 0,
        cancel: dict | None = None,
    ) -> None:
        """Run ``callback`` at absolute virtual time ``when``.

        Used by timeout guards and network links.  Callbacks run at kernel
        priority by default (before same-instant process steps).  If
        ``cancel`` is given and ``cancel["cancelled"]`` is true when the
        event surfaces, it is dropped without advancing the clock.
        """
        if when < self.clock.now:
            raise KernelError(f"cannot post event in the past ({when} < {self.clock.now})")
        self._push(when, priority, ("call", callback, cancel))

    def schedule_resume(self, proc: Process, value: Any = None, cost: int = 0) -> None:
        """Unblock ``proc``, delivering ``value`` from its pending syscall.

        ``cost`` ticks of CPU are consumed first (queued by the process's
        priority on a finite machine).
        """
        if not proc.alive:
            return
        proc.prepare_resume(value)
        proc.state = ProcessState.READY
        proc.blocked_on = None
        proc.waiting_for = None
        proc.epoch += 1
        if cost:
            self._after_cpu(
                cost, proc.priority, lambda: self._schedule_step(proc), proc=proc
            )
        else:
            self._schedule_step(proc)

    def schedule_throw(self, proc: Process, exc: BaseException) -> None:
        """Unblock ``proc`` by raising ``exc`` inside it."""
        if not proc.alive:
            return
        proc.prepare_throw(exc)
        proc.state = ProcessState.READY
        proc.blocked_on = None
        proc.waiting_for = None
        proc.epoch += 1
        self._schedule_step(proc)

    def _after_cpu(
        self,
        ticks: int,
        priority: int,
        action: Callable[[], None],
        proc: Process | None = None,
    ) -> None:
        """Consume ``ticks`` of CPU, then run ``action``.

        ``proc`` (the process the work belongs to) routes the grant to
        its home node's scheduling domain; without one — or on a node
        with no declared CPUs — the kernel-wide default applies.  On an
        unbounded machine the work starts immediately; on a finite
        domain it contends on per-CPU runqueues where strict-class work
        (priority < ``PRIORITY_NORMAL``) is granted first, so a
        high-priority manager's synchronization steps overtake queued
        entry-body work — the paper's receptiveness argument (§1, §3).
        """
        if ticks <= 0:
            action()
            return
        domain = self.cpu_scheduler.domain_of(proc)
        if domain is None:
            _start, end = self.cpus.acquire(self.clock.now, ticks)
            self.post(end, action, priority=priority)
        else:
            domain.submit(proc, priority, ticks, action)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> KernelStats:
        """Dispatch events until quiescence (or ``until`` / ``max_events``).

        Returns the accumulated statistics.  Raises
        :class:`~repro.errors.DeadlockError` if the system quiesces while a
        non-daemon process is still blocked.  The kernel is resumable:
        calling :meth:`run` again continues where the previous call
        stopped.
        """
        if self._running:
            raise KernelError("kernel.run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._events:
                if max_events is not None and dispatched >= max_events:
                    return self.stats
                when, _prio, _seq, item = self._events[0]
                kind = item[0]
                # Drop stale events *before* advancing the clock so that
                # cancelled timers do not inflate the simulation end time.
                if kind == "step":
                    proc, epoch = item[1], item[2]
                    if proc.epoch != epoch or not proc.alive:
                        heapq.heappop(self._events)
                        continue
                else:  # "call"
                    cancel = item[2]
                    if cancel is not None and cancel.get("cancelled"):
                        heapq.heappop(self._events)
                        continue
                if until is not None and when > until:
                    self.clock.advance_to(until)
                    return self.stats
                heapq.heappop(self._events)
                self.clock.advance_to(when)
                dispatched += 1
                if kind == "step":
                    self._step_process(item[1])
                else:
                    item[1]()
        finally:
            self._running = False
        # A bounded run (until/max_events) may legitimately drain the
        # queue while callers intend to inject more work afterwards; only
        # an unbounded run can conclude deadlock.
        if until is None and max_events is None:
            self._check_quiescence()
        return self.stats

    def run_process(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        priority: int = PRIORITY_NORMAL,
        until: int | None = None,
        **kwargs: Any,
    ) -> Any:
        """Convenience: spawn ``fn``, run to quiescence, return its result."""
        proc = self.spawn(fn, *args, name=name, priority=priority, **kwargs)
        self.run(until=until)
        if proc.state == ProcessState.FAILED and proc.exception is not None:
            raise proc.exception
        if proc.alive:
            raise KernelError(
                f"run_process: {proc.name!r} did not finish "
                f"(state={proc.state.value}, blocked_on={proc.blocked_on!r})"
            )
        return proc.result

    def _check_quiescence(self) -> None:
        blocked = [
            p
            for p in self._processes.values()
            if p.alive and not p.daemon and p.state == ProcessState.BLOCKED
        ]
        if blocked:
            from .waitgraph import build_wait_graph

            snapshot = build_wait_graph(self)
            message = (
                "deadlock: no events pending but these processes are blocked:\n"
                + format_blocked(blocked)
            )
            cycle_text = snapshot.describe_cycles()
            if cycle_text:
                message += "\n" + cycle_text
            raise DeadlockError(message, blocked=blocked, wait_for=snapshot)

    # ------------------------------------------------------------------
    # Process stepping and syscall dispatch
    # ------------------------------------------------------------------

    def _step_process(self, proc: Process) -> None:
        if self._last_stepped is not proc:
            self.stats.context_switches += 1
            switch_cost = self.costs.context_switch
        else:
            switch_cost = 0
        self._last_stepped = proc
        proc.state = ProcessState.RUNNING
        self.stats.resumptions += 1
        try:
            finished, payload = proc.step()
        except BaseException as exc:
            self._on_exit(proc)
            if proc.exit_watchers:
                for watcher in list(proc.exit_watchers):
                    watcher(proc)
                return
            raise
        if finished:
            self._on_exit(proc)
            for watcher in list(proc.exit_watchers):
                watcher(proc)
            return
        self._dispatch_syscall(proc, payload, base_cost=switch_cost)

    def _on_exit(self, proc: Process) -> None:
        proc.finished_at = self.clock.now
        self.stats.exits += 1
        self.trace.record(
            self.clock.now, "exit", proc.name, state=proc.state.value
        )

    def _dispatch_syscall(self, proc: Process, syscall: Any, base_cost: int = 0) -> None:
        """Interpret one syscall yielded by ``proc``.

        ``base_cost`` (context-switch charge) is folded into the cost of
        whatever the syscall does.
        """
        cost = base_cost + self.costs.dispatch
        if isinstance(syscall, Spawn):
            child = self.spawn(
                syscall.fn,
                *syscall.args,
                name=syscall.name,
                priority=syscall.priority,
                lightweight=syscall.lightweight,
                charge_to=proc,
                **syscall.kwargs,
            )
            self.schedule_resume(proc, child, cost=cost)
        elif isinstance(syscall, Join):
            self._do_join(proc, syscall.process, cost)
        elif isinstance(syscall, Delay):
            if syscall.ticks < 0:
                self.schedule_throw(proc, KernelError("Delay ticks must be >= 0"))
                return
            proc.state = ProcessState.BLOCKED
            proc.blocked_on = f"delay({syscall.ticks})"
            proc.epoch += 1
            epoch = proc.epoch
            when = self.clock.now + syscall.ticks + cost

            def wake() -> None:
                if proc.alive and proc.epoch == epoch:
                    proc.epoch += 1
                    proc.state = ProcessState.READY
                    proc.blocked_on = None
                    proc.waiting_for = None
                    proc.prepare_resume(None)
                    self._schedule_step(proc)

            self.post(when, wake, priority=proc.priority)
        elif isinstance(syscall, Charge):
            if syscall.ticks < 0:
                self.schedule_throw(proc, KernelError("Charge ticks must be >= 0"))
                return
            ticks = syscall.ticks
            if self.faults is not None:
                # Slow-CPU degradation: work on a degraded node dilates.
                ticks = self.faults.scale_work(proc, ticks)
            self.stats.work_ticks += ticks
            self.schedule_resume(proc, None, cost=cost + ticks)
        elif isinstance(syscall, Select):
            self._do_select(proc, syscall, cost)
        elif isinstance(syscall, Par):
            self._do_par(proc, syscall, cost)
        elif isinstance(syscall, Yield):
            self.schedule_resume(proc, None, cost=cost)
        elif isinstance(syscall, Now):
            self.schedule_resume(proc, self.clock.now, cost=cost)
        elif isinstance(syscall, Self):
            self.schedule_resume(proc, proc, cost=cost)
        elif isinstance(syscall, Kill):
            was_alive = self.kill_process(syscall.process)
            self.schedule_resume(proc, was_alive, cost=cost)
        elif isinstance(syscall, SetPriority):
            target = syscall.process or proc
            target.priority = syscall.priority
            self.schedule_resume(proc, None, cost=cost)
        elif hasattr(syscall, "handle"):
            # Extension point: channels, entry calls, manager primitives.
            syscall.handle(self, proc, cost)
        else:
            self.schedule_throw(
                proc,
                ProcessError(
                    f"{proc.name!r} yielded {syscall!r}, which is not a syscall"
                ),
            )

    def kill_process(self, target: Process) -> bool:
        """Terminate ``target`` immediately (the ``Kill`` syscall's core).

        Also the primitive the fault injector uses to crash every process
        on a node.  Returns True if the target was alive.
        """
        if not target.alive:
            return False
        self._cancel_pending_select(target)
        target.kill()
        self._on_exit(target)
        for watcher in list(target.exit_watchers):
            watcher(target)
        return True

    # ------------------------------------------------------------------
    # Join / Par
    # ------------------------------------------------------------------

    def _do_join(self, proc: Process, target: Process, cost: int) -> None:
        if target.state == ProcessState.DONE:
            self.schedule_resume(proc, target.result, cost=cost)
            return
        if target.state == ProcessState.FAILED:
            assert target.exception is not None
            self.schedule_throw(proc, target.exception)
            return
        if target.state == ProcessState.KILLED:
            self.schedule_throw(
                proc, ProcessError(f"join: {target.name!r} was killed")
            )
            return

        proc.state = ProcessState.BLOCKED
        proc.blocked_on = f"join({target.name})"
        proc.waiting_for = ("join", target)

        def on_exit(dead: Process) -> None:
            if dead.state == ProcessState.FAILED and dead.exception is not None:
                self.schedule_throw(proc, dead.exception)
            elif dead.state == ProcessState.KILLED:
                self.schedule_throw(
                    proc, ProcessError(f"join: {dead.name!r} was killed")
                )
            else:
                self.schedule_resume(proc, dead.result)

        target.exit_watchers.append(on_exit)

    def _do_par(self, proc: Process, par: Par, cost: int) -> None:
        """§2.1.1 ``par``: run all thunks, wait for all, return results."""
        if not par.thunks:
            self.schedule_resume(proc, [], cost=cost)
            return
        results: list[Any] = [None] * len(par.thunks)
        remaining = {"count": len(par.thunks), "failed": False}
        children: list[Process] = []
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = f"par({len(par.thunks)})"
        proc.waiting_for = ("par", children)

        def make_watcher(index: int) -> Callable[[Process], None]:
            def on_exit(child: Process) -> None:
                if remaining["failed"]:
                    return
                if child.state == ProcessState.FAILED and child.exception is not None:
                    remaining["failed"] = True
                    self.schedule_throw(proc, child.exception)
                    return
                results[index] = child.result
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    self.schedule_resume(proc, results)

            return on_exit

        for index, thunk in enumerate(par.thunks):
            child = self.spawn(
                thunk,
                name=f"{proc.name}.par[{index}]",
                priority=par.priority,
                charge_to=proc,
            )
            children.append(child)
            child.exit_watchers.append(make_watcher(index))

    # ------------------------------------------------------------------
    # Select machinery
    # ------------------------------------------------------------------

    def _poll_guards(
        self, guards: Iterable[tuple[int, Guard]]
    ) -> list[tuple[int, Guard, Ready]]:
        ready: list[tuple[int, Guard, Ready]] = []
        for index, guard in guards:
            self.stats.guard_polls += 1
            outcome = guard.poll(self)
            if outcome is not None:
                ready.append((index, guard, outcome))
        return ready

    def _choose(
        self, ready: list[tuple[int, Guard, Ready]]
    ) -> tuple[int, Guard, Ready]:
        """Pick among ready guards: smallest ``pri`` first, then policy."""
        keyed = [
            (guard.effective_pri(outcome), order, index, guard, outcome)
            for order, (index, guard, outcome) in enumerate(ready)
        ]
        best_pri = min(k[0] for k in keyed)
        candidates = [k for k in keyed if k[0] == best_pri]
        if self.arbitration == "random" and len(candidates) > 1:
            chosen = self.rng.choice(candidates)
        else:
            chosen = candidates[0]
        return chosen[2], chosen[3], chosen[4]

    def _do_select(self, proc: Process, select: Select, cost: int) -> None:
        self.stats.selects += 1
        if not select.guards and not select.else_:
            self.schedule_throw(
                proc, GuardExhaustedError("select with no guards and no else")
            )
            return
        feasible = [
            (i, g) for i, g in enumerate(select.guards) if g.feasible()
        ]
        ready = self._poll_guards(feasible)
        poll_cost = self.costs.guard_poll * len(feasible)
        if ready:
            index, guard, outcome = self._choose(ready)
            value = guard.commit(self, proc, outcome)
            self.stats.commits += 1
            commit_cost = getattr(guard, "commit_cost", 0)
            result = value if select.unwrap else SelectResult(index, guard, value)
            self.schedule_resume(proc, result, cost=cost + poll_cost + commit_cost)
            return
        if select.else_:
            result = (
                select.else_value
                if select.unwrap
                else SelectResult(-1, None, select.else_value)
            )
            self.schedule_resume(proc, result, cost=cost + poll_cost)
            return
        if not feasible:
            self.schedule_throw(
                proc,
                GuardExhaustedError(
                    f"{proc.name!r}: select has no feasible guard and no else "
                    f"({[g.describe() for g in select.guards]})"
                ),
            )
            return
        # Block: register on every waitable of every feasible guard.
        pending = _PendingSelect(select, feasible)
        pending.poll_count = len(feasible)
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = "select(" + ", ".join(g.describe() for _, g in feasible) + ")"
        proc.waiting_for = ("select", [g for _, g in feasible])
        self._pending_selects[proc.pid] = pending
        for _i, guard in feasible:
            for waitable in guard.waitables():
                waitable.add_waiter(proc)
                pending.registered.append(waitable)
            on_block = getattr(guard, "on_block", None)
            if on_block is not None:
                on_block(self, proc)
        self.trace.record(self.clock.now, "block", proc.name, on=proc.blocked_on)

    def reevaluate_select(self, proc: Process) -> bool:
        """Re-poll the pending select of ``proc`` after a state change.

        Called by :meth:`~repro.kernel.waiting.Waitable.notify`.  Returns
        True if the select fired.
        """
        pending = self._pending_selects.get(proc.pid)
        if pending is None or not proc.alive:
            return False
        ready = self._poll_guards(pending.guards)
        pending.poll_count += len(pending.guards)
        if not ready:
            return False
        index, guard, outcome = self._choose(ready)
        self._cancel_pending_select(proc)
        value = guard.commit(self, proc, outcome)
        self.stats.commits += 1
        wake_cost = self.costs.guard_poll * pending.poll_count
        wake_cost += getattr(guard, "commit_cost", 0)
        result = (
            value if pending.select.unwrap else SelectResult(index, guard, value)
        )
        self.schedule_resume(proc, result, cost=wake_cost)
        self.trace.record(
            self.clock.now, "wake", proc.name, guard=guard.describe()
        )
        return True

    def _cancel_pending_select(self, proc: Process) -> None:
        pending = self._pending_selects.pop(proc.pid, None)
        if pending is None:
            return
        for waitable in pending.registered:
            waitable.remove_waiter(proc)
        for _i, guard in pending.guards:
            on_unblock = getattr(guard, "on_unblock", None)
            if on_unblock is not None:
                on_unblock(self, proc)

    def notify(self, waitable: Waitable) -> None:
        """Tell blocked selectors that ``waitable`` changed state."""
        waitable.notify(self)
