"""Cost model mapping kernel events to virtual-time ticks.

Section 3 of the paper discusses the *costs* that motivate its
implementation alternatives: dynamic process creation is expensive,
lightweight-process switching is cheap, and the manager should run at high
priority so synchronization requests reach it "with minimum delay".  To
reproduce those trade-offs we charge every kernel event an explicit,
configurable number of ticks.  Benchmarks sweep these knobs (e.g. raising
``process_create`` reproduces the §3 argument for preallocated pools).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Tick charges for kernel events.

    All values are non-negative integers.  The defaults are deliberately
    simple (most events cost 1) so that measured counts are easy to reason
    about; benchmarks override individual fields to model specific
    hardware regimes (e.g. a heavyweight-process OS).
    """

    #: Charged each time the scheduler dispatches a different process than
    #: the one that ran last (a context switch).
    context_switch: int = 1
    #: Charged when a process is created (``Spawn``).  §3: "in many
    #: operating systems dynamic process creation is expensive".
    process_create: int = 10
    #: Charged for creating a *lightweight* process (threads in Mach
    #: terminology); must generally be << ``process_create``.
    lwp_create: int = 1
    #: Charged to the sender for an asynchronous ``send``.
    send: int = 1
    #: Charged to the receiver when a ``receive`` completes.
    receive: int = 1
    #: Charged when a manager completes an ``accept`` rendezvous.
    accept: int = 1
    #: Charged when a manager ``start``s an entry body.
    start: int = 1
    #: Charged when a manager completes an ``await``.
    await_: int = 1
    #: Charged when a manager ``finish``es a call (caller resumption).
    finish: int = 1
    #: Charged per guard *polled* during a select evaluation; reproduces
    #: the §3 concern that naive polling of a hidden procedure array
    #: ``P[1..N]`` costs O(N) per iteration.
    guard_poll: int = 0
    #: Charged to a process each time it is resumed, independent of
    #: whether a switch occurred (models dispatch overhead).
    dispatch: int = 0

    def with_(self, **overrides: int) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def validate(self) -> None:
        """Raise ``ValueError`` if any charge is negative."""
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"cost {name!r} must be >= 0, got {value}")


#: A free cost model: nothing costs anything, time advances only via Delay.
FREE = CostModel(
    context_switch=0,
    process_create=0,
    lwp_create=0,
    send=0,
    receive=0,
    accept=0,
    start=0,
    await_=0,
    finish=0,
    guard_poll=0,
    dispatch=0,
)

#: Default cost model used by :class:`~repro.kernel.kernel.Kernel`.
DEFAULT = CostModel()

#: A model in which ordinary process creation is very expensive relative to
#: lightweight processes — the regime §3 argues motivates process pools.
HEAVY_PROCESSES = CostModel(process_create=200, lwp_create=2)
