"""Simulated CPU pool.

The kernel can model either an unbounded number of processors (pure
latency model — simulated work by different processes overlaps freely) or
a finite machine with ``count`` CPUs, where simulated work serializes once
all CPUs are busy.

The finite model is what makes the paper's priority argument observable:
with CPUs contended, a high-priority manager acquires a CPU ahead of entry
bodies that became runnable at the same instant, so entry calls are
accepted "with minimum delay" (§1, §3).  Benchmark E7 sweeps this.

Acquisition is non-preemptive.  Ordering among processes that contend at
the same virtual instant is provided by the kernel's event queue, which
dispatches by (time, priority, fifo); the pool itself just tracks
availability times.
"""

from __future__ import annotations

import heapq


class CpuPool:
    """Tracks the availability times of a fixed set of CPUs."""

    def __init__(self, count: int | None) -> None:
        if count is not None and count < 1:
            raise ValueError(f"cpu count must be >= 1 or None, got {count}")
        self.count = count
        # Min-heap of times at which each CPU becomes free.
        self._free_at: list[int] = [0] * count if count else []
        if count:
            heapq.heapify(self._free_at)
        #: Total busy ticks accumulated (for utilization reporting).
        self.busy_ticks = 0

    @property
    def infinite(self) -> bool:
        return self.count is None

    def acquire(self, now: int, duration: int) -> tuple[int, int]:
        """Occupy a CPU for ``duration`` ticks starting no earlier than ``now``.

        Returns ``(start, end)``.  With an infinite pool the work always
        starts immediately.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        self.busy_ticks += duration
        if self.count is None:
            return now, now + duration
        free_at = heapq.heappop(self._free_at)
        start = max(now, free_at)
        end = start + duration
        heapq.heappush(self._free_at, end)
        return start, end

    def utilization(self, elapsed: int) -> float:
        """Fraction of CPU capacity used over ``elapsed`` ticks."""
        if elapsed <= 0 or self.count is None:
            return 0.0
        return self.busy_ticks / (elapsed * self.count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuPool(count={self.count}, busy={self.busy_ticks})"


class PriorityCpuScheduler:
    """Priority-queued CPU grants for a finite machine.

    Unlike :class:`CpuPool` (which reserves time slots in request order),
    requests that arrive while all CPUs are busy wait in a priority queue
    and are granted CPUs highest-priority-first when one frees.  This is
    what makes the paper's recommendation observable: a high-priority
    manager's (short) synchronization steps jump ahead of queued entry-body
    work, so the object stays receptive (§1, §3).  Non-preemptive: running
    work is never interrupted.
    """

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"cpu count must be >= 1, got {count}")
        self.count = count
        self._free = count
        # (priority, seq, duration, action)
        self._waiting: list[tuple[int, int, int, object]] = []
        self._seq = 0
        self.busy_ticks = 0
        self.peak_queue = 0

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def submit(self, kernel, priority: int, duration: int, action) -> None:
        """Run ``duration`` ticks of work, then call ``action()``.

        ``action`` fires at the virtual instant the work completes.
        """
        if duration <= 0:
            action()
            return
        if self._free > 0:
            self._start(kernel, duration, action)
        else:
            self._seq += 1
            heapq.heappush(self._waiting, (priority, self._seq, duration, action))
            self.peak_queue = max(self.peak_queue, len(self._waiting))

    def _start(self, kernel, duration: int, action) -> None:
        self._free -= 1
        self.busy_ticks += duration
        end = kernel.clock.now + duration

        def finish() -> None:
            self._free += 1
            if self._waiting:
                _prio, _seq, next_duration, next_action = heapq.heappop(self._waiting)
                self._start(kernel, next_duration, next_action)
            action()

        kernel.post(end, finish)

    def utilization(self, elapsed: int) -> float:
        """Fraction of CPU capacity used over ``elapsed`` ticks."""
        if elapsed <= 0:
            return 0.0
        return self.busy_ticks / (elapsed * self.count)
