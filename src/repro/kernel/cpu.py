"""Simulated CPU pool (the unbounded-machine latency model).

The kernel can model either an unbounded number of processors (pure
latency model — simulated work by different processes overlaps freely) or
a finite machine.  The unbounded case is handled here by time
reservation; finite machines are scheduled by the SMP virtual machine in
:mod:`repro.kernel.sched` (per-CPU runqueues, scheduling classes,
node-local domains), which replaced the old single priority-queue grant
scheduler.

Acquisition is non-preemptive.  Ordering among processes that contend at
the same virtual instant is provided by the kernel's event queue, which
dispatches by (time, priority, fifo); the pool itself just tracks
availability times.
"""

from __future__ import annotations

import heapq


class CpuPool:
    """Tracks the availability times of a fixed set of CPUs."""

    __slots__ = ("count", "_free_at", "busy_ticks")

    def __init__(self, count: int | None) -> None:
        if count is not None and count < 1:
            raise ValueError(f"cpu count must be >= 1 or None, got {count}")
        self.count = count
        # Min-heap of times at which each CPU becomes free.
        self._free_at: list[int] = [0] * count if count else []
        if count:
            heapq.heapify(self._free_at)
        #: Total busy ticks accumulated (for utilization reporting).
        self.busy_ticks = 0

    @property
    def infinite(self) -> bool:
        return self.count is None

    def acquire(self, now: int, duration: int) -> tuple[int, int]:
        """Occupy a CPU for ``duration`` ticks starting no earlier than ``now``.

        Returns ``(start, end)``.  With an infinite pool the work always
        starts immediately.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        self.busy_ticks += duration
        if self.count is None:
            return now, now + duration
        free_at = heapq.heappop(self._free_at)
        start = max(now, free_at)
        end = start + duration
        heapq.heappush(self._free_at, end)
        return start, end

    def utilization(self, elapsed: int) -> float:
        """CPU usage over ``elapsed`` ticks.

        For a finite pool this is the fraction of capacity used (0..1).
        An infinite pool has no capacity to divide by, so the value is
        the *mean parallelism* instead — busy ticks per elapsed tick
        (how many CPUs were occupied on average), rather than a
        silently-lying 0.0.
        """
        if elapsed <= 0:
            return 0.0
        if self.count is None:
            return self.busy_ticks / elapsed
        return self.busy_ticks / (elapsed * self.count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuPool(count={self.count}, busy={self.busy_ticks})"
