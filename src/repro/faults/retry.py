"""Recovery combinators: retry a failed remote call with backoff.

Use from inside any process generator::

    result = yield from retry(
        lambda: store.get("k", timeout=60),
        ExponentialBackoff(base=20, max_attempts=5, jitter=10),
    )

Each attempt issues a *fresh* call (the factory is re-invoked), so timed
calls re-arm their deadline.  Only :class:`~repro.errors.RemoteCallError`
— timeouts, crash detection, partitions — triggers a retry; programming
errors propagate immediately.  Backoff delays are deterministic: jitter
draws from a ``random.Random(seed)`` owned by the combinator, so the same
seed replays the same schedule.

Semantics are at-least-once: a retry after a *response* loss re-executes
a body that already ran.  Entries retried this way should be idempotent
(or deduplicate by request id), exactly as with real RPC systems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import RemoteCallError
from ..kernel.syscalls import Delay, Self


class RetryPolicy:
    """Base class: a policy yields the delay before each re-attempt."""

    #: Total attempts (the first call plus the retries).
    max_attempts: int = 1

    def delays(self, rng: random.Random) -> Iterator[int]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FixedBackoff(RetryPolicy):
    """Wait a constant ``delay`` between attempts."""

    delay: int = 10
    max_attempts: int = 3

    def delays(self, rng: random.Random) -> Iterator[int]:
        for _ in range(self.max_attempts - 1):
            yield self.delay

    def describe(self) -> str:
        return f"fixed({self.delay}x{self.max_attempts})"


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """Delays grow by ``factor`` each attempt, plus uniform jitter.

    The k-th backoff is ``min(base * factor**k, max_delay) + U[0, jitter]``
    (jitter drawn from the combinator's seeded RNG — deterministic, but
    decorrelating concurrent retriers that use different seeds).
    """

    base: int = 10
    factor: float = 2.0
    max_delay: int | None = None
    max_attempts: int = 5
    jitter: int = 0

    def delays(self, rng: random.Random) -> Iterator[int]:
        current = float(self.base)
        for _ in range(self.max_attempts - 1):
            delay = int(current)
            if self.max_delay is not None:
                delay = min(delay, self.max_delay)
            if self.jitter:
                delay += rng.randint(0, self.jitter)
            yield delay
            current *= self.factor

    def describe(self) -> str:
        return f"expo({self.base}*{self.factor}^k x{self.max_attempts})"


def retry(call_factory: Callable[[], Any], policy: RetryPolicy, seed: int = 0):
    """``yield from`` helper: run the call, retrying per ``policy``.

    ``call_factory`` builds a fresh :class:`~repro.core.primitives.EntryCall`
    per attempt (give the call a ``timeout`` so lost requests are
    detected).  Returns the first successful result; raises the last
    :class:`~repro.errors.RemoteCallError` when attempts are exhausted.
    """
    rng = random.Random(seed)
    schedule = policy.delays(rng)
    proc = yield Self()
    attempt = 1
    while True:
        call = call_factory()
        kernel = call.obj.kernel
        try:
            result = yield call
        except RemoteCallError as exc:
            try:
                backoff = next(schedule)
            except StopIteration:
                kernel.metrics.counter(
                    "retry.exhausted", "Retry loops that ran out of attempts",
                    legacy="retry_exhausted",
                ).inc()
                raise exc from None
            kernel.metrics.counter(
                "retry.attempts", "Re-attempts after RemoteCallError",
                legacy="retries",
            ).inc()
            kernel.trace.record(
                kernel.clock.now, "retry", proc.name,
                entry=call.proc_name, obj=call.obj.alps_name,
                attempt=attempt, backoff=backoff,
            )
            attempt += 1
            if backoff:
                yield Delay(backoff)
            continue
        if attempt > 1:
            kernel.metrics.counter(
                "retry.successes", "Calls that succeeded after retrying",
                legacy="retried_successes",
            ).inc()
        return result
