"""Recovery combinators: retry with backoff, retry budgets, circuit breaking.

Use from inside any process generator::

    result = yield from retry(
        lambda: store.get("k", timeout=60),
        ExponentialBackoff(base=20, max_attempts=5, jitter=10),
    )

Each attempt issues a *fresh* call (the factory is re-invoked), so timed
calls re-arm their deadline.  Only :class:`~repro.errors.RemoteCallError`
— timeouts, crash detection, partitions — triggers a retry; programming
errors propagate immediately, and :class:`~repro.errors.DeadlineExceeded`
is terminal (the end-to-end budget is spent, re-attempting cannot help).
Backoff delays are deterministic: jitter draws from a
``random.Random(seed)`` owned by the combinator, so the same seed replays
the same schedule.

Unbounded-in-aggregate retries are the raw material of retry storms: a
crash past the knee turns every timeout into fresh load.  Two guards cap
the aggregate (both pure functions of virtual time, replayable under
fixed seeds):

* a :class:`RetryBudget` — a token bucket shared per (caller, object)
  (:func:`shared_budget`) that earns a fraction of a token per first
  attempt and spends a whole token per retry, converting excess retries
  into an immediate :class:`~repro.errors.AdmissionError`;
* a :class:`CircuitBreaker` — a closed/open/half-open machine driven by
  the failure rate over a sliding virtual-time window; while open, every
  attempt is refused up front (again :class:`~repro.errors.AdmissionError`),
  and a single half-open probe decides recovery.

Semantics are at-least-once: a retry after a *response* loss re-executes
a body that already ran.  Entries retried this way should be idempotent
(or deduplicate by request id), exactly as with real RPC systems.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import AdmissionError, DeadlineExceeded, RemoteCallError
from ..kernel.syscalls import Delay, Self

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class RetryPolicy:
    """Base class: a policy yields the delay before each re-attempt."""

    #: Total attempts (the first call plus the retries); ``None`` means
    #: unbounded — pair it with a :class:`RetryBudget` or the linter's
    #: ALP114 check will (rightly) complain.
    max_attempts: int | None = 1

    def delays(self, rng: random.Random) -> Iterator[int]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


def _attempt_range(max_attempts: int | None) -> Iterator[int]:
    """Yield once per allowed *re*-attempt (forever when unbounded)."""
    if max_attempts is None:
        while True:
            yield 0
    else:
        yield from range(max_attempts - 1)


@dataclass(frozen=True)
class FixedBackoff(RetryPolicy):
    """Wait a constant ``delay`` between attempts."""

    delay: int = 10
    max_attempts: int | None = 3

    def delays(self, rng: random.Random) -> Iterator[int]:
        for _ in _attempt_range(self.max_attempts):
            yield self.delay

    def describe(self) -> str:
        n = "inf" if self.max_attempts is None else self.max_attempts
        return f"fixed({self.delay}x{n})"


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """Delays grow by ``factor`` each attempt, plus uniform jitter.

    The k-th backoff is ``min(base * factor**k, max_delay) + U[0, jitter]``
    (jitter drawn from the combinator's seeded RNG — deterministic, but
    decorrelating concurrent retriers that use different seeds).
    """

    base: int = 10
    factor: float = 2.0
    max_delay: int | None = None
    max_attempts: int | None = 5
    jitter: int = 0

    def delays(self, rng: random.Random) -> Iterator[int]:
        current = float(self.base)
        for _ in _attempt_range(self.max_attempts):
            delay = int(current)
            if self.max_delay is not None:
                delay = min(delay, self.max_delay)
            if self.jitter:
                delay += rng.randint(0, self.jitter)
            yield delay
            current *= self.factor

    def describe(self) -> str:
        n = "inf" if self.max_attempts is None else self.max_attempts
        return f"expo({self.base}*{self.factor}^k x{n})"


class RetryBudget:
    """A token bucket capping *aggregate* retries across many callers.

    First attempts earn ``fill_ratio`` tokens (clamped at ``capacity``);
    each retry spends one whole token.  In steady state retries are thus
    at most ``fill_ratio`` of offered requests — enough to smooth over
    sporadic failures, nowhere near enough to double the load during an
    outage.  When the bucket is empty, :func:`retry` raises
    :class:`~repro.errors.AdmissionError` (reason ``"retry-budget"``)
    instead of re-attempting.

    Purely arithmetic on deterministic event order: no clock reads, no
    RNG, so two same-seed runs drain and refill identically.  Share one
    instance per (caller, object) pair — :func:`shared_budget` keeps a
    registry on the kernel.
    """

    def __init__(
        self, capacity: float = 10.0, fill_ratio: float = 0.1, name: str = "budget"
    ) -> None:
        if capacity < 1:
            raise ValueError(f"budget capacity must be >= 1, got {capacity}")
        if not 0 < fill_ratio <= 1:
            raise ValueError(f"fill_ratio must be in (0, 1], got {fill_ratio}")
        self.capacity = float(capacity)
        self.fill_ratio = float(fill_ratio)
        self.name = name
        #: Current token balance; starts full so cold-start failures can
        #: still be retried.
        self.tokens = float(capacity)
        #: Lifetime counters (deterministic; asserted in tests/benches).
        self.deposits = 0
        self.withdrawals = 0
        self.denials = 0

    def deposit(self) -> None:
        """A first attempt was issued: earn ``fill_ratio`` tokens."""
        self.tokens = min(self.capacity, self.tokens + self.fill_ratio)
        self.deposits += 1

    def try_withdraw(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.withdrawals += 1
            return True
        self.denials += 1
        return False

    def describe(self) -> str:
        return (
            f"budget({self.name}: {self.tokens:.1f}/{self.capacity:.0f} "
            f"@{self.fill_ratio})"
        )


def shared_budget(
    kernel: "Kernel",
    caller: str,
    obj: Any,
    capacity: float = 10.0,
    fill_ratio: float = 0.1,
) -> RetryBudget:
    """The :class:`RetryBudget` shared per (caller, object) pair.

    ``caller`` names the logical client population (a process name, an
    engine name — whatever granularity the budget should pool over);
    ``obj`` is the target :class:`~repro.core.AlpsObject` (or its name).
    Budgets live on the kernel, so every retry loop in the same run that
    names the same pair drains the same bucket.
    """
    key = (caller, getattr(obj, "alps_name", str(obj)))
    registry = getattr(kernel, "_retry_budgets", None)
    if registry is None:
        registry = kernel._retry_budgets = {}
    budget = registry.get(key)
    if budget is None:
        budget = registry[key] = RetryBudget(
            capacity, fill_ratio, name=f"{key[0]}->{key[1]}"
        )
    return budget


class CircuitBreaker:
    """Deterministic closed → open → half-open circuit breaker.

    Driven entirely by virtual time and the observed outcome sequence —
    no wall clock, no RNG — so same-seed runs produce identical
    transition logs (``transitions`` is a list of
    ``(tick, from_state, to_state)``, asserted replay-identical in the
    E15 bench).

    * **closed** — outcomes are folded into a sliding ``window``-tick
      record; once at least ``min_calls`` are in the window and the
      failure fraction reaches ``failure_threshold``, the breaker opens.
    * **open** — :meth:`allow` refuses everything until ``cooldown``
      ticks have passed, then moves to half-open.
    * **half-open** — exactly one probe attempt is allowed through; its
      success closes the breaker (window cleared), its failure re-opens
      it for another full cooldown.  If the probe's *caller* dies before
      reporting (e.g. a crash races the probe), the next ``allow`` after
      the probe's implicit expiry would deadlock the breaker half-open;
      :meth:`record` is therefore the only transition driver and probes
      must always report — :func:`retry` guarantees it with try/finally.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        kernel: "Kernel",
        window: int = 200,
        min_calls: int = 10,
        failure_threshold: float = 0.5,
        cooldown: int = 400,
        name: str = "breaker",
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        if not 0 < failure_threshold <= 1:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.kernel = kernel
        self.window = window
        self.min_calls = min_calls
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self.state = self.CLOSED
        #: (tick, ok) outcomes inside the sliding window.
        self._events: deque[tuple[int, bool]] = deque()
        self._opened_at: int | None = None
        self._probe_inflight = False
        #: Transition log: (tick, from_state, to_state), append-only.
        self.transitions: list[tuple[int, str, str]] = []

    def _transition(self, to: str) -> None:
        now = self.kernel.clock.now
        self.transitions.append((now, self.state, to))
        self.kernel.trace.record(
            now, "breaker", self.name, from_state=self.state, to_state=to
        )
        self.kernel.metrics.counter(
            "breaker.transitions", "Circuit-breaker state transitions"
        ).inc()
        self.state = to

    def _trim(self, now: int) -> None:
        while self._events and self._events[0][0] <= now - self.window:
            self._events.popleft()

    def allow(self) -> bool:
        """May an attempt be issued now?  (May move open → half-open.)"""
        now = self.kernel.clock.now
        if self.state == self.OPEN:
            if self._opened_at is not None and now - self._opened_at >= self.cooldown:
                self._transition(self.HALF_OPEN)
                self._probe_inflight = False
            else:
                return False
        if self.state == self.HALF_OPEN:
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True
        return True

    def record(self, ok: bool) -> None:
        """Fold one attempt outcome in (the only transition driver)."""
        now = self.kernel.clock.now
        if self.state == self.HALF_OPEN:
            self._probe_inflight = False
            if ok:
                self._events.clear()
                self._transition(self.CLOSED)
            else:
                self._opened_at = now
                self._transition(self.OPEN)
            return
        self._events.append((now, ok))
        self._trim(now)
        if self.state == self.CLOSED:
            total = len(self._events)
            failures = sum(1 for _, was_ok in self._events if not was_ok)
            if (
                total >= self.min_calls
                and failures / total >= self.failure_threshold
            ):
                self._opened_at = now
                self._transition(self.OPEN)

    def describe(self) -> str:
        return f"breaker({self.name}: {self.state})"


def retry(
    call_factory: Callable[[], Any],
    policy: RetryPolicy,
    seed: Any = 0,
    budget: RetryBudget | None = None,
    breaker: CircuitBreaker | None = None,
):
    """``yield from`` helper: run the call, retrying per ``policy``.

    ``call_factory`` builds a fresh :class:`~repro.core.primitives.EntryCall`
    per attempt (give the call a ``timeout`` so lost requests are
    detected).  Returns the first successful result; raises the last
    :class:`~repro.errors.RemoteCallError` when attempts are exhausted.

    ``budget`` caps aggregate retries: when the shared token bucket is
    dry, the loop raises :class:`~repro.errors.AdmissionError` (reason
    ``"retry-budget"``) instead of re-attempting.  ``breaker`` refuses
    attempts up front while its circuit is open (reason
    ``"breaker-open"``).  :class:`~repro.errors.DeadlineExceeded` is
    never retried: the end-to-end budget is spent.
    """
    rng = random.Random(seed)
    schedule = policy.delays(rng)
    proc = yield Self()
    attempt = 1
    while True:
        call = call_factory()
        kernel = call.obj.kernel
        if breaker is not None and not breaker.allow():
            kernel.metrics.counter(
                "breaker.refused", "Attempts refused by an open circuit breaker"
            ).inc()
            raise AdmissionError(
                f"circuit open for {call.obj.alps_name}.{call.proc_name} "
                f"({breaker.describe()})",
                entry=call.proc_name,
                obj=call.obj.alps_name,
                reason="breaker-open",
            )
        if budget is not None and attempt == 1:
            budget.deposit()
        try:
            result = yield call
        except DeadlineExceeded:
            if breaker is not None:
                breaker.record(ok=False)
            raise
        except RemoteCallError as exc:
            if breaker is not None:
                breaker.record(ok=False)
            try:
                backoff = next(schedule)
            except StopIteration:
                kernel.metrics.counter(
                    "retry.exhausted", "Retry loops that ran out of attempts",
                    legacy="retry_exhausted",
                ).inc()
                raise exc from None
            if budget is not None and not budget.try_withdraw():
                kernel.metrics.counter(
                    "retry.budget_denied",
                    "Retries refused because the shared budget was dry",
                ).inc()
                raise AdmissionError(
                    f"retry budget dry for {call.obj.alps_name}."
                    f"{call.proc_name} ({budget.describe()})",
                    entry=call.proc_name,
                    obj=call.obj.alps_name,
                    reason="retry-budget",
                ) from exc
            kernel.metrics.counter(
                "retry.attempts", "Re-attempts after RemoteCallError",
                legacy="retries",
            ).inc()
            kernel.trace.record(
                kernel.clock.now, "retry", proc.name,
                entry=call.proc_name, obj=call.obj.alps_name,
                attempt=attempt, backoff=backoff,
            )
            if kernel.obs.enabled and budget is not None:
                # Sink-only marker: remaining retry budget at this retry.
                kernel.obs.instant(
                    "retry.budget",
                    process=proc.name,
                    entry=call.proc_name,
                    obj=call.obj.alps_name,
                    tokens=round(budget.tokens, 3),
                )
            attempt += 1
            if backoff:
                yield Delay(backoff)
            continue
        if breaker is not None:
            breaker.record(ok=True)
        if attempt > 1:
            kernel.metrics.counter(
                "retry.successes", "Calls that succeeded after retrying",
                legacy="retried_successes",
            ).inc()
        return result
