"""The fault-injection engine: a :class:`FaultPlan` made live.

:func:`install` hooks a :class:`FaultRuntime` into the kernel and the
network.  From then on the runtime owns every cross-node interaction:

* **entry calls** — ``EntryCall.handle`` delegates to :meth:`route_call`,
  which applies crash detection, partitions, request loss and jitter; the
  response leg passes through :meth:`drop_response` from
  ``EntryRuntime.resume_caller``;
* **messages** — ``NetSend`` asks :meth:`message_fates` for the delivery
  schedule of each remote message (zero, one or two deliveries);
* **work** — ``Charge`` asks :meth:`scale_work` to dilate ticks on
  degraded nodes;
* **routing** — the network's Dijkstra cache keys on :attr:`epoch`, which
  bumps on every topology transition, and routes over
  :meth:`filter_links`.

Determinism: all transitions are scheduled through ``kernel.post`` at
plan-specified virtual ticks, and every probabilistic decision draws from
one ``random.Random(plan.seed)`` in event order — so the same seed and
plan reproduce the same faults, and (on the deterministic kernel) the
same interleaving.

Crash semantics: every process homed on a crashed node is killed.  Calls
interrupted mid-flight are *captured*; for an object registered with
:meth:`supervise` they are held for a Supervisor to :meth:`requeue` after
restart, otherwise each caller is failed with
:class:`~repro.errors.RemoteCallError` once the failure detector's
``detection_delay`` elapses.  A caller therefore always unblocks — with
results, an error, or a re-queued retry — except when a *request* is
silently lost and the call carries no ``timeout``; the kernel then
reports the hang honestly as a ``DeadlockError`` at quiescence.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..core.calls import Call, CallState
from ..errors import NetworkError, RemoteCallError
from ..kernel.syscalls import Select
from ..kernel.waiting import Guard, Ready, Waitable
from .plan import FaultPlan, NodeCrash, PartitionFault

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process
    from ..net.network import Network, Node


class FaultEventGuard(Guard):
    """Ready when the fault runtime logged transitions beyond ``seen``.

    Used by supervisors to sleep until a crash or restart happens instead
    of polling (which would keep the event queue non-empty forever).
    """

    def __init__(self, faults: "FaultRuntime", seen: int) -> None:
        self.faults = faults
        self.seen = seen

    def poll(self, kernel: "Kernel") -> Ready | None:
        count = self.faults.event_count
        return Ready(count) if count > self.seen else None

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> int:
        return ready.value

    def waitables(self) -> Iterable[Waitable]:
        return (self.faults.events,)

    def describe(self) -> str:
        return f"fault-events(>{self.seen})"


class FaultRuntime:
    """Live fault state; installed as ``kernel.faults`` / ``network.faults``."""

    def __init__(self, kernel: "Kernel", network: "Network", plan: FaultPlan) -> None:
        self.kernel = kernel
        self.network = network
        self.plan = plan
        #: One RNG for every probabilistic fate, drawn in event order.
        self.rng = random.Random(plan.seed)
        #: Bumped on every topology transition; the network's route cache
        #: keys on it.
        self.epoch = 0
        #: Monotone count of crash/restart/link/partition transitions, and
        #: the waitable supervisors block on to observe them.
        self.event_count = 0
        self.events = Waitable()
        self._down_nodes: set[str] = set()
        self._down_links: set[tuple[str, str]] = set()
        self._partition_cuts: dict[PartitionFault, frozenset] = {}
        #: Remote calls issued to placed objects, scanned on crash to
        #: capture in-flight work (pruned lazily).
        self._inflight: list[Call] = []
        #: Objects whose interrupted calls a Supervisor will re-queue.
        self._supervised: set[Any] = set()
        self._interrupted: dict[Any, list[Call]] = {}
        # Typed metrics (legacy keys keep stats.custom/snapshot stable).
        m = kernel.metrics
        self.c_node_crashes = m.counter(
            "faults.node_crashes", "Node crash transitions", legacy="node_crashes")
        self.c_node_restarts = m.counter(
            "faults.node_restarts", "Node restart transitions", legacy="node_restarts")
        self.c_calls_to_down = m.counter(
            "faults.calls_to_down_target", "Calls issued to a crashed object/node",
            legacy="calls_to_down_target")
        self.c_dropped_requests = m.counter(
            "faults.dropped_requests", "Entry-call request legs lost",
            legacy="dropped_requests")
        self.c_dropped_responses = m.counter(
            "faults.dropped_responses", "Entry-call response legs lost",
            legacy="dropped_responses")
        self.c_failed_calls = m.counter(
            "faults.failed_calls", "Calls failed with RemoteCallError",
            legacy="failed_calls")
        self.c_dropped_messages = m.counter(
            "faults.dropped_messages", "NetSend messages lost",
            legacy="dropped_messages")
        self.c_duplicated_messages = m.counter(
            "faults.duplicated_messages", "NetSend messages delivered twice",
            legacy="duplicated_messages")
        self.c_requeued_calls = m.counter(
            "faults.requeued_calls", "Interrupted calls re-queued after restart",
            legacy="requeued_calls")

    # ------------------------------------------------------------------
    # Scheduling the plan
    # ------------------------------------------------------------------

    def _schedule(self) -> None:
        """Validate node names and post every scripted transition."""
        net = self.network
        for crash in self.plan.crashes:
            net.node(crash.node)
        for link in self.plan.link_faults:
            net.node(link.a), net.node(link.b)
        for part in self.plan.partitions:
            for name in part.group_a + part.group_b:
                net.node(name)
        for slow in self.plan.slow_cpus:
            net.node(slow.node)

        now = self.kernel.clock.now
        post = self.kernel.post
        for crash in self.plan.crashes:
            post(max(now, crash.at), lambda c=crash: self._crash_node(c))
            if crash.restart_at is not None:
                post(max(now, crash.restart_at), lambda c=crash: self._restart_node(c))
        for link in self.plan.link_faults:
            post(max(now, link.at), lambda l=link: self._set_link(l.a, l.b, down=True))
            if link.up_at is not None:
                post(max(now, link.up_at), lambda l=link: self._set_link(l.a, l.b, down=False))
        for part in self.plan.partitions:
            post(max(now, part.at), lambda p=part: self._set_partition(p, active=True))
            if part.heal_at is not None:
                post(max(now, part.heal_at), lambda p=part: self._set_partition(p, active=False))

    def _bump_events(self) -> None:
        self.event_count += 1
        self.kernel.notify(self.events)

    def wait_for_events(self, seen: int) -> Select:
        """A blocking select that fires once transitions exceed ``seen``."""
        select = Select(FaultEventGuard(self, seen))
        select.unwrap = True
        return select

    # ------------------------------------------------------------------
    # Topology state
    # ------------------------------------------------------------------

    def node_up(self, name: str) -> bool:
        return name not in self._down_nodes

    def _cut(self, a: str, b: str) -> bool:
        pair = (a, b) if a <= b else (b, a)
        if pair in self._down_links:
            return True
        return any(pair in cuts for cuts in self._partition_cuts.values())

    def filter_links(self, links: dict[str, dict[str, int]]) -> dict[str, dict[str, int]]:
        """The routable topology: links minus downed nodes/links/cuts."""
        out: dict[str, dict[str, int]] = {}
        for a, nbrs in links.items():
            if a in self._down_nodes:
                out[a] = {}
                continue
            out[a] = {
                b: w
                for b, w in nbrs.items()
                if b not in self._down_nodes and not self._cut(a, b)
            }
        return out

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def _crash_node(self, fault: NodeCrash) -> None:
        name = fault.node
        if name in self._down_nodes:
            return
        kernel = self.kernel
        node = self.network.node(name)
        self._down_nodes.add(name)
        self.epoch += 1
        killed = 0
        for proc in kernel.processes():
            if proc.alive and getattr(proc, "node", None) is node:
                kernel.kill_process(proc)
                killed += 1
        kernel.trace.record(
            kernel.clock.now, "crash", name, killed=killed, restart_at=fault.restart_at
        )
        self.c_node_crashes.inc()
        for obj in list(node.objects.values()):
            if hasattr(obj, "_runtimes"):
                self._crash_object(obj, node)
        self._bump_events()

    def _restart_node(self, fault: NodeCrash) -> None:
        if fault.node not in self._down_nodes:
            return
        self._down_nodes.discard(fault.node)
        self.epoch += 1
        self.kernel.trace.record(self.kernel.clock.now, "restart", fault.node)
        self.c_node_restarts.inc()
        # Placed objects stay crashed until something (a Supervisor, or
        # the test harness) calls obj.restart().
        self._bump_events()

    def _set_link(self, a: str, b: str, down: bool) -> None:
        pair = (a, b) if a <= b else (b, a)
        if down:
            self._down_links.add(pair)
        else:
            self._down_links.discard(pair)
        self.epoch += 1
        self.kernel.trace.record(
            self.kernel.clock.now, "link", f"{pair[0]}--{pair[1]}", down=down
        )
        self._bump_events()

    def _set_partition(self, fault: PartitionFault, active: bool) -> None:
        if active:
            cuts = frozenset(
                (a, b) if a <= b else (b, a)
                for a in fault.group_a
                for b in fault.group_b
            )
            self._partition_cuts[fault] = cuts
        else:
            self._partition_cuts.pop(fault, None)
        self.epoch += 1
        self.kernel.trace.record(
            self.kernel.clock.now,
            "partition",
            self.network.name,
            groups=[list(fault.group_a), list(fault.group_b)],
            healed=not active,
        )
        self._bump_events()

    def _crash_object(self, obj: Any, node: "Node") -> None:
        """Take a placed object down, capturing its interrupted calls."""
        kernel = self.kernel
        obj._crashed = True
        manager = obj.manager_process
        if manager is not None and manager.alive:
            kernel.kill_process(manager)

        records: list[Call] = []
        seen: set[int] = set()

        def capture(call: Call | None) -> None:
            if call is None or call.call_id in seen:
                return
            seen.add(call.call_id)
            if call.body_process is not None and call.body_process.alive:
                kernel.kill_process(call.body_process)
            # Stale in-flight deliveries must not land on the restarted
            # object (the Supervisor owns redelivery).
            call.delivery_epoch += 1
            if call.caller_resumed or not call.caller.alive:
                return
            if getattr(call.caller, "node", None) is node:
                return  # the caller died in the same crash
            call.interrupted = True
            records.append(call)

        for runtime in obj._runtimes.values():
            for call in list(runtime.slots):
                capture(call)
            for call in list(runtime.waiting):
                capture(call)
            runtime.reset()
        for _job, call in list(obj._pool._backlog):
            capture(call)
        obj._pool.reset()
        for call in list(self._inflight):
            if call.obj is obj:
                capture(call)
                self._inflight.remove(call)

        if obj in self._supervised:
            self._interrupted.setdefault(obj, []).extend(records)
        else:
            for call in records:
                self._fail_later(
                    call,
                    f"call to {obj.alps_name}.{call.entry} interrupted by "
                    f"crash of node {node.name}",
                    self.plan.detection_delay,
                )

    # ------------------------------------------------------------------
    # Entry-call routing
    # ------------------------------------------------------------------

    def route_call(self, call: Call, caller: "Process", deliver: Callable[[], None]) -> None:
        """Deliver (or lose, or fail) a freshly issued entry call."""
        kernel = self.kernel
        obj = call.obj
        node = getattr(obj, "node", None)
        src = getattr(caller, "node", None)

        if getattr(obj, "_crashed", False) or (
            node is not None and not self.node_up(node.name)
        ):
            self.c_calls_to_down.inc()
            self._fail_later(
                call,
                f"{obj.alps_name} is down"
                + (f" (node {node.name})" if node is not None else ""),
                self.plan.detection_delay,
            )
            return
        if node is None:
            deliver()  # unplaced objects live outside the failure model
            return
        self._track(call)
        if src is None or src is node:
            deliver()  # co-located: no network between caller and object
            return

        latency = self.network.latency_or_none(src, node)
        now = kernel.clock.now
        if latency is None:
            kernel.trace.record(
                now, "drop", caller.name,
                leg="request", entry=call.entry, obj=obj.alps_name, reason="no route",
            )
            self._fail_later(
                call,
                f"no route from {src.name} to {node.name} for call to "
                f"{obj.alps_name}.{call.entry}",
                self.plan.detection_delay,
            )
            return
        dropped, _dup, jitter = self._fate(src.name, node.name, allow_duplicate=False)
        if dropped:
            self.c_dropped_requests.inc()
            kernel.trace.record(
                now, "drop", caller.name,
                leg="request", entry=call.entry, obj=obj.alps_name, reason="loss",
            )
            return  # the caller recovers through its timeout (and retry)
        call.response_delay = latency
        fire = self._guarded(call, deliver)
        when = now + latency + jitter()
        if call.span is not None:
            if when > now:
                call.span.attrs["request_delay"] = when - now
            call.span.attrs["src_node"] = src.name
            call.span.attrs["dst_node"] = node.name
        if when > now:
            kernel.post(when, fire)
        else:
            fire()

    def _guarded(self, call: Call, deliver: Callable[[], None]) -> Callable[[], None]:
        """Wrap a delivery so crashes between issue and arrival void it."""
        epoch = call.delivery_epoch

        def fire() -> None:
            if call.caller_resumed or call.delivery_epoch != epoch:
                return
            obj = call.obj
            node = getattr(obj, "node", None)
            if getattr(obj, "_crashed", False) or (
                node is not None and not self.node_up(node.name)
            ):
                self.kernel.trace.record(
                    self.kernel.clock.now, "drop", call.caller.name,
                    leg="request", entry=call.entry, obj=obj.alps_name,
                    reason="target down",
                )
                return
            deliver()

        return fire

    def _track(self, call: Call) -> None:
        if len(self._inflight) > 64:
            self._inflight = [
                c
                for c in self._inflight
                if not c.caller_resumed
                and c.state not in (CallState.DONE, CallState.FAILED)
            ]
        self._inflight.append(call)

    def drop_response(self, call: Call) -> bool:
        """Decide the response leg's fate; True means the response is lost.

        Also refreshes ``call.response_delay`` against the current
        topology (a route may have lengthened since the request).
        """
        obj = call.obj
        node = getattr(obj, "node", None)
        dst = getattr(call.caller, "node", None)
        if node is None or dst is None or node is dst:
            return False
        if not self.node_up(dst.name):
            return False  # the caller died with its node; resume is a no-op
        kernel = self.kernel
        latency = self.network.latency_or_none(node, dst)
        if latency is None:
            self.c_dropped_responses.inc()
            kernel.trace.record(
                kernel.clock.now, "drop", call.caller.name,
                leg="response", entry=call.entry, obj=obj.alps_name, reason="no route",
            )
            return True
        dropped, _dup, jitter = self._fate(node.name, dst.name, allow_duplicate=False)
        if dropped:
            self.c_dropped_responses.inc()
            kernel.trace.record(
                kernel.clock.now, "drop", call.caller.name,
                leg="response", entry=call.entry, obj=obj.alps_name, reason="loss",
            )
            return True
        call.response_delay = latency + jitter()
        return False

    def _fail_later(self, call: Call, reason: str, delay: int) -> None:
        kernel = self.kernel
        kernel.post(
            kernel.clock.now + delay,
            lambda: self._fail_call(call, reason),
            priority=call.caller.priority,
        )

    def _fail_call(self, call: Call, reason: str) -> None:
        if call.caller_resumed:
            return
        call.caller_resumed = True
        call.state = CallState.FAILED
        call.finished_at = self.kernel.clock.now
        if call.timeout_cancel is not None:
            call.timeout_cancel["cancelled"] = True
        if call.deadline_cancel is not None:
            call.deadline_cancel["cancelled"] = True
        self.c_failed_calls.inc()
        if self.kernel.obs.enabled:
            self.kernel.obs.complete_call(call, status="failed")
        self.kernel.schedule_throw(
            call.caller,
            RemoteCallError(reason, entry=call.entry, obj=call.obj.alps_name),
        )

    # ------------------------------------------------------------------
    # Message and work fates
    # ------------------------------------------------------------------

    def _fate(self, src: str, dst: str, allow_duplicate: bool):
        """Draw this message's fate from the seeded RNG, in rule order."""
        dropped = False
        duplicated = False
        jitter_bound = 0
        for rule in self.plan.rules_for(src, dst):
            if rule.drop_rate and self.rng.random() < rule.drop_rate:
                dropped = True
            if (
                allow_duplicate
                and rule.duplicate_rate
                and self.rng.random() < rule.duplicate_rate
            ):
                duplicated = True
            jitter_bound = max(jitter_bound, rule.jitter)

        def jitter() -> int:
            return self.rng.randint(0, jitter_bound) if jitter_bound else 0

        return dropped, duplicated, jitter

    def message_fates(
        self, proc: "Process", src: "Node", dst: "Node", size: int = 1
    ) -> list[int]:
        """Delivery delays for one ``NetSend`` message ([] means lost)."""
        kernel = self.kernel

        def drop(reason: str) -> list[int]:
            self.c_dropped_messages.inc()
            kernel.trace.record(
                kernel.clock.now, "drop", proc.name,
                leg="message", src=src.name, dst=dst.name, reason=reason,
            )
            return []

        if not self.node_up(dst.name) or not self.node_up(src.name):
            return drop("node down")
        latency = self.network.latency_or_none(src, dst, size=size)
        if latency is None:
            return drop("no route")
        dropped, duplicated, jitter = self._fate(src.name, dst.name, allow_duplicate=True)
        if dropped:
            return drop("loss")
        fates = [latency + jitter()]
        if duplicated:
            self.c_duplicated_messages.inc()
            fates.append(latency + jitter())
        return fates

    def scale_work(self, proc: "Process", ticks: int) -> int:
        """Dilate ``Charge``d work on a degraded node."""
        if not self.plan.slow_cpus:
            return ticks
        node = getattr(proc, "node", None)
        if node is None:
            return ticks
        now = self.kernel.clock.now
        factor = 1.0
        for slow in self.plan.slow_cpus:
            if (
                slow.node == node.name
                and slow.at <= now
                and (slow.until is None or now < slow.until)
            ):
                factor = max(factor, slow.factor)
        return ticks if factor == 1.0 else int(round(ticks * factor))

    # ------------------------------------------------------------------
    # Recovery (used by repro.stdlib.Supervisor)
    # ------------------------------------------------------------------

    def supervise(self, obj: Any) -> Any:
        """Hold ``obj``'s interrupted calls for re-queueing after restart."""
        self._supervised.add(obj)
        return obj

    def take_interrupted(self, obj: Any) -> list[Call]:
        """Remove and return the calls a crash interrupted on ``obj``."""
        return self._interrupted.pop(obj, [])

    def requeue(self, call: Call) -> bool:
        """Re-submit an interrupted call to its (restarted) object.

        Returns True when the call was re-queued.  The caller never
        notices the crash: it is still blocked on the original invocation
        and will be resumed by the re-executed call (at-least-once
        semantics — the body may run twice if the crash hit after
        execution but before the response).
        """
        kernel = self.kernel
        caller = call.caller
        if call.caller_resumed or not caller.alive or not call.interrupted:
            return False
        obj = call.obj
        node = getattr(obj, "node", None)
        if getattr(obj, "_crashed", False) or (
            node is not None and not self.node_up(node.name)
        ):
            # Crashed again before we could re-queue: hold the call for
            # the next recovery round.
            self._interrupted.setdefault(obj, []).append(call)
            return False

        call.interrupted = False
        call.delivery_epoch += 1
        call.state = CallState.PENDING
        call.slot = None
        call.hidden_args = ()
        call.body_results = None
        call.body_process = None
        call.combined = False
        runtime = obj._entry_runtime(call.entry)
        if call.spec.intercepted:
            deliver: Callable[[], None] = lambda: runtime.submit(call)
        else:
            deliver = lambda: runtime.submit_unmanaged(call)

        src = getattr(caller, "node", None)
        request = 0
        call.response_delay = 0
        if node is not None and src is not None and src is not node:
            latency = self.network.latency_or_none(src, node)
            if latency is None:
                self._fail_call(
                    call,
                    f"no route from {src.name} to {node.name} to re-queue "
                    f"call to {obj.alps_name}.{call.entry}",
                )
                return False
            request = latency
            call.response_delay = latency
        self.c_requeued_calls.inc()
        kernel.trace.record(
            kernel.clock.now, "retry", caller.name,
            entry=call.entry, obj=obj.alps_name, requeued=True,
        )
        if node is not None:
            self._track(call)
        fire = self._guarded(call, deliver)
        if request:
            kernel.post(kernel.clock.now + request, fire)
        else:
            fire()
        return True

    def describe(self) -> str:
        return (
            f"faults(epoch={self.epoch} down_nodes={sorted(self._down_nodes)} "
            f"down_links={sorted(self._down_links)} "
            f"partitions={len(self._partition_cuts)})"
        )


def install(kernel: "Kernel", network: "Network", plan: FaultPlan) -> FaultRuntime:
    """Hook ``plan`` into ``kernel`` and ``network``; returns the runtime.

    Must be called before the run starts (transitions are posted at their
    scripted ticks).  Only one plan per kernel.
    """
    if kernel.faults is not None:
        raise NetworkError("a fault plan is already installed on this kernel")
    runtime = FaultRuntime(kernel, network, plan)
    kernel.faults = runtime
    network.faults = runtime
    runtime._schedule()
    return runtime
