"""Failure detection helpers: liveness beacons and a heartbeat monitor.

The kernel-level detector (``FaultPlan.detection_delay``) fails pending
callers of a crashed node; :class:`Heartbeat` is the complementary
*application*-level detector — a daemon that periodically pings watched
objects with timed calls and keeps a verdict per target, so recovery
logic (or a test) can observe "down" before ever issuing a real call.

Place one :class:`Beacon` per node you want to monitor::

    beacon = net.node("n3").place(Beacon(kernel, name="beacon3"))
    hb = Heartbeat(kernel, interval=40, timeout=80)
    hb.watch("n3", beacon)
    hb.start()

Both detectors are deterministic: pings are ordinary timed entry calls
on the virtual clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core import AlpsObject, entry
from ..errors import RemoteCallError
from ..kernel.syscalls import Delay

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class Beacon(AlpsObject):
    """A minimal liveness responder: answers ``ping`` while its node is up."""

    @entry(returns=1)
    def ping(self):
        return "ok"


class Heartbeat:
    """Ping watched objects on a period; record up/down transitions.

    Parameters
    ----------
    interval:
        Ticks between monitoring rounds.
    timeout:
        Deadline of each ping; a ping that exceeds it (or fails with
        :class:`~repro.errors.RemoteCallError`) marks the target down.
    rounds:
        Stop after this many rounds (``None`` runs forever — note that an
        unbounded monitor keeps the event queue non-empty, so give a
        bound or use ``kernel.run(until=...)``).
    """

    def __init__(
        self,
        kernel: "Kernel",
        interval: int = 50,
        timeout: int = 100,
        rounds: int | None = None,
    ) -> None:
        self.kernel = kernel
        self.interval = interval
        self.timeout = timeout
        self.rounds = rounds
        self.targets: dict[str, Any] = {}
        #: Latest verdict per target: "unknown" | "up" | "down".
        self.status: dict[str, str] = {}
        #: (tick, target, verdict) for every status change.
        self.transitions: list[tuple[int, str, str]] = []
        self.process: "Process | None" = None

    def watch(self, name: str, obj: Any) -> None:
        """Monitor ``obj`` (anything with a ``ping`` entry) as ``name``."""
        self.targets[name] = obj
        self.status[name] = "unknown"

    def is_up(self, name: str) -> bool:
        return self.status.get(name) == "up"

    def start(self) -> "Process":
        """Spawn the monitor daemon; returns its process."""
        self.process = self.kernel.spawn(
            self._monitor, name="heartbeat", daemon=True
        )
        return self.process

    def _monitor(self):
        done = 0
        while self.rounds is None or done < self.rounds:
            for name in list(self.targets):
                obj = self.targets[name]
                try:
                    yield obj.ping(timeout=self.timeout)
                except RemoteCallError:
                    verdict = "down"
                else:
                    verdict = "up"
                if self.status.get(name) != verdict:
                    now = self.kernel.clock.now
                    self.transitions.append((now, name, verdict))
                    self.status[name] = verdict
                    self.kernel.stats.bump(f"heartbeat_{verdict}")
            done += 1
            if self.rounds is None or done < self.rounds:
                yield Delay(self.interval)
