"""Failure detection helpers: liveness beacons and a heartbeat monitor.

The kernel-level detector (``FaultPlan.detection_delay``) fails pending
callers of a crashed node; :class:`Heartbeat` is the complementary
*application*-level detector — a daemon that periodically pings watched
objects with timed calls and keeps a verdict per target, so recovery
logic (or a test) can observe "down" before ever issuing a real call.

Place one :class:`Beacon` per node you want to monitor::

    beacon = net.node("n3").place(Beacon(kernel, name="beacon3"))
    hb = Heartbeat(kernel, interval=40, timeout=80)
    hb.watch("n3", beacon)
    hb.start()

Both detectors are deterministic: pings are ordinary timed entry calls
on the virtual clock.  Each round pings every target *concurrently*
(one spawned probe per target, joined with ``par``), so one down
target's timeout never delays another target's verdict: detection skew
within a round is bounded by each target's own ping time, and a round
lasts ``max`` — not ``sum`` — of the ping times.

Consumers that must *react* to verdicts (the replication view monitor,
a test) block on :meth:`Heartbeat.wait_for_events` instead of polling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from ..core import AlpsObject, entry
from ..errors import KernelError, RemoteCallError
from ..kernel.syscalls import Delay, Par, Select
from ..kernel.waiting import Guard, Ready, Waitable
from ..obs.spans import TransitionRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class Beacon(AlpsObject):
    """A minimal liveness responder: answers ``ping`` while its node is up."""

    @entry(returns=1)
    def ping(self):
        return "ok"


class HeartbeatEventGuard(Guard):
    """Ready when the heartbeat logged transitions beyond ``seen``.

    The heartbeat counterpart of
    :class:`~repro.faults.runtime.FaultEventGuard`: lets a recovery
    daemon sleep until a verdict changes instead of polling.
    """

    def __init__(self, heartbeat: "Heartbeat", seen: int) -> None:
        self.heartbeat = heartbeat
        self.seen = seen

    def poll(self, kernel: "Kernel") -> Ready | None:
        count = self.heartbeat.event_count
        return Ready(count) if count > self.seen else None

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> int:
        return ready.value

    def waitables(self) -> Iterable[Waitable]:
        return (self.heartbeat.events,)

    def describe(self) -> str:
        return f"heartbeat-events(>{self.seen})"


class Heartbeat:
    """Ping watched objects on a period; record up/down transitions.

    Parameters
    ----------
    interval:
        Ticks between monitoring rounds (measured from the end of one
        round to the start of the next).
    timeout:
        Deadline of each ping; a ping that exceeds it (or fails with
        :class:`~repro.errors.RemoteCallError`) marks the target down.
    rounds:
        Stop after this many rounds (``None`` runs forever — note that an
        unbounded monitor keeps the event queue non-empty, so give a
        bound, call :meth:`stop`, or use ``kernel.run(until=...)``).
    """

    def __init__(
        self,
        kernel: "Kernel",
        interval: int = 50,
        timeout: int = 100,
        rounds: int | None = None,
    ) -> None:
        self.kernel = kernel
        self.interval = interval
        self.timeout = timeout
        self.rounds = rounds
        self.targets: dict[str, Any] = {}
        #: Latest verdict per target: "unknown" | "up" | "down".
        self.status: dict[str, str] = {}
        #: (tick, target, verdict) for every status change.  Each record
        #: compares equal to a plain 3-tuple but also carries the id of
        #: the probe span that observed it (None with spans disabled), so
        #: exported failover timelines connect detection to promotion.
        self.transitions: list[tuple[int, str, str]] = []
        #: Monotone count of status changes, and the waitable recovery
        #: daemons block on to observe them.
        self.event_count = 0
        self.events = Waitable()
        self.process: "Process | None" = None

    def watch(self, name: str, obj: Any) -> None:
        """Monitor ``obj`` (anything with a ``ping`` entry) as ``name``."""
        self.targets[name] = obj
        self.status[name] = "unknown"

    def is_up(self, name: str) -> bool:
        return self.status.get(name) == "up"

    def wait_for_events(self, seen: int) -> Select:
        """A blocking select that fires once transitions exceed ``seen``."""
        select = Select(HeartbeatEventGuard(self, seen))
        select.unwrap = True
        return select

    def start(self) -> "Process":
        """Spawn the monitor daemon; returns its process.

        Raises :class:`~repro.errors.KernelError` if the monitor is
        already running (a second daemon would double every ping and
        leak a process).
        """
        if self.process is not None and self.process.alive:
            raise KernelError(
                "heartbeat monitor is already running; call stop() before "
                "starting it again"
            )
        self.process = self.kernel.spawn(
            self._monitor, name="heartbeat", daemon=True
        )
        return self.process

    def stop(self) -> bool:
        """Kill the monitor daemon; returns True if one was running.

        Verdicts and transitions are kept; :meth:`start` may be called
        again later.
        """
        proc, self.process = self.process, None
        if proc is None or not proc.alive:
            return False
        self.kernel.kill_process(proc)
        return True

    def _record(self, name: str, verdict: str, span_id: int | None = None) -> None:
        if self.status.get(name) == verdict:
            return
        self.transitions.append(
            TransitionRecord((self.kernel.clock.now, name, verdict), span_id=span_id)
        )
        self.status[name] = verdict
        self.kernel.metrics.counter(
            f"heartbeat.{verdict}", f"Heartbeat {verdict} transitions",
            legacy=f"heartbeat_{verdict}",
        ).inc()
        self.event_count += 1
        self.kernel.notify(self.events)

    def _probe(self, name: str):
        """One target's ping for one round; records its own verdict."""
        obj = self.targets[name]

        def body():
            obs = self.kernel.obs
            span = None
            if obs.enabled:
                # The ping call below parents under the probe span (via
                # the process's span link), and the resulting verdict
                # record carries the probe's id into the exported
                # timeline: detection connects to promotion/catch-up.
                # ``current_process`` (not a ``Self`` syscall) keeps the
                # event schedule identical with spans on or off.
                me = self.kernel.current_process
                span = obs.begin("heartbeat", f"probe {name}", process=me.name)
                me.span = span
            sid = None if span is None else span.span_id
            try:
                yield obj.ping(timeout=self.timeout)
            except RemoteCallError:
                self._record(name, "down", span_id=sid)
                if span is not None:
                    obs.end(span, verdict="down")
            else:
                self._record(name, "up", span_id=sid)
                if span is not None:
                    obs.end(span, verdict="up")

        return body

    def _monitor(self):
        done = 0
        while self.rounds is None or done < self.rounds:
            names = list(self.targets)
            if names:
                # Concurrent probes: verdicts land at each ping's own
                # completion tick, and the round barrier costs max (not
                # sum) of the ping times.
                yield Par([self._probe(name) for name in names])
            done += 1
            if self.rounds is None or done < self.rounds:
                yield Delay(self.interval)
