"""repro.faults — deterministic fault injection and recovery.

Three layers over the ALPS substrate:

* **injection** — :class:`FaultPlan` scripts node crashes/restarts, link
  and partition faults, message loss/duplication/jitter and slow CPUs;
  :func:`install` wires the plan into a kernel+network pair;
* **detection** — crashed targets fail pending callers with
  :class:`~repro.errors.RemoteCallError` after ``detection_delay``; timed
  entry calls (``yield obj.p(args, timeout=n)``) bound any single call;
  :class:`Heartbeat`/:class:`Beacon` give application-level liveness;
* **recovery** — :func:`retry` with :class:`FixedBackoff` /
  :class:`ExponentialBackoff` policies, bounded in aggregate by
  :class:`RetryBudget` (token bucket shared per caller/object pair, see
  :func:`shared_budget`) and :class:`CircuitBreaker` (deterministic
  closed/open/half-open), and (in ``repro.stdlib``) the ``Supervisor``
  object that restarts crashed objects and re-queues interrupted calls.

Same seed + same plan ⇒ same faults at the same ticks ⇒ the same
interleaving — fault scenarios are as replayable as fault-free runs.
"""

from .detect import Beacon, Heartbeat, HeartbeatEventGuard
from .plan import (
    FaultPlan,
    LinkFault,
    MessageRule,
    NodeCrash,
    PartitionFault,
    SlowCpu,
)
from .retry import (
    CircuitBreaker,
    ExponentialBackoff,
    FixedBackoff,
    RetryBudget,
    RetryPolicy,
    retry,
    shared_budget,
)
from .runtime import FaultEventGuard, FaultRuntime, install

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "LinkFault",
    "PartitionFault",
    "SlowCpu",
    "MessageRule",
    "FaultRuntime",
    "FaultEventGuard",
    "install",
    "retry",
    "RetryPolicy",
    "FixedBackoff",
    "ExponentialBackoff",
    "RetryBudget",
    "CircuitBreaker",
    "shared_budget",
    "Beacon",
    "Heartbeat",
    "HeartbeatEventGuard",
]
