"""Fault schedules: what goes wrong, where, and when.

A :class:`FaultPlan` is a *script* of failures over virtual time plus a
set of stochastic message-fault rules, all resolved against one seeded
RNG — so the same seed and the same plan reproduce the same faults at the
same ticks, and therefore (on our deterministic kernel) the same
interleaving.  The plan is pure data; :func:`repro.faults.install` turns
it into live behaviour.

Fault types (the paper's §4 transputer machine, made mortal):

* **node crash / restart** — every process homed on the node dies, objects
  placed there stop answering, routes through the node disappear;
* **link down / up** and **partition** — the routed topology loses edges;
  unreachable destinations fail remote calls and drop messages;
* **message loss / duplication / delay jitter** — per-message fates for
  ``NetSend`` messages and remote entry-call request/response legs;
* **slow CPU** — ``Charge``d work on a degraded node dilates by a factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError


@dataclass(frozen=True)
class NodeCrash:
    """Crash ``node`` at tick ``at``; optionally restart it later."""

    node: str
    at: int
    restart_at: int | None = None


@dataclass(frozen=True)
class LinkFault:
    """Take the ``a``–``b`` link down at ``at``; optionally bring it back."""

    a: str
    b: str
    at: int
    up_at: int | None = None


@dataclass(frozen=True)
class PartitionFault:
    """Cut every link between the two groups at ``at``; optionally heal."""

    group_a: tuple[str, ...]
    group_b: tuple[str, ...]
    at: int
    heal_at: int | None = None


@dataclass(frozen=True)
class SlowCpu:
    """Dilate ``Charge``d work on ``node`` by ``factor`` during [at, until)."""

    node: str
    factor: float
    at: int
    until: int | None = None


@dataclass(frozen=True)
class MessageRule:
    """Stochastic per-message faults, optionally scoped to src/dst nodes.

    ``drop_rate`` and ``duplicate_rate`` are probabilities drawn from the
    plan's seeded RNG per message; ``jitter`` adds a uniform extra delay in
    ``[0, jitter]`` ticks to each delivery.  ``src``/``dst`` of ``None``
    match any node.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    jitter: int = 0
    src: str | None = None
    dst: str | None = None

    def matches(self, src: str, dst: str) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


class FaultPlan:
    """A deterministic, scriptable schedule of faults.

    Parameters
    ----------
    seed:
        Seed for every probabilistic decision (message fates, jitter).
        Same seed + same plan ⇒ same faults ⇒ same interleaving.
    detection_delay:
        Virtual ticks between a node crash and the instant pending callers
        are failed with :class:`~repro.errors.RemoteCallError` — the
        failure detector's suspicion time.
    """

    def __init__(self, seed: int = 0, detection_delay: int = 50) -> None:
        if detection_delay < 0:
            raise NetworkError(
                f"detection_delay must be >= 0, got {detection_delay}"
            )
        self.seed = seed
        self.detection_delay = detection_delay
        self.crashes: list[NodeCrash] = []
        self.link_faults: list[LinkFault] = []
        self.partitions: list[PartitionFault] = []
        self.slow_cpus: list[SlowCpu] = []
        self.message_rules: list[MessageRule] = []

    # -- builders (each returns self for chaining) -----------------------

    def crash_node(self, node: str, at: int, restart_at: int | None = None) -> "FaultPlan":
        """Crash ``node`` at tick ``at``; optionally restart at ``restart_at``."""
        self._check_window(at, restart_at, "restart_at")
        self.crashes.append(NodeCrash(node, at, restart_at))
        return self

    def link_down(self, a: str, b: str, at: int, up_at: int | None = None) -> "FaultPlan":
        """Down the ``a``–``b`` link at ``at``; optionally restore at ``up_at``."""
        self._check_window(at, up_at, "up_at")
        self.link_faults.append(LinkFault(a, b, at, up_at))
        return self

    def partition(
        self,
        group_a: list[str] | tuple[str, ...],
        group_b: list[str] | tuple[str, ...],
        at: int,
        heal_at: int | None = None,
    ) -> "FaultPlan":
        """Split the network into two groups at ``at``; optionally heal."""
        self._check_window(at, heal_at, "heal_at")
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise NetworkError(f"partition groups overlap: {sorted(overlap)}")
        self.partitions.append(
            PartitionFault(tuple(group_a), tuple(group_b), at, heal_at)
        )
        return self

    def slow_cpu(
        self, node: str, factor: float, at: int = 0, until: int | None = None
    ) -> "FaultPlan":
        """Dilate work on ``node`` by ``factor`` (>= 1) during [at, until)."""
        if factor < 1:
            raise NetworkError(f"slow_cpu factor must be >= 1, got {factor}")
        self._check_window(at, until, "until")
        self.slow_cpus.append(SlowCpu(node, factor, at, until))
        return self

    def drop_messages(
        self, rate: float, src: str | None = None, dst: str | None = None
    ) -> "FaultPlan":
        """Drop each matching message with probability ``rate``."""
        self._check_rate(rate)
        self.message_rules.append(MessageRule(drop_rate=rate, src=src, dst=dst))
        return self

    def duplicate_messages(
        self, rate: float, src: str | None = None, dst: str | None = None
    ) -> "FaultPlan":
        """Deliver each matching message twice with probability ``rate``."""
        self._check_rate(rate)
        self.message_rules.append(MessageRule(duplicate_rate=rate, src=src, dst=dst))
        return self

    def delay_jitter(
        self, jitter: int, src: str | None = None, dst: str | None = None
    ) -> "FaultPlan":
        """Add uniform extra delay in [0, jitter] to each matching delivery."""
        if jitter < 0:
            raise NetworkError(f"jitter must be >= 0, got {jitter}")
        self.message_rules.append(MessageRule(jitter=jitter, src=src, dst=dst))
        return self

    # -- validation helpers ----------------------------------------------

    @staticmethod
    def _check_window(at: int, end: int | None, label: str) -> None:
        if at < 0:
            raise NetworkError(f"fault time must be >= 0, got {at}")
        if end is not None and end <= at:
            raise NetworkError(f"{label} ({end}) must be after at ({at})")

    @staticmethod
    def _check_rate(rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"rate must be in [0, 1], got {rate}")

    # -- queries ----------------------------------------------------------

    def rules_for(self, src: str, dst: str) -> list[MessageRule]:
        """Message rules applying to a ``src`` → ``dst`` message, in order."""
        return [rule for rule in self.message_rules if rule.matches(src, dst)]

    def describe(self) -> str:
        """One line per scheduled fault, for logs and docs."""
        lines = []
        for c in self.crashes:
            lines.append(
                f"crash {c.node} @ {c.at}"
                + (f" restart @ {c.restart_at}" if c.restart_at is not None else "")
            )
        for l in self.link_faults:
            lines.append(
                f"link {l.a}--{l.b} down @ {l.at}"
                + (f" up @ {l.up_at}" if l.up_at is not None else "")
            )
        for p in self.partitions:
            lines.append(
                f"partition {list(p.group_a)} | {list(p.group_b)} @ {p.at}"
                + (f" heal @ {p.heal_at}" if p.heal_at is not None else "")
            )
        for s in self.slow_cpus:
            lines.append(
                f"slow-cpu {s.node} x{s.factor} @ {s.at}"
                + (f" until {s.until}" if s.until is not None else "")
            )
        for r in self.message_rules:
            scope = f"{r.src or '*'}->{r.dst or '*'}"
            if r.drop_rate:
                lines.append(f"drop {r.drop_rate:.0%} {scope}")
            if r.duplicate_rate:
                lines.append(f"duplicate {r.duplicate_rate:.0%} {scope}")
            if r.jitter:
                lines.append(f"jitter <= {r.jitter} {scope}")
        return "\n".join(lines) if lines else "(no faults)"
