"""The ALPS surface-syntax front end (§4: the in-progress compiler).

Parses the paper's Pascal-like notation and compiles it onto the
:mod:`repro.core` runtime::

    from repro.lang import compile_program

    module = compile_program('''
        object Cell defines
          proc Put(Value);
          proc Get() returns (Value);
        end Cell;

        object Cell implements
          var Content := nil;
          proc Put(V); begin Content := V; end Put;
          proc Get() returns (1); begin return (Content); end Get;
          manager intercepts Put, Get;
          begin
            loop
              accept Put => execute Put;
            or
              accept Get when Content <> nil => execute Get;
            end loop;
          end manager;
        end Cell;
    ''')
    cell = module.instantiate(kernel, "Cell")
"""

from .compiler import Module, compile_program
from .interp import LangRuntimeError
from .parser import parse_program
from .tokens import LangSyntaxError, tokenize

__all__ = [
    "compile_program",
    "parse_program",
    "tokenize",
    "Module",
    "LangSyntaxError",
    "LangRuntimeError",
]
