"""Recursive-descent parser for the ALPS surface syntax.

Grammar (regularized from the paper's examples)::

    program    := { objectdef | objectimpl }
    objectdef  := 'object' NAME 'defines' { 'proc' NAME '(' [types] ')'
                  ['returns' '(' types ')'] ';' } 'end' NAME ';'
    objectimpl := 'object' NAME 'implements'
                  { vardecl } { procimpl } [managerdecl]
                  ['begin' stmts] 'end' NAME ';'
    vardecl    := 'var' NAME {',' NAME} [':' NAME] [':=' expr] ';'
    procimpl   := 'proc' NAME ['[' INT '..' (INT|NAME) ']']
                  '(' [params] ')' ['returns' '(' types ')'] ';'
                  'begin' stmts 'end' [NAME] ';'
    managerdecl:= 'manager' ['intercepts' icptlist ';'] { vardecl }
                  'begin' stmts 'end' ['manager'] ';'
    icptlist   := NAME ['(' [names] [';' names] ')'] {',' ...}

    stmts      := { stmt ';' }
    stmt       := lvalues ':=' expr | callstmt | 'send' NAME '(' args ')'
                | 'receive' NAME '(' names ')' | 'work' '(' expr ')'
                | 'return' [args] | 'skip'
                | ifstmt | whilestmt | selectstmt
                | 'accept' primargs | 'start' primargs | 'await' primargs
                | 'finish' primargs | 'execute' primargs
    selectstmt := ('select'|'loop') guarded {'or' guarded} 'end' ('select'|'loop')
    guarded    := ['(' NAME ':' expr '..' expr ')'] guardprim
                  ['when' expr] ['pri' expr] '=>' stmts
    guardprim  := 'accept' NAME ['[' NAME ']'] ['(' names ')']
                | 'await'  NAME ['[' NAME ']'] ['(' names ')']
                | 'receive' NAME '(' names ')'
                | 'when' expr            (pure boolean guard)

Expressions use the usual precedence: ``or`` < ``and`` < ``not`` <
comparison < additive < multiplicative < unary < postfix (call, index,
field) < primary.  ``#P`` is the pending count (§2.5.1).
"""

from __future__ import annotations

from . import ast
from .tokens import LangSyntaxError, Token, tokenize

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def at_kw(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "kw" and token.value in words

    def take(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise LangSyntaxError(
                f"expected {want!r}, got {token.value or token.kind!r}",
                token.line,
                token.column,
            )
        return self.take()

    def expect_kw(self, word: str) -> Token:
        return self.expect("kw", word)

    def expect_sym(self, symbol: str) -> Token:
        return self.expect("sym", symbol)

    def error(self, message: str) -> LangSyntaxError:
        token = self.peek()
        return LangSyntaxError(message, token.line, token.column)

    # -- program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        definitions: dict[str, ast.ObjectDef] = {}
        implementations: dict[str, ast.ObjectImpl] = {}
        while not self.at("eof"):
            self.expect_kw("object")
            name = self.expect("name").value
            if self.at_kw("defines"):
                self.take()
                definitions[name] = self.parse_defines(name)
            elif self.at_kw("implements"):
                self.take()
                implementations[name] = self.parse_implements(name)
            else:
                raise self.error("expected 'defines' or 'implements'")
        return ast.Program(definitions, implementations)

    def parse_defines(self, name: str) -> ast.ObjectDef:
        procs = []
        while self.at_kw("proc"):
            self.take()
            proc_name = self.expect("name").value
            self.expect_sym("(")
            params = self.parse_name_or_type_list()
            self.expect_sym(")")
            returns = 0
            if self.at_kw("returns"):
                self.take()
                self.expect_sym("(")
                returns = len(self.parse_name_or_type_list())
                self.expect_sym(")")
            self.expect_sym(";")
            procs.append(ast.ProcSig(proc_name, params, returns))
        self.expect_kw("end")
        self.expect("name", name)
        if self.at("sym", ";"):
            self.take()
        return ast.ObjectDef(name, procs)

    def parse_name_or_type_list(self) -> list[str]:
        """Names or `Name: Type` pairs; returns the leading names.

        Both ``,`` and ``;`` separate items (the paper writes
        ``Write(Key: KeyType; Data: DataType)``).
        """
        names: list[str] = []
        while self.at("name"):
            names.append(self.take().value)
            if self.at("sym", ":"):  # ': Type' — consume and ignore the type
                self.take()
                self.expect("name")
            if self.at("sym", ",") or self.at("sym", ";"):
                self.take()
                continue
            break
        return names

    def parse_comma_names(self) -> list[str]:
        """Comma-separated names only (``;`` is significant to the caller)."""
        names: list[str] = []
        while self.at("name"):
            names.append(self.take().value)
            if self.at("sym", ":"):
                self.take()
                self.expect("name")
            if self.at("sym", ","):
                self.take()
                continue
            break
        return names

    # -- implementation -------------------------------------------------------

    def parse_implements(self, name: str) -> ast.ObjectImpl:
        variables: list[ast.VarDecl] = []
        procs: list[ast.ProcImpl] = []
        manager: ast.ManagerDecl | None = None
        init: list = []
        while True:
            if self.at_kw("var"):
                variables.append(self.parse_vardecl())
            elif self.at_kw("proc"):
                procs.append(self.parse_procimpl())
            elif self.at_kw("manager"):
                if manager is not None:
                    raise self.error("object has more than one manager")
                manager = self.parse_manager()
            elif self.at_kw("begin"):
                self.take()
                init = self.parse_stmts(stop={"end"})
                break
            elif self.at_kw("end"):
                break
            else:
                raise self.error(
                    "expected 'var', 'proc', 'manager', 'begin' or 'end'"
                )
        self.expect_kw("end")
        self.expect("name", name)
        if self.at("sym", ";"):
            self.take()
        return ast.ObjectImpl(name, variables, procs, manager, init)

    def parse_vardecl(self) -> ast.VarDecl:
        self.expect_kw("var")
        names = [self.expect("name").value]
        while self.at("sym", ","):
            self.take()
            names.append(self.expect("name").value)
        type_name = None
        if self.at("sym", ":"):
            self.take()
            type_name = self.expect("name").value
            # 'array' style types may have trailing index bounds: skip a
            # balanced [...] if present.
            if self.at("sym", "["):
                depth = 0
                while True:
                    token = self.take()
                    if token.kind == "sym" and token.value == "[":
                        depth += 1
                    elif token.kind == "sym" and token.value == "]":
                        depth -= 1
                        if depth == 0:
                            break
        initial = None
        if self.at("sym", ":="):
            self.take()
            initial = self.parse_expr()
        self.expect_sym(";")
        return ast.VarDecl(names, type_name, initial)

    def parse_procimpl(self) -> ast.ProcImpl:
        self.expect_kw("proc")
        name = self.expect("name").value
        array = None
        if self.at("sym", "["):
            self.take()
            low = self.expect("int").value
            if low != "1":
                raise self.error("procedure arrays must start at 1")
            self.expect_sym("..")
            if self.at("int"):
                array = int(self.take().value)
            else:
                array = ast.Var(self.expect("name").value)
            self.expect_sym("]")
        self.expect_sym("(")
        params = self.parse_name_or_type_list()
        self.expect_sym(")")
        returns = 0
        if self.at_kw("returns"):
            self.take()
            self.expect_sym("(")
            if self.at("int"):
                returns = int(self.take().value)
            else:
                returns = len(self.parse_name_or_type_list())
            self.expect_sym(")")
        if self.at("sym", ";"):
            self.take()
        locals_: list = []
        while self.at_kw("var"):
            decl = self.parse_vardecl()
            locals_.extend((n, decl.initial) for n in decl.names)
        self.expect_kw("begin")
        body = self.parse_stmts(stop={"end"})
        self.expect_kw("end")
        if self.at("name"):
            trailer = self.take().value
            if trailer != name:
                raise self.error(
                    f"'end {trailer}' does not match 'proc {name}'"
                )
        self.expect_sym(";")
        return ast.ProcImpl(name, array, params, returns, body, locals_)

    def parse_manager(self) -> ast.ManagerDecl:
        self.expect_kw("manager")
        intercepts: list[ast.InterceptClause] = []
        if self.at_kw("intercepts"):
            self.take()
            while True:
                proc = self.expect("name").value
                params = results = 0
                if self.at("sym", "("):
                    self.take()
                    params = len(self.parse_comma_names())
                    if self.at("sym", ";"):
                        self.take()
                        results = len(self.parse_comma_names())
                    self.expect_sym(")")
                intercepts.append(ast.InterceptClause(proc, params, results))
                if self.at("sym", ","):
                    self.take()
                    continue
                break
            self.expect_sym(";")
        variables: list[ast.VarDecl] = []
        while self.at_kw("var"):
            variables.append(self.parse_vardecl())
        self.expect_kw("begin")
        body = self.parse_stmts(stop={"end"})
        self.expect_kw("end")
        if self.at_kw("manager"):
            self.take()
        if self.at("sym", ";"):
            self.take()
        flat_vars = [
            (name, decl.initial) for decl in variables for name in decl.names
        ]
        return ast.ManagerDecl(intercepts, flat_vars, body)

    # -- statements -------------------------------------------------------------

    def parse_stmts(self, stop: set[str]) -> list:
        stmts = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                break
            if token.kind == "kw" and token.value in stop:
                break
            if token.kind == "kw" and token.value == "or":
                break
            stmts.append(self.parse_stmt())
            if self.at("sym", ";"):
                self.take()
        return stmts

    def parse_stmt(self):
        token = self.peek()
        if token.kind == "kw":
            handler = {
                "if": self.parse_if,
                "while": self.parse_while,
                "select": lambda: self.parse_select(repetitive=False),
                "loop": lambda: self.parse_select(repetitive=True),
                "send": self.parse_send,
                "receive": self.parse_receive,
                "return": self.parse_return,
                "work": self.parse_work,
                "skip": lambda: (self.take(), ast.SkipStmt())[1],
                "accept": lambda: self.parse_accept_stmt(),
                "start": lambda: self.parse_start_stmt(),
                "await": lambda: self.parse_await_stmt(),
                "finish": lambda: self.parse_finish_stmt(),
                "execute": lambda: self.parse_execute_stmt(),
            }.get(token.value)
            if handler is not None:
                return handler()
            raise self.error(f"unexpected keyword {token.value!r}")
        # assignment or call statement
        expr = self.parse_postfix(self.parse_primary())
        if self.at("sym", ",") or self.at("sym", ":="):
            targets = [expr]
            while self.at("sym", ","):
                self.take()
                targets.append(self.parse_postfix(self.parse_primary()))
            self.expect_sym(":=")
            value = self.parse_expr()
            return ast.Assign(targets, value)
        if isinstance(expr, ast.CallExpr):
            return ast.CallStmt(expr)
        raise self.error("expression is not a statement")

    def parse_if(self):
        self.expect_kw("if")
        arms = []
        cond = self.parse_expr()
        self.expect_kw("then")
        body = self.parse_stmts(stop={"elsif", "else", "end"})
        arms.append((cond, body))
        orelse: list = []
        while self.at_kw("elsif"):
            self.take()
            cond = self.parse_expr()
            self.expect_kw("then")
            arms.append((cond, self.parse_stmts(stop={"elsif", "else", "end"})))
        if self.at_kw("else"):
            self.take()
            orelse = self.parse_stmts(stop={"end"})
        self.expect_kw("end")
        self.expect_kw("if")
        return ast.If(arms, orelse)

    def parse_while(self):
        self.expect_kw("while")
        cond = self.parse_expr()
        self.expect_kw("do")
        body = self.parse_stmts(stop={"end"})
        self.expect_kw("end")
        self.expect_kw("while")
        return ast.While(cond, body)

    def parse_send(self):
        self.expect_kw("send")
        channel = self.parse_postfix(self.parse_primary())
        values: list = []
        if isinstance(channel, ast.CallExpr):
            # 'send C(v1, v2)' parses as a call; unpack it.
            values = channel.args
            channel = (
                ast.Field(channel.target, channel.name)
                if channel.target is not None
                else ast.Var(channel.name)
            )
        return ast.SendStmt(channel, values)

    def parse_receive(self):
        self.expect_kw("receive")
        channel = self.parse_postfix(self.parse_primary())
        targets: list = []
        if isinstance(channel, ast.CallExpr):
            targets = channel.args
            channel = (
                ast.Field(channel.target, channel.name)
                if channel.target is not None
                else ast.Var(channel.name)
            )
        return ast.ReceiveStmt(channel, targets)

    def parse_return(self):
        self.expect_kw("return")
        values: list = []
        if self.at("sym", "("):
            self.take()
            values = self.parse_args(")")
            self.expect_sym(")")
        elif not self.at("sym", ";") and not self.at_kw("end"):
            values = [self.parse_expr()]
        return ast.ReturnStmt(values)

    def parse_work(self):
        self.expect_kw("work")
        self.expect_sym("(")
        amount = self.parse_expr()
        self.expect_sym(")")
        return ast.WorkStmt(amount)

    # -- manager primitives as statements --------------------------------------

    def _prim_target(self) -> tuple[str, str | None]:
        """Parse ``P`` or ``P[i]`` after a primitive keyword."""
        proc = self.expect("name").value
        slot_var = None
        if self.at("sym", "["):
            self.take()
            slot_var = self.expect("name").value
            self.expect_sym("]")
        return proc, slot_var

    def parse_accept_stmt(self):
        self.expect_kw("accept")
        proc, slot_var = self._prim_target()
        params: list = []
        if self.at("sym", "("):
            self.take()
            params = self.parse_name_or_type_list()
            self.expect_sym(")")
        return ast.AcceptStmt(proc, slot_var, params, None)

    def parse_start_stmt(self):
        self.expect_kw("start")
        proc, _slot = self._prim_target()
        hidden: list = []
        if self.at("sym", "("):
            self.take()
            hidden = self.parse_args(")")
            self.expect_sym(")")
        return ast.StartStmt(proc, None, hidden)

    def parse_await_stmt(self):
        self.expect_kw("await")
        proc, _slot = self._prim_target()
        results: list = []
        if self.at("sym", "("):
            self.take()
            results = self.parse_name_or_type_list()
            self.expect_sym(")")
        return ast.AwaitStmt(proc, results, None)

    def parse_finish_stmt(self):
        self.expect_kw("finish")
        proc, _slot = self._prim_target()
        results: list = []
        if self.at("sym", "("):
            self.take()
            results = self.parse_args(")")
            self.expect_sym(")")
        return ast.FinishStmt(proc, None, results)

    def parse_execute_stmt(self):
        self.expect_kw("execute")
        proc, _slot = self._prim_target()
        hidden: list = []
        if self.at("sym", "("):
            self.take()
            hidden = self.parse_args(")")
            self.expect_sym(")")
        return ast.ExecuteStmt(proc, None, hidden)

    # -- select / loop -----------------------------------------------------------

    def parse_select(self, repetitive: bool):
        opener = "loop" if repetitive else "select"
        self.expect_kw(opener)
        clauses = [self.parse_guarded()]
        while self.at_kw("or"):
            self.take()
            clauses.append(self.parse_guarded())
        self.expect_kw("end")
        self.expect_kw(opener)
        return ast.SelectStmt(clauses, repetitive)

    def parse_guarded(self) -> ast.GuardClause:
        # optional quantifier '(i : 1..N)' — runtime quantifies over the
        # whole array, so the binder is parsed and discarded.
        if (
            self.at("sym", "(")
            and self.peek(1).kind == "name"
            and self.peek(2).kind == "sym"
            and self.peek(2).value == ":"
        ):
            self.take()  # (
            self.take()  # binder name
            self.take()  # :
            self.parse_expr()
            self.expect_sym("..")
            self.parse_expr()
            self.expect_sym(")")

        kind: str
        proc = None
        channel = None
        binders: list = []
        when = None
        pri = None
        if self.at_kw("accept") or self.at_kw("await"):
            kind = self.take().value
            proc, _slot = self._prim_target()
            if self.at("sym", "("):
                self.take()
                binders = self.parse_name_or_type_list()
                self.expect_sym(")")
        elif self.at_kw("receive"):
            kind = "receive"
            self.take()
            channel_expr = self.parse_postfix(self.parse_primary())
            if isinstance(channel_expr, ast.CallExpr):
                binders = [
                    arg.name for arg in channel_expr.args
                    if isinstance(arg, ast.Var)
                ]
                channel = (
                    ast.Field(channel_expr.target, channel_expr.name)
                    if channel_expr.target is not None
                    else ast.Var(channel_expr.name)
                )
            else:
                channel = channel_expr
        elif self.at_kw("when"):
            kind = "when"
            self.take()
            when = self.parse_expr()
        else:
            raise self.error("expected accept/await/receive/when guard")

        if kind != "when" and self.at_kw("when"):
            self.take()
            when = self.parse_expr()
        if self.at_kw("pri"):
            self.take()
            pri = self.parse_expr()
        self.expect_sym("=>")
        body = self.parse_stmts(stop={"end"})
        return ast.GuardClause(kind, proc, channel, binders, None, when, pri, body)

    # -- expressions -----------------------------------------------------------

    def parse_args(self, closer: str) -> list:
        args = []
        if not self.at("sym", closer):
            args.append(self.parse_expr())
            while self.at("sym", ","):
                self.take()
                args.append(self.parse_expr())
        return args

    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.at_kw("or") and self._or_is_operator():
            self.take()
            left = ast.Binary("or", left, self.parse_and())
        return left

    def _or_is_operator(self) -> bool:
        # 'or' separates guarded alternatives in select/loop; inside an
        # expression it is only an operator when more expression follows.
        nxt = self.peek(1)
        if nxt.kind in ("name", "int", "string"):
            return True
        if nxt.kind == "kw" and nxt.value in ("not", "true", "false", "nil"):
            return True
        if nxt.kind == "sym" and nxt.value in ("(", "-", "#"):
            return True
        return False

    def parse_and(self):
        left = self.parse_not()
        while self.at_kw("and"):
            self.take()
            left = ast.Binary("and", left, self.parse_not())
        return left

    def parse_not(self):
        if self.at_kw("not"):
            self.take()
            return ast.Unary("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_additive()
        if self.at("sym") and self.peek().value in _COMPARISONS:
            op = self.take().value
            return ast.Binary(op, left, self.parse_additive())
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while self.at("sym", "+") or self.at("sym", "-"):
            op = self.take().value
            left = ast.Binary(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while (
            self.at("sym", "*")
            or self.at("sym", "/")
            or self.at_kw("mod")
            or self.at_kw("div")
        ):
            op = self.take().value
            left = ast.Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self):
        if self.at("sym", "-"):
            self.take()
            return ast.Unary("-", self.parse_unary())
        return self.parse_postfix(self.parse_primary())

    def parse_postfix(self, expr):
        while True:
            if self.at("sym", "["):
                self.take()
                index = self.parse_expr()
                self.expect_sym("]")
                expr = ast.Index(expr, index)
            elif self.at("sym", "."):
                self.take()
                name = self.expect("name").value
                expr = ast.Field(expr, name)
            elif self.at("sym", "("):
                # call: base must be a name or field access
                self.take()
                args = self.parse_args(")")
                self.expect_sym(")")
                if isinstance(expr, ast.Var):
                    expr = ast.CallExpr(None, expr.name, args)
                elif isinstance(expr, ast.Field):
                    expr = ast.CallExpr(expr.base, expr.name, args)
                else:
                    raise self.error("cannot call this expression")
            else:
                return expr

    def parse_primary(self):
        token = self.peek()
        if token.kind == "int":
            self.take()
            return ast.Num(int(token.value))
        if token.kind == "string":
            self.take()
            return ast.Str(token.value)
        if token.kind == "kw" and token.value in ("true", "false"):
            self.take()
            return ast.Bool(token.value == "true")
        if token.kind == "kw" and token.value == "nil":
            self.take()
            return ast.Nil()
        if token.kind == "sym" and token.value == "#":
            self.take()
            return ast.Pending(self.expect("name").value)
        if token.kind == "sym" and token.value == "(":
            self.take()
            inner = self.parse_expr()
            self.expect_sym(")")
            return inner
        if token.kind == "name":
            self.take()
            return ast.Var(token.value)
        raise self.error(f"unexpected token {token.value or token.kind!r}")


def parse_program(source: str) -> ast.Program:
    """Parse ALPS source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(source).parse_program()
