"""Lexer for the ALPS surface syntax.

The paper writes ALPS in a Pascal-like notation ("The version of ALPS
presented here uses strong typing and is based on a Pascal-like
notation", §4) and reports that a compiler was in its initial stages.
:mod:`repro.lang` is that front end: it parses the paper's notation and
compiles it onto the :mod:`repro.core` runtime.

The lexer is conventional: keywords, identifiers, integer/string
literals, and the operator/punctuation set used by the paper's examples
(``:=``, ``=>``, ``..``, comparisons, arithmetic).  Comments are
``{ ... }`` (Pascal style) and ``// ...`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlpsError


class LangSyntaxError(AlpsError):
    """Lexical or syntactic error in ALPS source text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


KEYWORDS = {
    "object", "defines", "implements", "end", "proc", "returns", "var",
    "manager", "intercepts", "begin", "if", "then", "else", "elsif",
    "while", "do", "loop", "select", "when", "pri", "or", "and", "not",
    "accept", "start", "await", "finish", "execute", "send", "receive",
    "return", "skip", "true", "false", "nil", "par", "to", "work",
    "mod", "div", "use",
}

SYMBOLS = [
    ":=", "=>", "..", "<=", ">=", "<>", "(", ")", "[", "]", ",", ";",
    ":", "=", "<", ">", "+", "-", "*", "/", ".", "#",
]


@dataclass(frozen=True)
class Token:
    kind: str       # 'kw', 'name', 'int', 'string', 'sym', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.value!r}@{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Split ALPS source into tokens (raises LangSyntaxError)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LangSyntaxError:
        return LangSyntaxError(message, line, column)

    while index < length:
        ch = source[index]
        # Whitespace
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        # Comments
        if ch == "{":
            start_line, start_col = line, column
            index += 1
            column += 1
            while index < length and source[index] != "}":
                if source[index] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                index += 1
            if index >= length:
                raise LangSyntaxError("unterminated { comment", start_line, start_col)
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        # String literals
        if ch in "\"'":
            quote = ch
            start_col = column
            index += 1
            column += 1
            chars = []
            while index < length and source[index] != quote:
                if source[index] == "\n":
                    raise error("unterminated string literal")
                chars.append(source[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1
            column += 1
            tokens.append(Token("string", "".join(chars), line, start_col))
            continue
        # Numbers
        if ch.isdigit():
            start_col = column
            start = index
            while index < length and source[index].isdigit():
                index += 1
                column += 1
            tokens.append(Token("int", source[start:index], line, start_col))
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            start_col = column
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
                column += 1
            word = source[start:index]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("kw", lowered, line, start_col))
            else:
                tokens.append(Token("name", word, line, start_col))
            continue
        # Symbols (longest match first)
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token("sym", symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
